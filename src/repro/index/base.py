"""Common interface for all spatial indexes, plus the brute-force oracle.

An index stores ``(point, item_id)`` entries.  ``item_id`` is an opaque
integer — in :class:`repro.core.database.SpatialDatabase` it is the row id of
the point — and duplicates of the same location with different ids are
allowed.  All implementations keep an :class:`IndexStats` counter block so
the experiment harness can report index node accesses alongside wall time.

The interface is the minimum both paper methods need:

* :meth:`SpatialIndex.window_query` — the *filter* step of the traditional
  baseline (called with the query polygon's MBR);
* :meth:`SpatialIndex.nearest_neighbor` — the Voronoi method's seed lookup
  (Property 3 of the paper);
* :meth:`SpatialIndex.k_nearest_neighbors` — used by the kNN ablation;
* ``insert`` / ``delete`` / ``bulk_load`` — maintenance, so the dynamic
  workload tests can exercise mixed read/write traffic.

Implementations are interchangeable: :func:`repro.index.make_index` builds
any registered kind by name, and the equality tests in ``tests/index/``
compare every implementation's query results against
:class:`BruteForceIndex` on identical workloads.
"""

from __future__ import annotations

import heapq
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.geometry.point import Point
from repro.geometry.rectangle import Rect

Entry = Tuple[Point, int]


@dataclass
class IndexStats:
    """Access counters, reset per query by the callers that care.

    ``node_accesses`` counts internal/leaf node visits (an IO proxy: in a
    disk-resident index each visit is a page read).  ``entry_tests`` counts
    point-level geometric comparisons inside visited leaves.
    """

    node_accesses: int = 0
    entry_tests: int = 0

    def reset(self) -> None:
        """Zero all counters (callers scope them per query)."""
        self.node_accesses = 0
        self.entry_tests = 0

    def snapshot(self) -> "IndexStats":
        """An independent copy of the current counter values."""
        return IndexStats(self.node_accesses, self.entry_tests)


class SpatialIndex(ABC):
    """Abstract base for point indexes with window and NN queries."""

    def __init__(self) -> None:
        self.stats = IndexStats()

    # -- construction ------------------------------------------------------

    @abstractmethod
    def insert(self, point: Point, item_id: int) -> None:
        """Add one entry."""

    def bulk_load(self, entries: Iterable[Entry]) -> None:
        """Load many entries.

        The default is repeated insertion; subclasses may override with a
        packing algorithm (see :meth:`repro.index.rtree.RTree.bulk_load`).
        """
        for point, item_id in entries:
            self.insert(point, item_id)

    @abstractmethod
    def delete(self, point: Point, item_id: int) -> bool:
        """Remove one entry; returns ``True`` if it was present."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of stored entries."""

    # -- queries -----------------------------------------------------------

    @abstractmethod
    def window_query(self, window: Rect) -> List[Entry]:
        """All entries whose point lies in the closed rectangle ``window``.

        This is the *filter* step of the traditional area query: called with
        the query polygon's MBR it returns the traditional candidate set.
        """

    def window_ids_array(self, window: Rect):
        """Item ids of every entry inside ``window`` as an int64 array.

        The bulk-probe sibling of :meth:`window_query` for the columnar
        hot paths: callers gather candidate *coordinates* from the
        :class:`~repro.core.store.PointStore` columns by these row ids
        and refine with the vectorized kernels, so the ``(Point, id)``
        entry tuples never materialize.  Order is unspecified; the id
        *set* is always identical to ``window_query``'s.

        This default is the scalar fallback (one :meth:`window_query`,
        ids repacked); the tree and grid indexes override it with
        traversals that emit fully-contained subtrees/buckets without
        per-entry containment tests.
        """
        import numpy as np

        entries = self.window_query(window)
        return np.fromiter(
            (item_id for _, item_id in entries),
            dtype=np.int64,
            count=len(entries),
        )

    @abstractmethod
    def nearest_neighbor(self, query: Point) -> Optional[Entry]:
        """The entry closest to ``query`` (``None`` on an empty index).

        This seeds the Voronoi method: by Property 3 of the paper, the NN of
        any position inside the query area is an internal or boundary point.
        """

    def k_nearest_neighbors(self, query: Point, k: int) -> List[Entry]:
        """The ``k`` entries closest to ``query``, nearest first.

        Default implementation repeatedly extends a best-first search; the
        tree indexes override this with a single heap traversal.
        """
        if k <= 0:
            return []
        scored = [
            (point.squared_distance_to(query), item_id, point)
            for point, item_id in self.items()
        ]
        scored.sort(key=lambda t: (t[0], t[1]))
        return [(point, item_id) for _, item_id, point in scored[:k]]

    @abstractmethod
    def items(self) -> Iterator[Entry]:
        """Iterate over every stored entry (order unspecified)."""

    # -- conveniences ------------------------------------------------------

    def count_in_window(self, window: Rect) -> int:
        """Number of entries inside ``window``."""
        return self.window_count(window)

    def window_count(self, window: Rect) -> int:
        """Number of entries inside ``window``.

        Default implementation materialises the window query; tree indexes
        maintaining subtree weights override this with an aggregate-only
        traversal (see :meth:`repro.index.rtree.RTree.window_count`).
        """
        return len(self.window_query(window))

    @property
    def bounds(self) -> Optional[Rect]:
        """MBR of all stored points (``None`` when empty)."""
        points = [point for point, _ in self.items()]
        if not points:
            return None
        return Rect.from_points(points)


class BruteForceIndex(SpatialIndex):
    """Linear-scan reference implementation.

    Correct by inspection; every other index is tested for query-result
    equality against this one.  Also usable as a no-index baseline in
    ablation benchmarks.
    """

    def __init__(self) -> None:
        super().__init__()
        self._entries: List[Entry] = []

    def insert(self, point: Point, item_id: int) -> None:
        self._entries.append((point, item_id))

    def delete(self, point: Point, item_id: int) -> bool:
        try:
            self._entries.remove((point, item_id))
        except ValueError:
            return False
        return True

    def __len__(self) -> int:
        return len(self._entries)

    def window_query(self, window: Rect) -> List[Entry]:
        self.stats.node_accesses += 1
        self.stats.entry_tests += len(self._entries)
        return [
            (point, item_id)
            for point, item_id in self._entries
            if window.contains_point(point)
        ]

    def nearest_neighbor(self, query: Point) -> Optional[Entry]:
        self.stats.node_accesses += 1
        self.stats.entry_tests += len(self._entries)
        best: Optional[Entry] = None
        best_distance = float("inf")
        for point, item_id in self._entries:
            distance = point.squared_distance_to(query)
            if distance < best_distance:
                best_distance = distance
                best = (point, item_id)
        return best

    def k_nearest_neighbors(self, query: Point, k: int) -> List[Entry]:
        if k <= 0:
            return []
        self.stats.node_accesses += 1
        self.stats.entry_tests += len(self._entries)
        heap = heapq.nsmallest(
            k,
            (
                (point.squared_distance_to(query), item_id, point)
                for point, item_id in self._entries
            ),
            key=lambda t: (t[0], t[1]),
        )
        return [(point, item_id) for _, item_id, point in heap]

    def items(self) -> Iterator[Entry]:
        return iter(list(self._entries))


def validate_entries(entries: Sequence[Entry]) -> None:
    """Raise :class:`TypeError`/:class:`ValueError` on malformed entries.

    Used by index constructors that accept user-supplied bulk loads.
    """
    for entry in entries:
        if len(entry) != 2:
            raise ValueError(f"entry must be (Point, id), got {entry!r}")
        point, item_id = entry
        if not isinstance(point, Point):
            raise TypeError(f"entry point must be a Point, got {type(point)}")
        if not isinstance(item_id, int):
            raise TypeError(f"entry id must be an int, got {type(item_id)}")
