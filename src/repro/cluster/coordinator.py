"""Scatter-gather query coordination over Hilbert-sharded workers.

The :class:`ClusterCoordinator` is the cluster's brain, independent of
any transport: it owns the :class:`~repro.cluster.shardmap.ShardMap`,
the global row-id catalog, and the routing/merge rules, and talks to
its shards through the :class:`~repro.cluster.backends.ShardBackend`
interface (in-process databases or remote workers alike — the network
router wraps this same class).

**Identity.**  Clients see *global* row ids, assigned in write-arrival
order exactly like a single :class:`~repro.core.database.SpatialDatabase`
assigns its row ids — so a cluster driven by a trace produces the same
ids as the single-process oracle.  Each shard stores its rows under its
own local ids; the coordinator's catalog maps both directions and also
keeps every live row's coordinates, which is what lets it evaluate
predicates, order kNN merges by exact distance, and migrate rows during
a rebalance without ever reading data back from a worker.

**Routing.**  Point writes and kNN/nearest seeds go to the single shard
owning the point's Hilbert key.  A bounded kNN expands beyond the owner
only when the kth-distance ball crosses a shard boundary
(:meth:`ShardMap.workers_for_circle`).  Window/area (and composite
leaves) fan out to every shard whose Hilbert range intersects the
region's key interval; shard-local sorted id lists are translated to
global ids and merged with :func:`repro.query.merge.union_sorted`.
Streaming kNN interleaves the shards' ``incremental_nearest`` wire
streams by distance.  Predicates and limits are *never* pushed down:
shards answer the raw geometric spec and the coordinator applies the
user-level options at the merge layer, in the same order
:func:`repro.query.executor.finalize_record` does — predicate first,
then limit.

**Rebalancing.**  After any write, if the heaviest worker's live count
exceeds ``imbalance_ratio`` times the mean, its fullest Hilbert range
is split at the live median key and the upper half migrates to the
lightest worker (see :meth:`rebalance_once`).

**Fault tolerance.**  Each worker may be paired with a standby
*replica* backend (``replicas=``): point writes mirror to the replica
synchronously (in parallel with the primary apply, so steady-state
mirror cost is bounded by the slower of the two, not their sum) and
reads fail over to it when the primary is unreachable or marked
``down`` by the health tracker.  A failed mirror marks the replica
*dirty* — it stops serving failover reads until a supervisor rebuild
(:meth:`rebuild_replica`) restores it, so failover never silently
serves an incomplete copy.  Scatter-gather queries that lose an
unreplicated (or doubly-failed) shard raise
:class:`ClusterDegradedError` carrying the partial result and the
failed worker list — the router turns this into an explicit
``degraded`` result frame, never a silent partial answer.  Streams
report the same through :class:`ClusterStream.shards_failed`.
"""

from __future__ import annotations

import heapq
import math
import threading
from array import array
from concurrent.futures import ThreadPoolExecutor
from itertools import islice
from contextlib import contextmanager
from dataclasses import replace
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.cluster.backends import ShardBackend
from repro.cluster.faults import HealthTracker
from repro.cluster.shardmap import ShardMap
from repro.cluster.stats import merge_stats_frames
from repro.core.exceptions import EmptyDatabaseError, InvalidQueryAreaError
from repro.engine.order import DEFAULT_ORDER
from repro.geometry.point import Point
from repro.query.merge import union_sorted
from repro.query.executor import merge_sorted_ids
from repro.query.spec import (
    AreaQuery,
    CompositeQuery,
    KnnQuery,
    NearestQuery,
    Query,
    WindowQuery,
)

__all__ = [
    "ClusterCoordinator",
    "ClusterWriteError",
    "ClusterDegradedError",
    "ClusterStream",
]

#: Transport-level failures that trigger failover (not query verdicts).
#: :class:`ShardUnavailableError` and :class:`TimeoutError` both
#: subclass :class:`OSError`; ``EOFError`` covers half-closed pipes.
_UNAVAILABLE = (OSError, EOFError)


class ClusterWriteError(ValueError):
    """A write the cluster must reject (unknown row, bad coordinates)."""


class ClusterDegradedError(RuntimeError):
    """A query lost shards with no usable replica: explicit degradation.

    Carries the *partial* merged result (``ids``) and the worker
    indices that could not answer (``shards_failed``), so callers
    choose between surfacing the partial answer (the router marks the
    result frame ``degraded``) and treating it as a failure.  Never
    raised while every lost shard has a clean replica — failover is
    silent by design; degradation is loud by design.
    """

    def __init__(self, ids: List[int], shards_failed: List[int]) -> None:
        super().__init__(
            f"shards {shards_failed} unavailable; partial result of "
            f"{len(ids)} row(s)"
        )
        #: the partial merged global ids (oracle order, failed shards
        #: contributing nothing)
        self.ids = ids
        #: sorted worker indices that failed primary and replica
        self.shards_failed = shards_failed


class ClusterStream:
    """A cluster stream plus its degradation record.

    Iterating yields global ids exactly like the raw generator the
    coordinator used to return; :attr:`shards_failed` accumulates the
    workers lost mid-stream with no usable replica (the router copies
    it onto the final ``done`` chunk).  ``close()`` tears down the
    underlying shard streams.
    """

    def __init__(
        self,
        source: Iterator[int],
        shards_failed: Optional[List[int]] = None,
    ) -> None:
        self._source = source
        #: workers that could not contribute (primary and replica lost)
        self.shards_failed: List[int] = (
            shards_failed if shards_failed is not None else []
        )

    @property
    def degraded(self) -> bool:
        """Whether any shard failed to contribute so far."""
        return bool(self.shards_failed)

    def __iter__(self) -> "ClusterStream":
        return self

    def __next__(self) -> int:
        return next(self._source)

    def close(self) -> None:
        """Close the underlying merged stream."""
        close = getattr(self._source, "close", None)
        if close is not None:
            close()


class _RWLock:
    """Many concurrent readers or one writer (no reentrancy needed)."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writing = False

    @contextmanager
    def read(self):
        """Hold shared read access for the ``with`` block."""
        with self._cond:
            while self._writing:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if not self._readers:
                    self._cond.notify_all()

    @contextmanager
    def write(self):
        """Hold exclusive write access for the ``with`` block."""
        with self._cond:
            while self._writing or self._readers:
                self._cond.wait()
            self._writing = True
        try:
            yield
        finally:
            with self._cond:
                self._writing = False
                self._cond.notify_all()


def _effective_k(spec: KnnQuery) -> Optional[int]:
    """The row budget of a kNN spec (``k`` capped by ``limit``).

    Mirrors the single-process executor: ``None`` means unbounded.
    """
    if spec.k is None:
        return spec.limit
    if spec.limit is not None:
        return min(spec.k, spec.limit)
    return spec.k


def _require_finite(x: float, y: float) -> None:
    """Reject non-finite write coordinates before any shard sees them."""
    if not (math.isfinite(x) and math.isfinite(y)):
        raise ClusterWriteError(
            f"coordinates must be finite, got ({x!r}, {y!r})"
        )


class ClusterCoordinator:
    """Routing, identity, and merge logic for one shard cluster.

    Parameters
    ----------
    backends:
        One :class:`~repro.cluster.backends.ShardBackend` per worker,
        in worker-index order.  Workers start empty unless restoring.
    replicas:
        Optional standby backends, indexed by *replica slot* (the
        ``replica`` field of the shard map's ranges).  Passing a list
        with no replica-aware map pairs worker ``i`` with slot ``i``.
        ``None``/empty disables replication.
    order:
        Hilbert refinement order of the shard map (default 8).
    shard_map:
        Explicit starting map; defaults to an even partition.
    imbalance_ratio:
        Rebalance triggers when the heaviest worker's live count
        exceeds this multiple of the mean live count.
    min_split:
        Never split a worker holding fewer live rows than this.
    auto_rebalance:
        Check the imbalance trigger after every write batch.

    Thread safety: reads run concurrently; writes (and rebalances) are
    exclusive, guarded by an internal readers-writer lock.
    """

    def __init__(
        self,
        backends: Sequence[ShardBackend],
        *,
        replicas: Optional[Sequence[Optional[ShardBackend]]] = None,
        order: int = DEFAULT_ORDER,
        shard_map: Optional[ShardMap] = None,
        imbalance_ratio: float = 2.0,
        min_split: int = 64,
        auto_rebalance: bool = True,
        chunk_size: int = 256,
    ) -> None:
        if not backends:
            raise ValueError("need at least one shard backend")
        self._backends = list(backends)
        self._replicas: List[Optional[ShardBackend]] = list(replicas or [])
        self._map = shard_map or ShardMap.even(len(backends), order=order)
        if self._map.all_workers() - set(range(len(backends))):
            raise ValueError("shard map names workers without a backend")
        if not self._replicas and any(
            self._map.replica_of(w) is not None
            for w in range(len(backends))
        ):
            # A replica-aware map (e.g. a snapshot taken from a
            # replicated cluster) restored without replica backends:
            # run unreplicated rather than refuse the data.
            self._map = self._map.with_replicas({})
        if self._replicas and all(
            self._map.replica_of(w) is None for w in range(len(backends))
        ):
            # Replica backends without a replica-aware map: pair worker
            # i with slot i (the launcher's default topology).
            if len(self._replicas) != len(backends):
                raise ValueError(
                    f"{len(self._replicas)} replicas cannot pair "
                    f"one-to-one with {len(backends)} workers; pass a "
                    "shard map with explicit replica slots"
                )
            self._map = self._map.with_replicas(
                {w: w for w in range(len(backends))}
            )
        for worker in range(len(backends)):
            slot = self._map.replica_of(worker)
            if slot is None:
                continue
            if slot >= len(self._replicas) or self._replicas[slot] is None:
                raise ValueError(
                    f"shard map pairs worker {worker} with replica "
                    f"slot {slot}, but no such replica backend was given"
                )
        #: rebalance trigger ratio (heaviest vs mean live count)
        self.imbalance_ratio = float(imbalance_ratio)
        #: minimum live rows on a worker before it may split
        self.min_split = int(min_split)
        #: run the rebalance check after each write batch
        self.auto_rebalance = bool(auto_rebalance)
        #: rows per chunk on shard wire streams
        self.chunk_size = int(chunk_size)
        # Catalog, indexed by global id.  Dead/placeholder rows keep
        # their slot (ids are never reused) with ``_alive == 0``.
        self._xs = array("d")
        self._ys = array("d")
        self._keys = array("q")
        self._worker = array("i")
        self._local = array("q")
        self._alive = bytearray()
        self._local_to_global: List[Dict[int, int]] = [
            {} for _ in self._backends
        ]
        self._live = [0] * len(self._backends)
        self._version = 0
        self._rebalances = 0
        self._lock = _RWLock()
        # Replica-side catalog: each live row's local id on its
        # worker's replica slot (-1 = not mirrored), plus the reverse
        # mapping per slot.  A slot goes *dirty* on any failed mirror
        # and stops serving failover reads until rebuilt.
        self._replica_local = array("q")
        self._replica_to_global: List[Dict[int, int]] = [
            {} for _ in self._replicas
        ]
        self._replica_dirty = [False] * len(self._replicas)
        # Health state machines (primaries by worker index, replicas by
        # slot index) and the fault-tolerance counters.
        self._health = [HealthTracker() for _ in self._backends]
        self._replica_health = [HealthTracker() for _ in self._replicas]
        self._mirror_failures = 0
        self._failovers = 0
        self._degraded_results = 0
        self._recoveries = 0
        self._mirror_pool: Optional[ThreadPoolExecutor] = (
            ThreadPoolExecutor(
                max_workers=max(2, len(self._replicas)),
                thread_name_prefix="repro-mirror",
            )
            if self._replicas
            else None
        )
        self._monitor_thread: Optional[threading.Thread] = None
        self._monitor_stop = threading.Event()

    # -- introspection -----------------------------------------------------

    @property
    def workers(self) -> int:
        """Number of worker shards."""
        return len(self._backends)

    @property
    def shard_map(self) -> ShardMap:
        """The current Hilbert-range routing table."""
        return self._map

    @property
    def version(self) -> int:
        """Monotone cluster data version (one tick per applied write)."""
        return self._version

    @property
    def total_live(self) -> int:
        """Live rows across all shards."""
        return sum(self._live)

    @property
    def live_counts(self) -> List[int]:
        """Per-worker live row counts (copy)."""
        return list(self._live)

    @property
    def rebalances(self) -> int:
        """Completed rebalance splits."""
        return self._rebalances

    def point(self, global_id: int) -> Point:
        """The stored point of a live global row id."""
        if not self._is_live(global_id):
            raise KeyError(f"no live row {global_id}")
        return Point(self._xs[global_id], self._ys[global_id])

    def _point_at(self, global_id: int) -> Point:
        """Catalog coordinates without the liveness check.

        Merge-layer predicates run through here: like the oracle's
        ``database.point``, a tombstoned row's coordinates stay
        addressable, so streams admitted before a delete keep working.
        """
        return Point(self._xs[global_id], self._ys[global_id])

    def _is_live(self, global_id: int) -> bool:
        return 0 <= global_id < len(self._alive) and bool(
            self._alive[global_id]
        )

    def _squared_distance(self, global_id: int, x: float, y: float) -> float:
        dx = self._xs[global_id] - x
        dy = self._ys[global_id] - y
        return dx * dx + dy * dy

    @property
    def replicated(self) -> bool:
        """Whether any worker has a replica slot."""
        return bool(self._replicas)

    def health_snapshot(self) -> Dict[str, List[str]]:
        """Current health states: ``{"primaries": [...], "replicas": [...]}``."""
        return {
            "primaries": [tracker.state for tracker in self._health],
            "replicas": [
                tracker.state for tracker in self._replica_health
            ],
        }

    def close(self) -> None:
        """Stop the health monitor and close every backend (replicas too)."""
        self.stop_health_monitor()
        if self._mirror_pool is not None:
            self._mirror_pool.shutdown(wait=True)
        for backend in self._backends:
            backend.close()
        for replica in self._replicas:
            if replica is not None:
                replica.close()

    # -- health monitoring -------------------------------------------------

    def start_health_monitor(self, interval_s: float = 0.5) -> None:
        """Start the background probe loop marking backends up/suspect/down.

        Probes every primary and replica with
        :meth:`~repro.cluster.backends.ShardBackend.ping` each
        ``interval_s``; RPC failures on the hot path mark health
        immediately, so the loop's job is *revival* — noticing a
        restarted worker and restoring it to ``up``.  Idempotent.
        """
        if self._monitor_thread is not None:
            return
        self._monitor_stop.clear()

        def probe_loop() -> None:
            while not self._monitor_stop.wait(interval_s):
                for backend, tracker in list(
                    zip(self._backends, self._health)
                ) + [
                    (replica, tracker)
                    for replica, tracker in zip(
                        self._replicas, self._replica_health
                    )
                    if replica is not None
                ]:
                    try:
                        alive = backend.ping()
                    except Exception:  # pragma: no cover - ping never raises
                        alive = False
                    if alive:
                        tracker.mark_success()
                    else:
                        tracker.mark_failure()

        self._monitor_thread = threading.Thread(
            target=probe_loop, name="repro-health-monitor", daemon=True
        )
        self._monitor_thread.start()

    def stop_health_monitor(self) -> None:
        """Stop the probe loop (idempotent; joins the thread)."""
        if self._monitor_thread is None:
            return
        self._monitor_stop.set()
        self._monitor_thread.join(timeout=5.0)
        self._monitor_thread = None

    # -- writes ------------------------------------------------------------

    def _allocate(
        self,
        x: float,
        y: float,
        worker: int,
        local_id: int,
        key: int,
        replica_local: int = -1,
    ) -> int:
        """Record one new live row in the catalog; returns its global id."""
        global_id = len(self._alive)
        self._xs.append(x)
        self._ys.append(y)
        self._keys.append(key)
        self._worker.append(worker)
        self._local.append(local_id)
        self._alive.append(1)
        self._replica_local.append(replica_local)
        self._local_to_global[worker][local_id] = global_id
        if replica_local >= 0:
            slot = self._map.replica_of(worker)
            self._replica_to_global[slot][replica_local] = global_id
        self._live[worker] += 1
        return global_id

    def _mirror_slot(self, worker: int) -> Optional[int]:
        """The worker's replica slot, if one exists and is writable."""
        slot = self._map.replica_of(worker)
        if slot is None or self._replicas[slot] is None:
            return None
        return slot

    def _mark_mirror_failure(self, slot: int, error: BaseException) -> None:
        """A mirror write failed: the slot is dirty until rebuilt.

        Dirty replicas stop serving failover reads — an incomplete copy
        silently answering would violate the never-silently-partial
        contract.  Transport failures also demote the replica's health.
        """
        self._replica_dirty[slot] = True
        self._mirror_failures += 1
        if isinstance(error, _UNAVAILABLE):
            self._replica_health[slot].mark_failure()

    def _reap_orphan_mirror(self, slot: int, future) -> None:
        """Undo a mirror write whose primary apply failed (best effort).

        The primary never acked, so the replica must not keep the rows;
        a reap that itself fails leaves the slot dirty.
        """
        try:
            replica_locals = future.result()
        except Exception as exc:
            # Mirror also failed.  A transport error after apply is
            # ambiguous — the rows may exist on the replica — so the
            # slot goes dirty; a clean rejection applied nothing.
            if isinstance(exc, _UNAVAILABLE):
                self._mark_mirror_failure(slot, exc)
            return
        if isinstance(replica_locals, int):
            replica_locals = [replica_locals]
        for replica_local in replica_locals:
            try:
                self._replicas[slot].delete(replica_local)
            except Exception as exc:
                self._mark_mirror_failure(slot, exc)
                return

    def insert(self, x: float, y: float) -> int:
        """Route one point to its owning shard; returns its global id.

        With a replica configured the point mirrors to it in parallel
        with the primary apply.  A primary failure raises (nothing is
        acked; any orphan mirror copy is reaped); a mirror failure
        marks the replica dirty but the acked write stands — the
        primary holds it.
        """
        x, y = float(x), float(y)
        _require_finite(x, y)
        with self._lock.write():
            key = self._map.key_of(x, y)
            worker = self._map.owner_of_key(key)
            slot = self._mirror_slot(worker)
            future = (
                self._mirror_pool.submit(self._replicas[slot].insert, x, y)
                if slot is not None
                else None
            )
            try:
                local_id = self._backends[worker].insert(x, y)
            except BaseException as exc:
                if isinstance(exc, _UNAVAILABLE):
                    self._health[worker].mark_failure()
                if future is not None:
                    self._reap_orphan_mirror(slot, future)
                raise
            self._health[worker].mark_success()
            replica_local = -1
            if future is not None:
                try:
                    replica_local = future.result()
                except Exception as exc:
                    self._mark_mirror_failure(slot, exc)
                else:
                    self._replica_health[slot].mark_success()
            global_id = self._allocate(
                x, y, worker, local_id, key, replica_local
            )
            self._version += 1
            self._maybe_rebalance()
            return global_id

    def extend(
        self, points: Sequence[Tuple[float, float]]
    ) -> List[int]:
        """Partition a batch by owner shard; returns global ids in order.

        Mirrors each worker's slice to its replica in parallel with the
        primary applies.  If any primary slice fails, the whole batch
        is rolled back best-effort (compensating deletes on the
        primaries and replicas that did apply) and the error
        propagates: nothing was acked, so nothing may survive.
        """
        pairs = [(float(x), float(y)) for x, y in points]
        for x, y in pairs:
            _require_finite(x, y)
        with self._lock.write():
            by_worker: Dict[int, List[int]] = {}
            keys = []
            for position, (x, y) in enumerate(pairs):
                key = self._map.key_of(x, y)
                keys.append(key)
                by_worker.setdefault(
                    self._map.owner_of_key(key), []
                ).append(position)
            mirror_futures: Dict[int, Tuple[int, object]] = {}
            for worker, positions in by_worker.items():
                slot = self._mirror_slot(worker)
                if slot is not None:
                    mirror_futures[worker] = (
                        slot,
                        self._mirror_pool.submit(
                            self._replicas[slot].extend,
                            [pairs[p] for p in positions],
                        ),
                    )
            locals_at: List[Optional[int]] = [None] * len(pairs)
            owner_at: List[int] = [0] * len(pairs)
            applied: Dict[int, List[int]] = {}
            failure: Optional[BaseException] = None
            for worker, positions in by_worker.items():
                try:
                    local_ids = self._backends[worker].extend(
                        [pairs[p] for p in positions]
                    )
                except BaseException as exc:
                    if isinstance(exc, _UNAVAILABLE):
                        self._health[worker].mark_failure()
                    failure = exc
                    break
                self._health[worker].mark_success()
                applied[worker] = local_ids
                for position, local_id in zip(positions, local_ids):
                    locals_at[position] = local_id
                    owner_at[position] = worker
            if failure is not None:
                for worker, local_ids in applied.items():
                    for local_id in local_ids:
                        try:
                            self._backends[worker].delete(local_id)
                        except Exception:  # pragma: no cover - best effort
                            pass  # orphan locals are skipped on translate
                for worker, (slot, future) in mirror_futures.items():
                    self._reap_orphan_mirror(slot, future)
                raise failure
            replica_locals_at = [-1] * len(pairs)
            for worker, (slot, future) in mirror_futures.items():
                try:
                    replica_locals = future.result()
                except Exception as exc:
                    self._mark_mirror_failure(slot, exc)
                    continue
                self._replica_health[slot].mark_success()
                for position, replica_local in zip(
                    by_worker[worker], replica_locals
                ):
                    replica_locals_at[position] = replica_local
            global_ids = []
            for position, (x, y) in enumerate(pairs):
                global_ids.append(
                    self._allocate(
                        x,
                        y,
                        owner_at[position],
                        locals_at[position],
                        keys[position],
                        replica_locals_at[position],
                    )
                )
            if pairs:
                self._version += 1
                self._maybe_rebalance()
            return global_ids

    def bulk_load(
        self, points: Sequence[Tuple[float, float]]
    ) -> List[int]:
        """Initial data load (an :meth:`extend` from the empty cluster)."""
        return self.extend(points)

    def delete(self, global_id: int) -> None:
        """Tombstone one global row on its owning shard (and replica)."""
        with self._lock.write():
            if not isinstance(global_id, int) or not self._is_live(
                global_id
            ):
                raise ClusterWriteError(
                    f"row {global_id!r} does not exist or was already "
                    "deleted"
                )
            worker = self._worker[global_id]
            local_id = self._local[global_id]
            slot = self._mirror_slot(worker)
            replica_local = self._replica_local[global_id]
            future = (
                self._mirror_pool.submit(
                    self._replicas[slot].delete, replica_local
                )
                if slot is not None and replica_local >= 0
                else None
            )
            try:
                self._backends[worker].delete(local_id)
            except BaseException as exc:
                if isinstance(exc, _UNAVAILABLE):
                    self._health[worker].mark_failure()
                if future is not None:
                    # The replica may have dropped the row the primary
                    # still serves — the copy is no longer complete.
                    try:
                        future.result()
                    except Exception:
                        pass
                    else:
                        self._mark_mirror_failure(slot, exc)
                raise
            self._health[worker].mark_success()
            if future is not None:
                try:
                    future.result()
                except Exception as exc:
                    self._mark_mirror_failure(slot, exc)
                else:
                    self._replica_health[slot].mark_success()
                    self._replica_to_global[slot].pop(replica_local, None)
                    self._replica_local[global_id] = -1
            self._alive[global_id] = 0
            del self._local_to_global[worker][local_id]
            self._live[worker] -= 1
            self._version += 1
            self._maybe_rebalance()

    # -- rebalancing -------------------------------------------------------

    def _maybe_rebalance(self) -> None:
        """Run one split when the live-count imbalance trigger fires."""
        if self.auto_rebalance:
            self._rebalance_locked()

    def rebalance_once(self, *, force: bool = False) -> bool:
        """Run at most one rebalance split; returns whether one ran.

        With ``force`` the imbalance-ratio trigger is skipped (the
        heaviest worker still needs ``min_split`` live rows and a
        splittable range).
        """
        with self._lock.write():
            return self._rebalance_locked(force=force)

    def _rebalance_locked(self, *, force: bool = False) -> bool:
        """The split itself; the caller holds the write lock."""
        total = sum(self._live)
        workers = len(self._backends)
        if total == 0 or workers < 2:
            return False
        heaviest = max(range(workers), key=self._live.__getitem__)
        lightest = min(range(workers), key=self._live.__getitem__)
        if heaviest == lightest or self._live[heaviest] < self.min_split:
            return False
        if (
            not force
            and self._live[heaviest]
            <= self.imbalance_ratio * (total / workers)
        ):
            return False
        # The heaviest worker's fullest range, by live rows.
        rows_by_range: Dict[int, List[int]] = {}
        for global_id in range(len(self._alive)):
            if self._alive[global_id] and self._worker[global_id] == heaviest:
                shard_range = self._map.range_at(self._keys[global_id])
                rows_by_range.setdefault(shard_range.lo, []).append(
                    global_id
                )
        if not rows_by_range:
            return False
        range_lo = max(rows_by_range, key=lambda lo: len(rows_by_range[lo]))
        rows = rows_by_range[range_lo]
        keys = sorted(self._keys[g] for g in rows)
        split_at = keys[len(keys) // 2]
        target_range = self._map.range_at(range_lo)
        if split_at <= target_range.lo:
            # Median collapses onto the lower bound (heavy key
            # duplication); cut at the first distinct key above it.
            above = [k for k in keys if k > target_range.lo]
            if not above:
                return False  # one hot cell; a key split cannot help
            split_at = above[0]
        new_map = self._map.split(range_lo, split_at, lightest)
        moved = sorted(
            g for g in rows if self._keys[g] >= split_at
        )
        if not moved:
            return False
        moved_points = [(self._xs[g], self._ys[g]) for g in moved]
        try:
            new_locals = self._backends[lightest].extend(moved_points)
        except _UNAVAILABLE:
            # Destination unreachable: abort before touching anything —
            # the cluster stays balanced-as-was rather than half-moved.
            self._health[lightest].mark_failure()
            return False
        # Mirror the moved rows into the destination's replica slot
        # before retiring the old copies, so every row keeps a standby
        # throughout the migration.
        slot_to = self._mirror_slot(lightest)
        new_replica_locals: Optional[List[int]] = None
        if slot_to is not None and not self._replica_dirty[slot_to]:
            try:
                new_replica_locals = self._replicas[slot_to].extend(
                    moved_points
                )
            except Exception as exc:
                self._mark_mirror_failure(slot_to, exc)
        slot_from = self._mirror_slot(heaviest)
        for index, (global_id, new_local) in enumerate(
            zip(moved, new_locals)
        ):
            old_local = self._local[global_id]
            try:
                self._backends[heaviest].delete(old_local)
            except _UNAVAILABLE:
                # Source unreachable mid-migration: the stale copy
                # stays physical but unaddressed — its local id leaves
                # the mapping below, so translation skips it.
                self._health[heaviest].mark_failure()
            del self._local_to_global[heaviest][old_local]
            old_replica_local = self._replica_local[global_id]
            if slot_from is not None and old_replica_local >= 0:
                try:
                    self._replicas[slot_from].delete(old_replica_local)
                except Exception as exc:
                    self._mark_mirror_failure(slot_from, exc)
                else:
                    self._replica_to_global[slot_from].pop(
                        old_replica_local, None
                    )
            new_replica_local = (
                new_replica_locals[index]
                if new_replica_locals is not None
                else -1
            )
            self._replica_local[global_id] = new_replica_local
            if new_replica_local >= 0:
                self._replica_to_global[slot_to][
                    new_replica_local
                ] = global_id
            self._worker[global_id] = lightest
            self._local[global_id] = new_local
            self._local_to_global[lightest][new_local] = global_id
        self._live[heaviest] -= len(moved)
        self._live[lightest] += len(moved)
        self._map = new_map
        self._rebalances += 1
        return True

    # -- reads -------------------------------------------------------------

    def query(self, spec: Query) -> List[int]:
        """Answer ``spec`` across the cluster; global ids, oracle order.

        Region kinds return ascending global ids; point kinds return
        nearest-first — identical to a single
        :class:`~repro.core.database.SpatialDatabase` holding all rows.

        A shard whose primary is unreachable answers from its clean
        replica transparently.  If any shard can answer from *neither*
        copy, the partial result is never returned silently:
        :class:`ClusterDegradedError` carries it plus the failed worker
        list.
        """
        if not isinstance(spec, Query):
            raise TypeError(f"not a query spec: {spec!r}")
        with self._lock.read():
            failed: List[int] = []
            ids = self._execute(spec, failed)
        if failed:
            raise ClusterDegradedError(ids, sorted(set(failed)))
        return ids

    def stream(self, spec: Query) -> "ClusterStream":
        """Lazily yield ``spec``'s global ids in result order.

        The scatter-gather sibling of
        :func:`repro.query.executor.stream_spec`: an unbounded kNN
        interleaves the shards' incremental wire streams by distance,
        pulling only as many candidates as the consumer demands;
        composites fan their leaves out eagerly and keep the set-merge
        lazy.  Returns a :class:`ClusterStream`; ``close()`` tears down
        every underlying shard stream, and :attr:`ClusterStream.shards_failed`
        accumulates workers lost with no usable replica (checked by the
        router when it stamps the final ``done`` chunk).

        Note the shard map and catalog are read per pulled row without
        holding the read lock across the whole consumption — a stream
        held open across writes keeps yielding its shards' MVCC
        admission-time rows, like a single server's chunked stream.
        """
        if not isinstance(spec, Query):
            raise TypeError(f"not a query spec: {spec!r}")
        failed: List[int] = []
        if isinstance(spec, KnnQuery):
            return ClusterStream(self._stream_knn(spec, failed), failed)
        if isinstance(spec, CompositeQuery):
            return ClusterStream(
                self._stream_composite(spec, failed), failed
            )
        with self._lock.read():
            ids = self._execute(spec, failed)
        return ClusterStream(iter(ids), failed)

    def _execute(self, spec: Query, failed: List[int]) -> List[int]:
        """Dispatch one spec under the read lock.

        ``failed`` collects workers that could answer from neither
        primary nor replica; the caller decides how loudly to degrade.
        """
        if isinstance(spec, CompositeQuery):
            stream = self._composite_stream(spec, failed)
            return list(stream)
        if isinstance(spec, KnnQuery):
            return self._execute_knn(spec, failed)
        if isinstance(spec, NearestQuery):
            return self._execute_nearest(spec, failed)
        if isinstance(spec, (AreaQuery, WindowQuery)):
            ids = self._region_ids(spec, failed)
            return self._finalize(spec, ids)
        raise TypeError(f"not a query spec: {spec!r}")

    # -- failover helpers --------------------------------------------------

    def _record_failure(self, failed: List[int], worker: int) -> None:
        """Record one shard lost to this result (primary and replica)."""
        if worker not in failed:
            if not failed:
                self._degraded_results += 1
            failed.append(worker)

    def _replica_usable(self, worker: int) -> Optional[int]:
        """The worker's replica slot iff it may serve failover reads.

        A slot is unusable while *dirty* (a mirror write failed — the
        copy may be incomplete, and an incomplete copy answering
        silently is exactly what degraded-result reporting exists to
        prevent) or while its own health is ``down``.
        """
        slot = self._map.replica_of(worker)
        if (
            slot is None
            or self._replicas[slot] is None
            or self._replica_dirty[slot]
            or self._replica_health[slot].is_down
        ):
            return None
        return slot

    def _failover_query_ids(
        self, worker: int, shard_spec: Query, failed: List[int]
    ):
        """One shard's eager ids, failing over to the replica.

        Tries the primary first — unless it is already marked ``down``
        and a usable replica exists, in which case the primary is
        skipped outright (no timeout tax per query on a dead worker).
        Returns ``(local_ids, local_to_global_mapping)`` from whichever
        copy answered, or ``None`` after recording ``worker`` on
        ``failed`` when both copies are lost.
        """
        slot = self._replica_usable(worker)
        if not (self._health[worker].is_down and slot is not None):
            try:
                local_ids = self._backends[worker].query_ids(shard_spec)
            except _UNAVAILABLE:
                self._health[worker].mark_failure()
                slot = self._replica_usable(worker)
            else:
                self._health[worker].mark_success()
                return local_ids, self._local_to_global[worker]
        if slot is not None:
            self._failovers += 1
            try:
                local_ids = self._replicas[slot].query_ids(shard_spec)
            except _UNAVAILABLE:
                self._replica_health[slot].mark_failure()
            else:
                self._replica_health[slot].mark_success()
                return local_ids, self._replica_to_global[slot]
        self._record_failure(failed, worker)
        return None

    def _translate_failover(
        self,
        worker: int,
        local_ids: List[int],
        mapping: Dict[int, int],
        *,
        ordered: bool,
    ) -> List[int]:
        """Shard result ids as global ids, robust to partial failure.

        Unknown locals are skipped (orphan rows left behind by a failed
        compensating delete), and — because one replica slot may back
        several workers — rows owned by a *different* worker are
        filtered out, so a failover read never double-counts rows the
        owner already contributed.
        """
        translated = (mapping.get(local) for local in local_ids)
        ids = [
            g
            for g in translated
            if g is not None and self._worker[g] == worker
        ]
        return ids if ordered else sorted(ids)

    def _finalize(self, spec: Query, ids: List[int]) -> List[int]:
        """Apply merge-layer ``predicate`` then ``limit`` (oracle order)."""
        if spec.predicate is not None:
            predicate = spec.predicate
            ids = [g for g in ids if predicate(self._point_at(g))]
        if spec.limit is not None and len(ids) > spec.limit:
            ids = ids[: spec.limit]
        return ids

    def _nonempty(self, workers) -> List[int]:
        """The given workers that hold at least one live row, sorted."""
        return sorted(w for w in workers if self._live[w] > 0)

    # -- region kinds ------------------------------------------------------

    def _region_bounds(self, spec: Query) -> Tuple[float, float, float, float]:
        """The fan-out bounding box of a region spec."""
        if isinstance(spec, WindowQuery):
            rect = spec.rect
        else:
            rect = spec.region.mbr
        return (rect.min_x, rect.min_y, rect.max_x, rect.max_y)

    def _region_ids(self, spec: Query, failed: List[int]) -> List[int]:
        """Fan a region spec out and union the sorted shard results.

        Returns the merged ascending global ids with *no* user-level
        options applied; mirrors the single-process validation errors
        for empty databases and degenerate regions so oracle parity
        holds on the edges too.  Shards lost from both copies land on
        ``failed`` and contribute nothing.
        """
        total = self.total_live
        if isinstance(spec, AreaQuery):
            if total == 0:
                raise EmptyDatabaseError("area query on an empty cluster")
            if spec.region.area <= 0.0:
                raise InvalidQueryAreaError("query area has zero area")
        elif spec.method == "voronoi":
            if total == 0:
                raise EmptyDatabaseError(
                    "voronoi window query on an empty cluster"
                )
            if spec.rect.area <= 0.0:
                raise InvalidQueryAreaError(
                    "voronoi execution needs a positive-area window"
                )
        workers = self._nonempty(
            self._map.workers_for_bounds(self._region_bounds(spec))
        )
        if not workers:
            return []
        shard_spec = replace(spec, predicate=None, limit=None)
        per_shard = []
        for worker in workers:
            outcome = self._failover_query_ids(worker, shard_spec, failed)
            if outcome is None:
                continue
            local_ids, mapping = outcome
            per_shard.append(
                self._translate_failover(
                    worker, local_ids, mapping, ordered=False
                )
            )
        if not per_shard:
            return []
        if len(per_shard) == 1:
            return per_shard[0]
        return list(union_sorted(per_shard))

    # -- point kinds -------------------------------------------------------

    def _execute_nearest(
        self, spec: NearestQuery, failed: List[int]
    ) -> List[int]:
        """1-NN via the kNN route (handles ``limit``/``predicate``)."""
        if spec.limit == 0 or self.total_live == 0:
            return []
        as_knn = KnnQuery(
            spec.point, 1, method=spec.method, predicate=spec.predicate
        )
        return self._execute_knn(as_knn, failed)

    def _execute_knn(self, spec: KnnQuery, failed: List[int]) -> List[int]:
        """Owning-shard kNN with boundary-ball expansion."""
        total = self.total_live
        k = _effective_k(spec)
        if k is None:
            k = total
        if k == 0 or total == 0:
            return []
        if spec.predicate is not None:
            # Predicates make the kth distance unknowable up front:
            # consume the distance-interleaved stream (which applies the
            # predicate once per candidate) until k rows pass, exactly
            # like the single-process filtered expansion.
            stream = self._stream_knn(replace(spec, k=k, limit=None), failed)
            try:
                return list(stream)
            finally:
                stream.close()
        x, y = spec.point.x, spec.point.y
        owner = self._map.owner_of(x, y)
        queried: List[int] = []
        candidates: List[int] = []
        if self._live[owner]:
            queried.append(owner)
            candidates.extend(self._shard_knn(owner, spec, k, failed))
        expansion: Sequence[int]
        if len(candidates) < k:
            # The owner cannot bound the kth distance — fan out.  (A
            # lost owner lands here too: its empty answer forces the
            # full fan-out, so the surviving shards still contribute.)
            expansion = self._nonempty(
                set(range(self.workers)) - set(queried)
            )
        else:
            kth = max(
                self._squared_distance(g, x, y) for g in candidates
            )
            radius = math.nextafter(math.sqrt(kth), math.inf)
            expansion = self._nonempty(
                self._map.workers_for_circle(x, y, radius)
                - set(queried)
            )
        for worker in expansion:
            candidates.extend(self._shard_knn(worker, spec, k, failed))
        candidates.sort(
            key=lambda g: (self._squared_distance(g, x, y), g)
        )
        return candidates[:k]

    def _shard_knn(
        self, worker: int, spec: KnnQuery, k: int, failed: List[int]
    ) -> List[int]:
        """One shard's ``k`` nearest, translated to global ids.

        Order-preserving translation (the merge re-sorts by exact
        distance anyway, which also neutralises a shard answering in
        the wrong order); a shard lost from both copies contributes
        nothing and is recorded on ``failed``.
        """
        shard_spec = replace(
            spec,
            k=min(k, self._live[worker]),
            predicate=None,
            limit=None,
        )
        outcome = self._failover_query_ids(worker, shard_spec, failed)
        if outcome is None:
            return []
        local_ids, mapping = outcome
        return self._translate_failover(
            worker, local_ids, mapping, ordered=True
        )

    # -- streaming ---------------------------------------------------------

    @staticmethod
    def _close_quietly(stream) -> None:
        """Best-effort close of one shard stream (teardown path)."""
        close = getattr(stream, "close", None)
        if close is not None:
            try:
                close()
            except Exception:  # pragma: no cover - teardown best effort
                pass

    def _open_knn_source(
        self, worker: int, shard_spec: Query, failed: List[int]
    ):
        """Open one shard's kNN stream, failing over to the replica.

        Returns ``(stream, mapping snapshot, replica slot or None)`` or
        ``None`` when neither copy can serve (recorded on ``failed``).
        """
        if not (
            self._health[worker].is_down
            and self._replica_usable(worker) is not None
        ):
            try:
                stream = self._backends[worker].stream_ids(
                    shard_spec, chunk_size=self.chunk_size
                )
            except _UNAVAILABLE:
                self._health[worker].mark_failure()
            else:
                self._health[worker].mark_success()
                return (
                    stream,
                    dict(self._local_to_global[worker]),
                    None,
                )
        return self._open_replica_source(worker, shard_spec, failed)

    def _open_replica_source(
        self, worker: int, shard_spec: Query, failed: List[int]
    ):
        """Open the replica-side kNN stream for one lost primary."""
        slot = self._replica_usable(worker)
        if slot is not None:
            self._failovers += 1
            try:
                stream = self._replicas[slot].stream_ids(
                    shard_spec, chunk_size=self.chunk_size
                )
            except _UNAVAILABLE:
                self._replica_health[slot].mark_failure()
            else:
                self._replica_health[slot].mark_success()
                return (
                    stream,
                    dict(self._replica_to_global[slot]),
                    slot,
                )
        self._record_failure(failed, worker)
        return None

    def _stream_knn(
        self, spec: KnnQuery, failed: List[int]
    ) -> Iterator[int]:
        """Distance-interleave every shard's incremental kNN stream.

        Each shard stream yields its rows in increasing distance, so a
        heap over the stream heads — keyed by (squared distance, global
        id) computed from the catalog — yields the cluster-wide ranking
        lazily: pulling ``n`` rows pulls only ~``n`` candidates per the
        shards' own incremental expansion.

        A shard stream that dies mid-pull fails over to its replica:
        the replica stream restarts from the nearest row and the
        per-shard *seen* set skips everything the primary already
        contributed — since the primary yielded its nearest rows first,
        the replica's first unseen row is exactly the shard's next
        candidate, so the heap invariant survives the switch.  A shard
        lost from both copies lands on ``failed``.
        """
        def produce() -> Iterator[int]:
            with self._lock.read():
                k = _effective_k(spec)
                workers = self._nonempty(range(self.workers))
                shard_spec = replace(
                    spec, k=None, predicate=None, limit=None
                )
                sources = {
                    worker: self._open_knn_source(
                        worker, shard_spec, failed
                    )
                    for worker in workers
                }
            seen: Dict[int, set] = {worker: set() for worker in workers}

            def fail_over(worker: int) -> None:
                """The current source died mid-pull: replica or give up."""
                stream, _, slot = sources[worker]
                self._close_quietly(stream)
                if slot is None:
                    self._health[worker].mark_failure()
                    sources[worker] = self._open_replica_source(
                        worker, shard_spec, failed
                    )
                else:
                    self._replica_health[slot].mark_failure()
                    self._record_failure(failed, worker)
                    sources[worker] = None

            def pull(worker: int) -> Optional[int]:
                """The shard's next unseen global id (``None`` = done)."""
                while True:
                    source = sources[worker]
                    if source is None:
                        return None
                    stream, mapping, _ = source
                    try:
                        local = next(stream)
                    except StopIteration:
                        return None
                    except _UNAVAILABLE:
                        fail_over(worker)
                        continue
                    global_id = mapping.get(local)
                    if (
                        global_id is None
                        or self._worker[global_id] != worker
                        or global_id in seen[worker]
                    ):
                        continue
                    seen[worker].add(global_id)
                    return global_id

            x, y = spec.point.x, spec.point.y
            predicate = spec.predicate
            produced = 0
            heap = []
            try:
                for worker in workers:
                    head = pull(worker)
                    if head is not None:
                        heapq.heappush(
                            heap,
                            (
                                self._squared_distance(head, x, y),
                                head,
                                worker,
                            ),
                        )
                while heap:
                    _, global_id, worker = heapq.heappop(heap)
                    refill = pull(worker)
                    if refill is not None:
                        heapq.heappush(
                            heap,
                            (
                                self._squared_distance(refill, x, y),
                                refill,
                                worker,
                            ),
                        )
                    if predicate is not None and not predicate(
                        self._point_at(global_id)
                    ):
                        continue
                    yield global_id
                    produced += 1
                    if k is not None and produced >= k:
                        return
            finally:
                for source in sources.values():
                    if source is not None:
                        self._close_quietly(source[0])

        return produce()

    def _composite_stream(
        self, spec: CompositeQuery, failed: List[int]
    ) -> Iterator[int]:
        """Merged composite stream (the caller holds the read lock)."""

        def build(node: Query) -> Iterator[int]:
            if isinstance(node, CompositeQuery):
                merged = merge_sorted_ids(
                    node, [build(part) for part in node.parts]
                )
                return self._stream_options(node, merged)
            # Composite leaves are region kinds by spec validation;
            # leaf options apply inside the leaf, before the merge.
            return iter(
                self._finalize(node, self._region_ids(node, failed))
            )

        return build(spec)

    def _stream_composite(
        self, spec: CompositeQuery, failed: List[int]
    ) -> Iterator[int]:
        """Deferred composite stream: leaves fan out on first demand."""

        def produce() -> Iterator[int]:
            with self._lock.read():
                stream = self._composite_stream(spec, failed)
            yield from stream

        return produce()

    def _stream_options(
        self, spec: Query, ids: Iterator[int]
    ) -> Iterator[int]:
        """Lazy ``predicate``/``limit`` over a merged stream (in order)."""
        if spec.predicate is not None:
            predicate = spec.predicate
            ids = (g for g in ids if predicate(self._point_at(g)))
        if spec.limit is not None:
            ids = islice(ids, spec.limit)
        return ids

    # -- stats -------------------------------------------------------------

    def cluster_section(self) -> Dict:
        """The router's additive ``cluster`` stats section."""
        return {
            "workers": self.workers,
            "points": self.total_live,
            "version": self._version,
            "live": self.live_counts,
            "rebalances": self._rebalances,
            "ranges": self._map.as_dicts(),
            "replicas": sum(
                1 for replica in self._replicas if replica is not None
            ),
            "health": self.health_snapshot(),
            "replica_dirty": list(self._replica_dirty),
            "failovers": self._failovers,
            "degraded_results": self._degraded_results,
            "mirror_failures": self._mirror_failures,
            "recoveries": self._recoveries,
        }

    def stats_frame(self) -> Dict:
        """The cluster-merged ``stats`` wire frame.

        Worker frames merge counter-wise and histogram-wise
        (:func:`repro.cluster.stats.merge_stats_frames`); backends that
        do not serve stats (in-process shards) contribute empty
        sections.  The router's own ``cluster`` section always rides
        along.
        """
        with self._lock.read():
            frames = []
            for worker, backend in enumerate(self._backends):
                try:
                    frame = backend.stats_frame()
                except _UNAVAILABLE:
                    # A dead worker must not take the whole stats frame
                    # down — the cluster section below reports it.
                    self._health[worker].mark_failure()
                    continue
                if frame is not None:
                    frames.append(frame)
            section = self.cluster_section()
        if not frames:
            frames = [
                {
                    "type": "stats",
                    "server": {},
                    "coalescer": {},
                    "engine": {},
                }
            ]
        return merge_stats_frames(frames, cluster=section)

    # -- recovery ----------------------------------------------------------

    def rebuild_worker(self, worker: int, backend: ShardBackend) -> int:
        """Swap a fresh, empty backend in for ``worker`` and reload it.

        The supervisor calls this after respawning a dead worker: every
        live catalog row owned by ``worker`` is re-extended into the
        new backend in ascending global-id order (the coordinator's
        catalog holds every acked row's coordinates, so nothing acked
        is lost even without a replica), the local-id mappings are
        rebuilt, and the worker's health resets to ``up``.  Runs under
        the write lock — queries either see the old dead backend (and
        fail over) or the rebuilt one, never a half-loaded shard.
        Returns the number of rows restored; the old backend is closed
        best-effort.
        """
        with self._lock.write():
            old = self._backends[worker]
            self._backends[worker] = backend
            rows = [
                g
                for g in range(len(self._alive))
                if self._alive[g] and self._worker[g] == worker
            ]
            self._local_to_global[worker] = {}
            local_ids = (
                backend.extend(
                    [(self._xs[g], self._ys[g]) for g in rows]
                )
                if rows
                else []
            )
            for global_id, local_id in zip(rows, local_ids):
                self._local[global_id] = local_id
                self._local_to_global[worker][local_id] = global_id
            self._live[worker] = len(rows)
            self._health[worker].reset()
            self._recoveries += 1
        try:
            old.close()
        except Exception:  # pragma: no cover - teardown best effort
            pass
        return len(rows)

    def rebuild_replica(
        self, slot: int, backend: Optional[ShardBackend] = None
    ) -> int:
        """Re-mirror every row backed by ``slot``; clears its dirty bit.

        Pass a fresh, empty ``backend`` to replace a dead replica
        process; omit it only when the existing replica backend is
        known empty (a dirty-but-alive replica must be replaced — its
        stale rows cannot be enumerated remotely).  Mirrors all live
        rows of every worker mapped to the slot, resets health, and
        re-enables failover reads.  Returns the number of rows
        mirrored; a failed reload leaves the slot dirty and re-raises.
        """
        with self._lock.write():
            old = None
            if backend is not None:
                old = self._replicas[slot]
                self._replicas[slot] = backend
            replica = self._replicas[slot]
            if replica is None:
                raise ValueError(f"replica slot {slot} has no backend")
            mapped = {
                w
                for w in range(self.workers)
                if self._map.replica_of(w) == slot
            }
            rows = [
                g
                for g in range(len(self._alive))
                if self._alive[g] and self._worker[g] in mapped
            ]
            self._replica_to_global[slot] = {}
            try:
                replica_locals = (
                    replica.extend(
                        [(self._xs[g], self._ys[g]) for g in rows]
                    )
                    if rows
                    else []
                )
            except Exception:
                self._replica_dirty[slot] = True
                self._mirror_failures += 1
                raise
            for global_id, replica_local in zip(rows, replica_locals):
                self._replica_local[global_id] = replica_local
                self._replica_to_global[slot][replica_local] = global_id
            self._replica_dirty[slot] = False
            self._replica_health[slot].reset()
            self._recoveries += 1
        if old is not None:
            try:
                old.close()
            except Exception:  # pragma: no cover - teardown best effort
                pass
        return len(rows)

    # -- persistence hooks -------------------------------------------------

    def export_state(self) -> Dict:
        """The catalog/shard-map state a snapshot persists.

        Coordinates, global ids, and owners of every *live* row (dead
        ids reappear as holes on restore), plus the shard map and the
        version counters.  See :mod:`repro.cluster.persist`.
        """
        with self._lock.read():
            rows = [
                (
                    g,
                    self._xs[g],
                    self._ys[g],
                    self._worker[g],
                )
                for g in range(len(self._alive))
                if self._alive[g]
            ]
            return {
                "order": self._map.order,
                "workers": self.workers,
                "ranges": self._map.as_dicts(),
                "next_global_id": len(self._alive),
                "version": self._version,
                "rebalances": self._rebalances,
                "rows": rows,
            }

    @classmethod
    def restore(
        cls,
        backends: Sequence[ShardBackend],
        state: Dict,
        **options,
    ) -> "ClusterCoordinator":
        """Rebuild a coordinator (and load its shards) from a snapshot.

        ``backends`` must be empty workers, one per snapshot worker.
        Each worker is bulk-loaded with its live rows in ascending
        global-id order and the catalog is rebuilt with the original
        global ids (deleted ids stay holes, so later writes continue
        the original id sequence).
        """
        if len(backends) != int(state["workers"]):
            raise ValueError(
                f"snapshot was taken with {state['workers']} workers, "
                f"got {len(backends)} backends"
            )
        shard_map = ShardMap.from_dicts(
            state["ranges"], order=int(state["order"])
        )
        coordinator = cls(backends, shard_map=shard_map, **options)
        next_global_id = int(state["next_global_id"])
        for _ in range(next_global_id):
            coordinator._xs.append(0.0)
            coordinator._ys.append(0.0)
            coordinator._keys.append(0)
            coordinator._worker.append(-1)
            coordinator._local.append(-1)
            coordinator._alive.append(0)
            coordinator._replica_local.append(-1)
        by_worker: Dict[int, List[Tuple[int, float, float]]] = {}
        for global_id, x, y, worker in state["rows"]:
            by_worker.setdefault(int(worker), []).append(
                (int(global_id), float(x), float(y))
            )
        for worker, rows in sorted(by_worker.items()):
            rows.sort()
            local_ids = backends[worker].extend(
                [(x, y) for _, x, y in rows]
            )
            for (global_id, x, y), local_id in zip(rows, local_ids):
                coordinator._xs[global_id] = x
                coordinator._ys[global_id] = y
                coordinator._keys[global_id] = shard_map.key_of(x, y)
                coordinator._worker[global_id] = worker
                coordinator._local[global_id] = local_id
                coordinator._alive[global_id] = 1
                coordinator._local_to_global[worker][local_id] = global_id
            coordinator._live[worker] = len(rows)
            slot = coordinator._mirror_slot(worker)
            if slot is not None:
                try:
                    replica_locals = coordinator._replicas[slot].extend(
                        [(x, y) for _, x, y in rows]
                    )
                except Exception as exc:
                    coordinator._mark_mirror_failure(slot, exc)
                else:
                    for (global_id, _, _), replica_local in zip(
                        rows, replica_locals
                    ):
                        coordinator._replica_local[
                            global_id
                        ] = replica_local
                        coordinator._replica_to_global[slot][
                            replica_local
                        ] = global_id
        coordinator._version = int(state.get("version", 0))
        coordinator._rebalances = int(state.get("rebalances", 0))
        return coordinator
