"""Scatter-gather query coordination over Hilbert-sharded workers.

The :class:`ClusterCoordinator` is the cluster's brain, independent of
any transport: it owns the :class:`~repro.cluster.shardmap.ShardMap`,
the global row-id catalog, and the routing/merge rules, and talks to
its shards through the :class:`~repro.cluster.backends.ShardBackend`
interface (in-process databases or remote workers alike — the network
router wraps this same class).

**Identity.**  Clients see *global* row ids, assigned in write-arrival
order exactly like a single :class:`~repro.core.database.SpatialDatabase`
assigns its row ids — so a cluster driven by a trace produces the same
ids as the single-process oracle.  Each shard stores its rows under its
own local ids; the coordinator's catalog maps both directions and also
keeps every live row's coordinates, which is what lets it evaluate
predicates, order kNN merges by exact distance, and migrate rows during
a rebalance without ever reading data back from a worker.

**Routing.**  Point writes and kNN/nearest seeds go to the single shard
owning the point's Hilbert key.  A bounded kNN expands beyond the owner
only when the kth-distance ball crosses a shard boundary
(:meth:`ShardMap.workers_for_circle`).  Window/area (and composite
leaves) fan out to every shard whose Hilbert range intersects the
region's key interval; shard-local sorted id lists are translated to
global ids and merged with :func:`repro.query.merge.union_sorted`.
Streaming kNN interleaves the shards' ``incremental_nearest`` wire
streams by distance.  Predicates and limits are *never* pushed down:
shards answer the raw geometric spec and the coordinator applies the
user-level options at the merge layer, in the same order
:func:`repro.query.executor.finalize_record` does — predicate first,
then limit.

**Rebalancing.**  After any write, if the heaviest worker's live count
exceeds ``imbalance_ratio`` times the mean, its fullest Hilbert range
is split at the live median key and the upper half migrates to the
lightest worker (see :meth:`rebalance_once`).
"""

from __future__ import annotations

import heapq
import math
import threading
from array import array
from itertools import islice
from contextlib import contextmanager
from dataclasses import replace
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.cluster.backends import ShardBackend
from repro.cluster.shardmap import ShardMap
from repro.cluster.stats import merge_stats_frames
from repro.core.exceptions import EmptyDatabaseError, InvalidQueryAreaError
from repro.engine.order import DEFAULT_ORDER
from repro.geometry.point import Point
from repro.query.merge import union_sorted
from repro.query.executor import merge_sorted_ids
from repro.query.spec import (
    AreaQuery,
    CompositeQuery,
    KnnQuery,
    NearestQuery,
    Query,
    WindowQuery,
)

__all__ = ["ClusterCoordinator", "ClusterWriteError"]


class ClusterWriteError(ValueError):
    """A write the cluster must reject (unknown row, bad coordinates)."""


class _RWLock:
    """Many concurrent readers or one writer (no reentrancy needed)."""

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writing = False

    @contextmanager
    def read(self):
        """Hold shared read access for the ``with`` block."""
        with self._cond:
            while self._writing:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if not self._readers:
                    self._cond.notify_all()

    @contextmanager
    def write(self):
        """Hold exclusive write access for the ``with`` block."""
        with self._cond:
            while self._writing or self._readers:
                self._cond.wait()
            self._writing = True
        try:
            yield
        finally:
            with self._cond:
                self._writing = False
                self._cond.notify_all()


def _effective_k(spec: KnnQuery) -> Optional[int]:
    """The row budget of a kNN spec (``k`` capped by ``limit``).

    Mirrors the single-process executor: ``None`` means unbounded.
    """
    if spec.k is None:
        return spec.limit
    if spec.limit is not None:
        return min(spec.k, spec.limit)
    return spec.k


def _require_finite(x: float, y: float) -> None:
    """Reject non-finite write coordinates before any shard sees them."""
    if not (math.isfinite(x) and math.isfinite(y)):
        raise ClusterWriteError(
            f"coordinates must be finite, got ({x!r}, {y!r})"
        )


class ClusterCoordinator:
    """Routing, identity, and merge logic for one shard cluster.

    Parameters
    ----------
    backends:
        One :class:`~repro.cluster.backends.ShardBackend` per worker,
        in worker-index order.  Workers start empty unless restoring.
    order:
        Hilbert refinement order of the shard map (default 8).
    shard_map:
        Explicit starting map; defaults to an even partition.
    imbalance_ratio:
        Rebalance triggers when the heaviest worker's live count
        exceeds this multiple of the mean live count.
    min_split:
        Never split a worker holding fewer live rows than this.
    auto_rebalance:
        Check the imbalance trigger after every write batch.

    Thread safety: reads run concurrently; writes (and rebalances) are
    exclusive, guarded by an internal readers-writer lock.
    """

    def __init__(
        self,
        backends: Sequence[ShardBackend],
        *,
        order: int = DEFAULT_ORDER,
        shard_map: Optional[ShardMap] = None,
        imbalance_ratio: float = 2.0,
        min_split: int = 64,
        auto_rebalance: bool = True,
        chunk_size: int = 256,
    ) -> None:
        if not backends:
            raise ValueError("need at least one shard backend")
        self._backends = list(backends)
        self._map = shard_map or ShardMap.even(len(backends), order=order)
        if self._map.all_workers() - set(range(len(backends))):
            raise ValueError("shard map names workers without a backend")
        #: rebalance trigger ratio (heaviest vs mean live count)
        self.imbalance_ratio = float(imbalance_ratio)
        #: minimum live rows on a worker before it may split
        self.min_split = int(min_split)
        #: run the rebalance check after each write batch
        self.auto_rebalance = bool(auto_rebalance)
        #: rows per chunk on shard wire streams
        self.chunk_size = int(chunk_size)
        # Catalog, indexed by global id.  Dead/placeholder rows keep
        # their slot (ids are never reused) with ``_alive == 0``.
        self._xs = array("d")
        self._ys = array("d")
        self._keys = array("q")
        self._worker = array("i")
        self._local = array("q")
        self._alive = bytearray()
        self._local_to_global: List[Dict[int, int]] = [
            {} for _ in self._backends
        ]
        self._live = [0] * len(self._backends)
        self._version = 0
        self._rebalances = 0
        self._lock = _RWLock()

    # -- introspection -----------------------------------------------------

    @property
    def workers(self) -> int:
        """Number of worker shards."""
        return len(self._backends)

    @property
    def shard_map(self) -> ShardMap:
        """The current Hilbert-range routing table."""
        return self._map

    @property
    def version(self) -> int:
        """Monotone cluster data version (one tick per applied write)."""
        return self._version

    @property
    def total_live(self) -> int:
        """Live rows across all shards."""
        return sum(self._live)

    @property
    def live_counts(self) -> List[int]:
        """Per-worker live row counts (copy)."""
        return list(self._live)

    @property
    def rebalances(self) -> int:
        """Completed rebalance splits."""
        return self._rebalances

    def point(self, global_id: int) -> Point:
        """The stored point of a live global row id."""
        if not self._is_live(global_id):
            raise KeyError(f"no live row {global_id}")
        return Point(self._xs[global_id], self._ys[global_id])

    def _point_at(self, global_id: int) -> Point:
        """Catalog coordinates without the liveness check.

        Merge-layer predicates run through here: like the oracle's
        ``database.point``, a tombstoned row's coordinates stay
        addressable, so streams admitted before a delete keep working.
        """
        return Point(self._xs[global_id], self._ys[global_id])

    def _is_live(self, global_id: int) -> bool:
        return 0 <= global_id < len(self._alive) and bool(
            self._alive[global_id]
        )

    def _squared_distance(self, global_id: int, x: float, y: float) -> float:
        dx = self._xs[global_id] - x
        dy = self._ys[global_id] - y
        return dx * dx + dy * dy

    def close(self) -> None:
        """Close every shard backend."""
        for backend in self._backends:
            backend.close()

    # -- writes ------------------------------------------------------------

    def _allocate(
        self, x: float, y: float, worker: int, local_id: int, key: int
    ) -> int:
        """Record one new live row in the catalog; returns its global id."""
        global_id = len(self._alive)
        self._xs.append(x)
        self._ys.append(y)
        self._keys.append(key)
        self._worker.append(worker)
        self._local.append(local_id)
        self._alive.append(1)
        self._local_to_global[worker][local_id] = global_id
        self._live[worker] += 1
        return global_id

    def insert(self, x: float, y: float) -> int:
        """Route one point to its owning shard; returns its global id."""
        x, y = float(x), float(y)
        _require_finite(x, y)
        with self._lock.write():
            key = self._map.key_of(x, y)
            worker = self._map.owner_of_key(key)
            local_id = self._backends[worker].insert(x, y)
            global_id = self._allocate(x, y, worker, local_id, key)
            self._version += 1
            self._maybe_rebalance()
            return global_id

    def extend(
        self, points: Sequence[Tuple[float, float]]
    ) -> List[int]:
        """Partition a batch by owner shard; returns global ids in order."""
        pairs = [(float(x), float(y)) for x, y in points]
        for x, y in pairs:
            _require_finite(x, y)
        with self._lock.write():
            by_worker: Dict[int, List[int]] = {}
            keys = []
            for position, (x, y) in enumerate(pairs):
                key = self._map.key_of(x, y)
                keys.append(key)
                by_worker.setdefault(
                    self._map.owner_of_key(key), []
                ).append(position)
            locals_at: List[Optional[int]] = [None] * len(pairs)
            owner_at: List[int] = [0] * len(pairs)
            for worker, positions in by_worker.items():
                local_ids = self._backends[worker].extend(
                    [pairs[p] for p in positions]
                )
                for position, local_id in zip(positions, local_ids):
                    locals_at[position] = local_id
                    owner_at[position] = worker
            global_ids = []
            for position, (x, y) in enumerate(pairs):
                global_ids.append(
                    self._allocate(
                        x,
                        y,
                        owner_at[position],
                        locals_at[position],
                        keys[position],
                    )
                )
            if pairs:
                self._version += 1
                self._maybe_rebalance()
            return global_ids

    def bulk_load(
        self, points: Sequence[Tuple[float, float]]
    ) -> List[int]:
        """Initial data load (an :meth:`extend` from the empty cluster)."""
        return self.extend(points)

    def delete(self, global_id: int) -> None:
        """Tombstone one global row on its owning shard."""
        with self._lock.write():
            if not isinstance(global_id, int) or not self._is_live(
                global_id
            ):
                raise ClusterWriteError(
                    f"row {global_id!r} does not exist or was already "
                    "deleted"
                )
            worker = self._worker[global_id]
            local_id = self._local[global_id]
            self._backends[worker].delete(local_id)
            self._alive[global_id] = 0
            del self._local_to_global[worker][local_id]
            self._live[worker] -= 1
            self._version += 1
            self._maybe_rebalance()

    # -- rebalancing -------------------------------------------------------

    def _maybe_rebalance(self) -> None:
        """Run one split when the live-count imbalance trigger fires."""
        if self.auto_rebalance:
            self._rebalance_locked()

    def rebalance_once(self, *, force: bool = False) -> bool:
        """Run at most one rebalance split; returns whether one ran.

        With ``force`` the imbalance-ratio trigger is skipped (the
        heaviest worker still needs ``min_split`` live rows and a
        splittable range).
        """
        with self._lock.write():
            return self._rebalance_locked(force=force)

    def _rebalance_locked(self, *, force: bool = False) -> bool:
        """The split itself; the caller holds the write lock."""
        total = sum(self._live)
        workers = len(self._backends)
        if total == 0 or workers < 2:
            return False
        heaviest = max(range(workers), key=self._live.__getitem__)
        lightest = min(range(workers), key=self._live.__getitem__)
        if heaviest == lightest or self._live[heaviest] < self.min_split:
            return False
        if (
            not force
            and self._live[heaviest]
            <= self.imbalance_ratio * (total / workers)
        ):
            return False
        # The heaviest worker's fullest range, by live rows.
        rows_by_range: Dict[int, List[int]] = {}
        for global_id in range(len(self._alive)):
            if self._alive[global_id] and self._worker[global_id] == heaviest:
                shard_range = self._map.range_at(self._keys[global_id])
                rows_by_range.setdefault(shard_range.lo, []).append(
                    global_id
                )
        if not rows_by_range:
            return False
        range_lo = max(rows_by_range, key=lambda lo: len(rows_by_range[lo]))
        rows = rows_by_range[range_lo]
        keys = sorted(self._keys[g] for g in rows)
        split_at = keys[len(keys) // 2]
        target_range = self._map.range_at(range_lo)
        if split_at <= target_range.lo:
            # Median collapses onto the lower bound (heavy key
            # duplication); cut at the first distinct key above it.
            above = [k for k in keys if k > target_range.lo]
            if not above:
                return False  # one hot cell; a key split cannot help
            split_at = above[0]
        new_map = self._map.split(range_lo, split_at, lightest)
        moved = sorted(
            g for g in rows if self._keys[g] >= split_at
        )
        if not moved:
            return False
        new_locals = self._backends[lightest].extend(
            [(self._xs[g], self._ys[g]) for g in moved]
        )
        for global_id, new_local in zip(moved, new_locals):
            old_local = self._local[global_id]
            self._backends[heaviest].delete(old_local)
            del self._local_to_global[heaviest][old_local]
            self._worker[global_id] = lightest
            self._local[global_id] = new_local
            self._local_to_global[lightest][new_local] = global_id
        self._live[heaviest] -= len(moved)
        self._live[lightest] += len(moved)
        self._map = new_map
        self._rebalances += 1
        return True

    # -- reads -------------------------------------------------------------

    def query(self, spec: Query) -> List[int]:
        """Answer ``spec`` across the cluster; global ids, oracle order.

        Region kinds return ascending global ids; point kinds return
        nearest-first — identical to a single
        :class:`~repro.core.database.SpatialDatabase` holding all rows.
        """
        if not isinstance(spec, Query):
            raise TypeError(f"not a query spec: {spec!r}")
        with self._lock.read():
            return self._execute(spec)

    def stream(self, spec: Query) -> Iterator[int]:
        """Lazily yield ``spec``'s global ids in result order.

        The scatter-gather sibling of
        :func:`repro.query.executor.stream_spec`: an unbounded kNN
        interleaves the shards' incremental wire streams by distance,
        pulling only as many candidates as the consumer demands;
        composites fan their leaves out eagerly and keep the set-merge
        lazy.  ``close()`` on the returned generator tears down every
        underlying shard stream.

        Note the shard map and catalog are read per pulled row without
        holding the read lock across the whole consumption — a stream
        held open across writes keeps yielding its shards' MVCC
        admission-time rows, like a single server's chunked stream.
        """
        if not isinstance(spec, Query):
            raise TypeError(f"not a query spec: {spec!r}")
        if isinstance(spec, KnnQuery):
            return self._stream_knn(spec)
        if isinstance(spec, CompositeQuery):
            return self._stream_composite(spec)
        with self._lock.read():
            return iter(self._execute(spec))

    def _execute(self, spec: Query) -> List[int]:
        """Dispatch one spec under the read lock."""
        if isinstance(spec, CompositeQuery):
            stream = self._composite_stream(spec)
            return list(stream)
        if isinstance(spec, KnnQuery):
            return self._execute_knn(spec)
        if isinstance(spec, NearestQuery):
            return self._execute_nearest(spec)
        if isinstance(spec, (AreaQuery, WindowQuery)):
            ids = self._region_ids(spec)
            return self._finalize(spec, ids)
        raise TypeError(f"not a query spec: {spec!r}")

    def _finalize(self, spec: Query, ids: List[int]) -> List[int]:
        """Apply merge-layer ``predicate`` then ``limit`` (oracle order)."""
        if spec.predicate is not None:
            predicate = spec.predicate
            ids = [g for g in ids if predicate(self._point_at(g))]
        if spec.limit is not None and len(ids) > spec.limit:
            ids = ids[: spec.limit]
        return ids

    def _nonempty(self, workers) -> List[int]:
        """The given workers that hold at least one live row, sorted."""
        return sorted(w for w in workers if self._live[w] > 0)

    def _translate_sorted(self, worker: int, local_ids: List[int]) -> List[int]:
        """Shard-local result ids as a sorted global id list."""
        mapping = self._local_to_global[worker]
        return sorted(mapping[local] for local in local_ids)

    # -- region kinds ------------------------------------------------------

    def _region_bounds(self, spec: Query) -> Tuple[float, float, float, float]:
        """The fan-out bounding box of a region spec."""
        if isinstance(spec, WindowQuery):
            rect = spec.rect
        else:
            rect = spec.region.mbr
        return (rect.min_x, rect.min_y, rect.max_x, rect.max_y)

    def _region_ids(self, spec: Query) -> List[int]:
        """Fan a region spec out and union the sorted shard results.

        Returns the merged ascending global ids with *no* user-level
        options applied; mirrors the single-process validation errors
        for empty databases and degenerate regions so oracle parity
        holds on the edges too.
        """
        total = self.total_live
        if isinstance(spec, AreaQuery):
            if total == 0:
                raise EmptyDatabaseError("area query on an empty cluster")
            if spec.region.area <= 0.0:
                raise InvalidQueryAreaError("query area has zero area")
        elif spec.method == "voronoi":
            if total == 0:
                raise EmptyDatabaseError(
                    "voronoi window query on an empty cluster"
                )
            if spec.rect.area <= 0.0:
                raise InvalidQueryAreaError(
                    "voronoi execution needs a positive-area window"
                )
        workers = self._nonempty(
            self._map.workers_for_bounds(self._region_bounds(spec))
        )
        if not workers:
            return []
        shard_spec = replace(spec, predicate=None, limit=None)
        per_shard = [
            self._translate_sorted(
                worker, self._backends[worker].query_ids(shard_spec)
            )
            for worker in workers
        ]
        if len(per_shard) == 1:
            return per_shard[0]
        return list(union_sorted(per_shard))

    # -- point kinds -------------------------------------------------------

    def _execute_nearest(self, spec: NearestQuery) -> List[int]:
        """1-NN via the kNN route (handles ``limit``/``predicate``)."""
        if spec.limit == 0 or self.total_live == 0:
            return []
        as_knn = KnnQuery(
            spec.point, 1, method=spec.method, predicate=spec.predicate
        )
        return self._execute_knn(as_knn)

    def _execute_knn(self, spec: KnnQuery) -> List[int]:
        """Owning-shard kNN with boundary-ball expansion."""
        total = self.total_live
        k = _effective_k(spec)
        if k is None:
            k = total
        if k == 0 or total == 0:
            return []
        if spec.predicate is not None:
            # Predicates make the kth distance unknowable up front:
            # consume the distance-interleaved stream (which applies the
            # predicate once per candidate) until k rows pass, exactly
            # like the single-process filtered expansion.
            stream = self._stream_knn(replace(spec, k=k, limit=None))
            try:
                return list(stream)
            finally:
                stream.close()
        x, y = spec.point.x, spec.point.y
        owner = self._map.owner_of(x, y)
        queried: List[int] = []
        candidates: List[int] = []
        if self._live[owner]:
            queried.append(owner)
            candidates.extend(self._shard_knn(owner, spec, k))
        expansion: Sequence[int]
        if len(candidates) < k:
            # The owner cannot bound the kth distance — fan out.
            expansion = self._nonempty(
                set(range(self.workers)) - set(queried)
            )
        else:
            kth = max(
                self._squared_distance(g, x, y) for g in candidates
            )
            radius = math.nextafter(math.sqrt(kth), math.inf)
            expansion = self._nonempty(
                self._map.workers_for_circle(x, y, radius)
                - set(queried)
            )
        for worker in expansion:
            candidates.extend(self._shard_knn(worker, spec, k))
        candidates.sort(
            key=lambda g: (self._squared_distance(g, x, y), g)
        )
        return candidates[:k]

    def _shard_knn(self, worker: int, spec: KnnQuery, k: int) -> List[int]:
        """One shard's ``k`` nearest, translated to global ids."""
        shard_spec = replace(
            spec,
            k=min(k, self._live[worker]),
            predicate=None,
            limit=None,
        )
        mapping = self._local_to_global[worker]
        return [
            mapping[local]
            for local in self._backends[worker].query_ids(shard_spec)
        ]

    # -- streaming ---------------------------------------------------------

    def _stream_knn(self, spec: KnnQuery) -> Iterator[int]:
        """Distance-interleave every shard's incremental kNN stream.

        Each shard stream yields its rows in increasing distance, so a
        heap over the stream heads — keyed by (squared distance, global
        id) computed from the catalog — yields the cluster-wide ranking
        lazily: pulling ``n`` rows pulls only ~``n`` candidates per the
        shards' own incremental expansion.
        """
        def produce() -> Iterator[int]:
            with self._lock.read():
                k = _effective_k(spec)
                workers = self._nonempty(range(self.workers))
                shard_spec = replace(
                    spec, k=None, predicate=None, limit=None
                )
                streams = {
                    worker: self._backends[worker].stream_ids(
                        shard_spec, chunk_size=self.chunk_size
                    )
                    for worker in workers
                }
                mappings = {
                    worker: dict(self._local_to_global[worker])
                    for worker in workers
                }
            x, y = spec.point.x, spec.point.y
            predicate = spec.predicate
            produced = 0
            heap = []
            try:
                for worker, stream in streams.items():
                    for local in stream:
                        global_id = mappings[worker][local]
                        heapq.heappush(
                            heap,
                            (
                                self._squared_distance(global_id, x, y),
                                global_id,
                                worker,
                            ),
                        )
                        break
                while heap:
                    _, global_id, worker = heapq.heappop(heap)
                    for local in streams[worker]:
                        refill = mappings[worker][local]
                        heapq.heappush(
                            heap,
                            (
                                self._squared_distance(refill, x, y),
                                refill,
                                worker,
                            ),
                        )
                        break
                    if predicate is not None and not predicate(
                        self._point_at(global_id)
                    ):
                        continue
                    yield global_id
                    produced += 1
                    if k is not None and produced >= k:
                        return
            finally:
                for stream in streams.values():
                    close = getattr(stream, "close", None)
                    if close is not None:
                        close()

        return produce()

    def _composite_stream(self, spec: CompositeQuery) -> Iterator[int]:
        """Merged composite stream (the caller holds the read lock)."""

        def build(node: Query) -> Iterator[int]:
            if isinstance(node, CompositeQuery):
                merged = merge_sorted_ids(
                    node, [build(part) for part in node.parts]
                )
                return self._stream_options(node, merged)
            # Composite leaves are region kinds by spec validation;
            # leaf options apply inside the leaf, before the merge.
            return iter(self._finalize(node, self._region_ids(node)))

        return build(spec)

    def _stream_composite(self, spec: CompositeQuery) -> Iterator[int]:
        """Deferred composite stream: leaves fan out on first demand."""

        def produce() -> Iterator[int]:
            with self._lock.read():
                stream = self._composite_stream(spec)
            yield from stream

        return produce()

    def _stream_options(
        self, spec: Query, ids: Iterator[int]
    ) -> Iterator[int]:
        """Lazy ``predicate``/``limit`` over a merged stream (in order)."""
        if spec.predicate is not None:
            predicate = spec.predicate
            ids = (g for g in ids if predicate(self._point_at(g)))
        if spec.limit is not None:
            ids = islice(ids, spec.limit)
        return ids

    # -- stats -------------------------------------------------------------

    def cluster_section(self) -> Dict:
        """The router's additive ``cluster`` stats section."""
        return {
            "workers": self.workers,
            "points": self.total_live,
            "version": self._version,
            "live": self.live_counts,
            "rebalances": self._rebalances,
            "ranges": self._map.as_dicts(),
        }

    def stats_frame(self) -> Dict:
        """The cluster-merged ``stats`` wire frame.

        Worker frames merge counter-wise and histogram-wise
        (:func:`repro.cluster.stats.merge_stats_frames`); backends that
        do not serve stats (in-process shards) contribute empty
        sections.  The router's own ``cluster`` section always rides
        along.
        """
        with self._lock.read():
            frames = []
            for backend in self._backends:
                frame = backend.stats_frame()
                if frame is not None:
                    frames.append(frame)
            section = self.cluster_section()
        if not frames:
            frames = [
                {
                    "type": "stats",
                    "server": {},
                    "coalescer": {},
                    "engine": {},
                }
            ]
        return merge_stats_frames(frames, cluster=section)

    # -- persistence hooks -------------------------------------------------

    def export_state(self) -> Dict:
        """The catalog/shard-map state a snapshot persists.

        Coordinates, global ids, and owners of every *live* row (dead
        ids reappear as holes on restore), plus the shard map and the
        version counters.  See :mod:`repro.cluster.persist`.
        """
        with self._lock.read():
            rows = [
                (
                    g,
                    self._xs[g],
                    self._ys[g],
                    self._worker[g],
                )
                for g in range(len(self._alive))
                if self._alive[g]
            ]
            return {
                "order": self._map.order,
                "workers": self.workers,
                "ranges": self._map.as_dicts(),
                "next_global_id": len(self._alive),
                "version": self._version,
                "rebalances": self._rebalances,
                "rows": rows,
            }

    @classmethod
    def restore(
        cls,
        backends: Sequence[ShardBackend],
        state: Dict,
        **options,
    ) -> "ClusterCoordinator":
        """Rebuild a coordinator (and load its shards) from a snapshot.

        ``backends`` must be empty workers, one per snapshot worker.
        Each worker is bulk-loaded with its live rows in ascending
        global-id order and the catalog is rebuilt with the original
        global ids (deleted ids stay holes, so later writes continue
        the original id sequence).
        """
        if len(backends) != int(state["workers"]):
            raise ValueError(
                f"snapshot was taken with {state['workers']} workers, "
                f"got {len(backends)} backends"
            )
        shard_map = ShardMap.from_dicts(
            state["ranges"], order=int(state["order"])
        )
        coordinator = cls(backends, shard_map=shard_map, **options)
        next_global_id = int(state["next_global_id"])
        for _ in range(next_global_id):
            coordinator._xs.append(0.0)
            coordinator._ys.append(0.0)
            coordinator._keys.append(0)
            coordinator._worker.append(-1)
            coordinator._local.append(-1)
            coordinator._alive.append(0)
        by_worker: Dict[int, List[Tuple[int, float, float]]] = {}
        for global_id, x, y, worker in state["rows"]:
            by_worker.setdefault(int(worker), []).append(
                (int(global_id), float(x), float(y))
            )
        for worker, rows in sorted(by_worker.items()):
            rows.sort()
            local_ids = backends[worker].extend(
                [(x, y) for _, x, y in rows]
            )
            for (global_id, x, y), local_id in zip(rows, local_ids):
                coordinator._xs[global_id] = x
                coordinator._ys[global_id] = y
                coordinator._keys[global_id] = shard_map.key_of(x, y)
                coordinator._worker[global_id] = worker
                coordinator._local[global_id] = local_id
                coordinator._alive[global_id] = 1
                coordinator._local_to_global[worker][local_id] = global_id
            coordinator._live[worker] = len(rows)
        coordinator._version = int(state.get("version", 0))
        coordinator._rebalances = int(state.get("rebalances", 0))
        return coordinator
