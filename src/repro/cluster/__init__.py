"""Hilbert-sharded multi-process cluster serving.

The cluster layer scales the single-process server across cores: a
**router** process partitions the unit square into contiguous
Hilbert-key ranges (:mod:`repro.cluster.shardmap`), routes and merges
queries across N **worker** replicas (:mod:`repro.cluster.coordinator`),
and speaks the same v1 NDJSON protocol to clients
(:mod:`repro.cluster.router`), so existing clients work unchanged.
Workers are plain ``python -m repro serve`` processes spawned on
ephemeral ports (:mod:`repro.cluster.launcher`); snapshots persist
per-shard with a manifest (:mod:`repro.cluster.persist`); stats frames
merge histogram-wise (:mod:`repro.cluster.stats`).  See
``docs/CLUSTER.md`` for topology, routing rules, and rebalance
semantics.
"""

from repro.cluster.backends import LocalShard, RemoteShard, ShardBackend
from repro.cluster.coordinator import ClusterCoordinator, ClusterWriteError
from repro.cluster.shardmap import ShardMap, ShardRange, cell_cover
from repro.cluster.stats import merge_stats_frames

__all__ = [
    "ClusterCoordinator",
    "ClusterWriteError",
    "LocalShard",
    "RemoteShard",
    "ShardBackend",
    "ShardMap",
    "ShardRange",
    "cell_cover",
    "merge_stats_frames",
]
