"""Hilbert-sharded multi-process cluster serving.

The cluster layer scales the single-process server across cores: a
**router** process partitions the unit square into contiguous
Hilbert-key ranges (:mod:`repro.cluster.shardmap`), routes and merges
queries across N **worker** replicas (:mod:`repro.cluster.coordinator`),
and speaks the same v1 NDJSON protocol to clients
(:mod:`repro.cluster.router`), so existing clients work unchanged.
Workers are plain ``python -m repro serve`` processes spawned on
ephemeral ports (:mod:`repro.cluster.launcher`); snapshots persist
per-shard with a manifest (:mod:`repro.cluster.persist`); stats frames
merge histogram-wise (:mod:`repro.cluster.stats`).

Fault tolerance lives in :mod:`repro.cluster.faults` (retry policy,
health tracking, deterministic fault injection): remote RPCs run under
deadlines with bounded retries, each shard may pair with a synchronous
replica that serves failover reads, and queries that lose a shard from
both copies surface an explicit *degraded* result instead of a silent
partial answer.  See ``docs/CLUSTER.md`` for topology, routing rules,
rebalance semantics, and the replication diagram.
"""

from repro.cluster.backends import LocalShard, RemoteShard, ShardBackend
from repro.cluster.coordinator import (
    ClusterCoordinator,
    ClusterDegradedError,
    ClusterStream,
    ClusterWriteError,
)
from repro.cluster.faults import (
    FaultSpec,
    FaultyBackend,
    HealthTracker,
    RetryPolicy,
    ShardUnavailableError,
)
from repro.cluster.shardmap import ShardMap, ShardRange, cell_cover
from repro.cluster.stats import merge_stats_frames

__all__ = [
    "ClusterCoordinator",
    "ClusterDegradedError",
    "ClusterStream",
    "ClusterWriteError",
    "FaultSpec",
    "FaultyBackend",
    "HealthTracker",
    "LocalShard",
    "RemoteShard",
    "RetryPolicy",
    "ShardBackend",
    "ShardMap",
    "ShardRange",
    "ShardUnavailableError",
    "cell_cover",
    "merge_stats_frames",
]
