"""Shard-aware snapshot save/load for the cluster layer.

Format: a **snapshot directory** holding one ``manifest.json`` plus one
``shard-<worker>.npz`` per worker.  The manifest carries the routing
state (shard map ranges, Hilbert order), the identity state
(``next_global_id`` — deleted ids stay holes so later writes continue
the original id sequence), and one entry per shard file; each shard
file holds the worker's live rows as an ``(n, 2)`` float64 ``xy`` array
plus the parallel int64 ``gids`` array of their *global* ids.

Like the single-process format (:mod:`repro.io.persist`), this persists
*data + configuration*, not index bytes: workers rebuild their R-trees
from the rows on load, and the coordinator rebuilds its catalog (keys
recompute deterministically from coordinates).  Unlike the
single-process format, tombstoned coordinates are dropped — the cluster
catalog never hands a dead row to a shard, so shards reload live-only
and rebuild fresh Voronoi supersets.

The files are plain numpy/JSON: a snapshot taken with N workers can be
inspected — or re-sharded by external tooling — without the cluster
running.
"""

from __future__ import annotations

import json
import os
import zipfile
from typing import Dict, List

import numpy as np

from repro.cluster.coordinator import ClusterCoordinator

__all__ = ["save_cluster", "load_cluster_state", "restore_cluster"]

_FORMAT_VERSION = 1
_MANIFEST = "manifest.json"


def _shard_filename(worker: int) -> str:
    """The per-worker payload filename inside a snapshot directory."""
    return f"shard-{worker}.npz"


def save_cluster(
    path: str | os.PathLike, coordinator: ClusterCoordinator
) -> str:
    """Write ``coordinator``'s data to snapshot directory ``path``.

    Creates the directory if needed and (over)writes the manifest and
    one shard file per worker — including empty workers, so a restore
    never has to guess worker count from the file listing.  Returns the
    directory path.
    """
    state = coordinator.export_state()
    directory = os.fspath(path)
    os.makedirs(directory, exist_ok=True)
    by_worker: Dict[int, List] = {
        worker: [] for worker in range(int(state["workers"]))
    }
    for global_id, x, y, worker in state["rows"]:
        by_worker[int(worker)].append((int(global_id), float(x), float(y)))
    shards = []
    for worker, rows in sorted(by_worker.items()):
        rows.sort()
        xy = np.asarray(
            [(x, y) for _, x, y in rows], dtype=np.float64
        ).reshape(len(rows), 2)
        gids = np.asarray([g for g, _, _ in rows], dtype=np.int64)
        filename = _shard_filename(worker)
        np.savez_compressed(
            os.path.join(directory, filename), xy=xy, gids=gids
        )
        shards.append(
            {"worker": worker, "file": filename, "count": len(rows)}
        )
    manifest = {
        "format": _FORMAT_VERSION,
        "order": state["order"],
        "workers": state["workers"],
        "ranges": state["ranges"],
        "next_global_id": state["next_global_id"],
        "version": state["version"],
        "rebalances": state["rebalances"],
        "shards": shards,
    }
    with open(os.path.join(directory, _MANIFEST), "w") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return directory


def load_cluster_state(path: str | os.PathLike) -> Dict:
    """Read a snapshot directory back into a coordinator state dict.

    The returned mapping is exactly what
    :meth:`ClusterCoordinator.restore` consumes (and what
    :meth:`ClusterCoordinator.export_state` produced), with every shard
    file's rows validated against the manifest's counts.
    """
    directory = os.fspath(path)
    manifest_path = os.path.join(directory, _MANIFEST)
    with open(manifest_path) as handle:
        manifest = json.load(handle)
    if manifest.get("format") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported cluster snapshot format "
            f"{manifest.get('format')!r} in {manifest_path}"
        )
    rows = []
    for shard in manifest["shards"]:
        shard_path = os.path.join(directory, shard["file"])
        try:
            with np.load(shard_path, allow_pickle=False) as archive:
                xy = archive["xy"].reshape(-1, 2)
                gids = archive["gids"]
        except (OSError, KeyError, zipfile.BadZipFile) as exc:
            raise ValueError(
                f"corrupt cluster snapshot: cannot read "
                f"{shard['file']}: {exc}"
            ) from exc
        if len(xy) != int(shard["count"]) or len(gids) != len(xy):
            raise ValueError(
                f"corrupt cluster snapshot: {shard['file']} holds "
                f"{len(xy)} rows, manifest says {shard['count']}"
            )
        worker = int(shard["worker"])
        for gid, (x, y) in zip(gids.tolist(), xy.tolist()):
            rows.append((int(gid), float(x), float(y), worker))
    return {
        "order": int(manifest["order"]),
        "workers": int(manifest["workers"]),
        "ranges": manifest["ranges"],
        "next_global_id": int(manifest["next_global_id"]),
        "version": int(manifest["version"]),
        "rebalances": int(manifest["rebalances"]),
        "rows": rows,
    }


def restore_cluster(
    path: str | os.PathLike, backends, **options
) -> ClusterCoordinator:
    """Load a snapshot directory onto empty ``backends``.

    Convenience composition of :func:`load_cluster_state` and
    :meth:`ClusterCoordinator.restore`; ``options`` pass through to the
    coordinator constructor (rebalance tuning, chunk size).
    """
    return ClusterCoordinator.restore(
        backends, load_cluster_state(path), **options
    )
