"""Fault-tolerance primitives: retry policy, health, fault injection.

Three small, transport-independent pieces the cluster layer composes:

:class:`RetryPolicy`
    Bounded retries with jittered exponential backoff under a per-call
    deadline.  :class:`~repro.cluster.backends.RemoteShard` consults one
    for every read RPC (writes never retry — a retried write could
    double-apply on a worker that applied the first attempt before the
    connection died).

:class:`HealthTracker`
    The ``up -> suspect -> down`` state machine the coordinator keeps
    per backend.  Consecutive RPC failures demote; one success (an RPC
    or a health probe) restores ``up``.  ``down`` primaries are skipped
    on the read path — their replica answers directly — until a probe
    or a supervisor rebuild revives them.

:class:`FaultyBackend`
    A deterministic chaos proxy wrapping any
    :class:`~repro.cluster.backends.ShardBackend`: injects delays,
    dropped calls, connection resets, result reordering, and
    crash-on-Nth-call, all decided by a seeded RNG so a failing chaos
    test replays bit-identically.  Used by ``tests/cluster/test_failover.py``
    and ``make test-chaos``.

:class:`ShardUnavailableError` is the terminal verdict: a backend call
failed every permitted attempt.  It subclasses :class:`ConnectionError`
so transport-level handlers (``except OSError``) keep working.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

from repro.cluster.backends import ShardBackend
from repro.query.spec import Query

__all__ = [
    "RetryPolicy",
    "HealthTracker",
    "FaultSpec",
    "FaultyBackend",
    "ShardUnavailableError",
    "HEALTH_UP",
    "HEALTH_SUSPECT",
    "HEALTH_DOWN",
]

#: Health states a backend can be in (see :class:`HealthTracker`).
HEALTH_UP = "up"
HEALTH_SUSPECT = "suspect"
HEALTH_DOWN = "down"


class ShardUnavailableError(ConnectionError):
    """Every permitted attempt against one shard backend failed.

    Raised by :class:`~repro.cluster.backends.RemoteShard` once its
    :class:`RetryPolicy` is exhausted (or immediately for writes, which
    get exactly one attempt).  The coordinator treats it — like any
    :class:`OSError` — as "this backend is unreachable": reads fail over
    to the replica or degrade, writes surface it to the caller un-acked.
    """


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded, jittered-exponential retry budget for one RPC.

    ``attempts`` caps total tries (1 = no retry).  Backoff before the
    ``n``-th retry is ``base_backoff_s * 2**(n-1)`` clamped to
    ``max_backoff_s``, scaled by a jitter factor in ``[0.5, 1.0]`` drawn
    from a policy-owned seeded RNG — deterministic under a fixed seed,
    decorrelated across shards in production (seed per shard).  The
    whole call — attempts plus backoffs — must finish within
    ``deadline_s``; when the next backoff would cross the deadline the
    policy gives up early instead of sleeping into it.
    """

    #: total tries, including the first (1 disables retrying)
    attempts: int = 3
    #: backoff before the first retry, seconds
    base_backoff_s: float = 0.05
    #: backoff clamp, seconds
    max_backoff_s: float = 1.0
    #: wall-clock budget for the whole call, seconds
    deadline_s: float = 10.0
    #: jitter RNG seed (``None`` = nondeterministic)
    jitter_seed: Optional[int] = None
    _rng: random.Random = field(
        init=False, repr=False, compare=False, default=None
    )

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")
        object.__setattr__(self, "_rng", random.Random(self.jitter_seed))

    def backoff_s(self, retry_index: int) -> float:
        """Jittered sleep before the ``retry_index``-th retry (0-based)."""
        raw = min(
            self.base_backoff_s * (2.0**retry_index), self.max_backoff_s
        )
        return raw * (0.5 + 0.5 * self._rng.random())


class HealthTracker:
    """Per-backend ``up``/``suspect``/``down`` from consecutive failures.

    One RPC or probe failure marks the backend ``suspect``;
    ``down_after`` consecutive failures mark it ``down``.  Any success
    resets to ``up``.  Thread-safe: RPC threads and the health-probe
    loop mark concurrently.
    """

    def __init__(self, *, down_after: int = 2) -> None:
        if down_after < 1:
            raise ValueError(f"down_after must be >= 1, got {down_after}")
        #: consecutive failures that demote ``suspect`` to ``down``
        self.down_after = down_after
        self._failures = 0
        self._lock = threading.Lock()

    @property
    def state(self) -> str:
        """The current health state string."""
        failures = self._failures
        if failures == 0:
            return HEALTH_UP
        if failures < self.down_after:
            return HEALTH_SUSPECT
        return HEALTH_DOWN

    @property
    def is_down(self) -> bool:
        """Whether the backend is currently marked ``down``."""
        return self._failures >= self.down_after

    def mark_success(self) -> None:
        """Record one successful call/probe (restores ``up``)."""
        with self._lock:
            self._failures = 0

    def mark_failure(self) -> str:
        """Record one failed call/probe; returns the new state."""
        with self._lock:
            self._failures += 1
        return self.state

    def reset(self) -> None:
        """Forget all history (a rebuilt backend starts ``up``)."""
        self.mark_success()


@dataclass(frozen=True)
class FaultSpec:
    """What a :class:`FaultyBackend` injects, decided by ``seed``.

    Rates are per-call probabilities drawn from one seeded RNG in a
    fixed order, so a given ``(seed, call sequence)`` replays exactly.
    """

    #: RNG seed for every probabilistic decision
    seed: int = 0
    #: fixed pre-call delay, seconds
    delay_s: float = 0.0
    #: probability a call is dropped *before* reaching the backend
    #: (raises :class:`ConnectionError`; the operation never applies)
    drop_rate: float = 0.0
    #: probability the connection "resets" *after* the backend applied
    #: the operation (raises :class:`ConnectionResetError`; the caller
    #: cannot know whether the op landed — the ambiguous failure)
    reset_rate: float = 0.0
    #: 1-based call number at which the backend "crashes": that call
    #: and every later one raise :class:`ConnectionRefusedError`
    #: (``None`` = never)
    crash_on_call: Optional[int] = None
    #: shuffle eager ``query_ids`` results (wrong-order delivery; the
    #: coordinator must re-sort, never trust shard order)
    scramble_order: bool = False


class FaultyBackend(ShardBackend):
    """A chaos proxy injecting :class:`FaultSpec` faults into a backend.

    Wrap any :class:`~repro.cluster.backends.ShardBackend` (the inner
    backend sees only the calls that survive injection).  ``calls``
    counts every intercepted operation and ``injected`` every fault
    fired, so tests can assert the harness actually exercised the
    failure paths.
    """

    def __init__(self, inner: ShardBackend, fault: FaultSpec) -> None:
        #: the wrapped real backend
        self.inner = inner
        #: the injection plan
        self.fault = fault
        #: operations intercepted so far
        self.calls = 0
        #: faults fired so far
        self.injected = 0
        #: ``(call_number, fault_kind)`` log of every injection
        self.log: List[Tuple[int, str]] = []
        self._rng = random.Random(fault.seed)
        self._lock = threading.Lock()

    def _inject(self, kind: str) -> None:
        self.injected += 1
        self.log.append((self.calls, kind))

    def _gate(self) -> None:
        """Run the pre-call injection decisions for one operation."""
        fault = self.fault
        with self._lock:
            self.calls += 1
            crashed = (
                fault.crash_on_call is not None
                and self.calls >= fault.crash_on_call
            )
            if crashed:
                self._inject("crash")
            else:
                dropped = (
                    fault.drop_rate > 0.0
                    and self._rng.random() < fault.drop_rate
                )
                if dropped:
                    self._inject("drop")
        if crashed:
            raise ConnectionRefusedError(
                f"injected crash (call {self.calls} >= "
                f"{fault.crash_on_call})"
            )
        if fault.delay_s > 0.0:
            time.sleep(fault.delay_s)
        if dropped:
            raise ConnectionError(
                f"injected drop (call {self.calls})"
            )

    def _post(self) -> None:
        """Run the post-call injection decisions (ambiguous resets)."""
        fault = self.fault
        with self._lock:
            reset = (
                fault.reset_rate > 0.0
                and self._rng.random() < fault.reset_rate
            )
            if reset:
                self._inject("reset")
        if reset:
            raise ConnectionResetError(
                f"injected reset after apply (call {self.calls})"
            )

    def query_ids(self, spec: Query) -> List[int]:
        """Proxy one eager query, possibly scrambling result order."""
        self._gate()
        ids = self.inner.query_ids(spec)
        self._post()
        if self.fault.scramble_order and len(ids) > 1:
            ids = list(ids)
            with self._lock:
                self._rng.shuffle(ids)
                self._inject("scramble")
        return ids

    def stream_ids(
        self, spec: Query, *, chunk_size: int = 256
    ) -> Iterator[int]:
        """Proxy one stream open (faults fire at open time)."""
        self._gate()
        return self.inner.stream_ids(spec, chunk_size=chunk_size)

    def insert(self, x: float, y: float) -> int:
        """Proxy one insert (a reset fires *after* the inner apply)."""
        self._gate()
        local_id = self.inner.insert(x, y)
        self._post()
        return local_id

    def extend(self, points: Sequence[Tuple[float, float]]) -> List[int]:
        """Proxy one batch insert (a reset fires *after* the apply)."""
        self._gate()
        local_ids = self.inner.extend(points)
        self._post()
        return local_ids

    def delete(self, local_id: int) -> None:
        """Proxy one delete."""
        self._gate()
        self.inner.delete(local_id)
        self._post()

    def ping(self) -> bool:
        """Probe the inner backend through the injection gate."""
        try:
            self._gate()
        except OSError:
            return False
        return self.inner.ping()

    def stats_frame(self):
        """Proxy the stats frame (not fault-gated: observability stays)."""
        return self.inner.stats_frame()

    def close(self) -> None:
        """Close the wrapped backend."""
        self.inner.close()
