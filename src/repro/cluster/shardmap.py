"""Hilbert-range space partitioning for the cluster layer.

A cluster divides the Hilbert key space ``[0, 4**order)`` (the same
curve the batch engine orders by, :func:`repro.engine.order.hilbert_index`)
into contiguous, non-overlapping key ranges, each owned by one worker
replica.  Contiguous Hilbert ranges are spatially compact — the curve
has no long jumps — so a small query region intersects few ranges and
most traffic routes to a single worker.

:class:`ShardMap` is the immutable routing table: it answers *which
worker owns this point* (writes, kNN seeds) and *which workers can hold
points of this region* (window/area fan-out) by covering the region's
bounding box with adaptive Hilbert quads, each of which owns one
contiguous key interval (:func:`key_intervals`).  Rebalancing replaces
the map
wholesale via :meth:`ShardMap.split` — a range is cut at a key and one
half is reassigned, which is the only reshaping operation the cluster
needs (see ``docs/CLUSTER.md``).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence, Tuple

from repro.engine.order import DEFAULT_ORDER, hilbert_index

__all__ = ["ShardRange", "ShardMap", "cell_cover", "key_intervals"]

#: Bounding boxes covering more grid cells than this skip the exact
#: cell walk and conservatively fan out to every worker — the walk
#: would cost more than the saved shard queries.
CELL_COVER_CAP = 4096

#: Quad budget for interval covers: the refinement level adapts so a
#: region is covered by at most this many Hilbert quads.  Coarser quads
#: over-cover (a quad is included if any part intersects the region),
#: which can only add fan-out targets, never miss one.  The budget is
#: deliberately small: an extra fan-out target costs one parallel shard
#: probe, while cover computation is serial router work on every
#: request — the asymmetry favours coarse covers.
QUAD_COVER_CAP = 16

#: Finest quad grid used by routing covers: quads never get smaller
#: than ``2**-QUAD_COVER_ORDER`` of an axis (a 32x32 grid).  Finer
#: quads would make the per-quad owner memo too sparse to ever hit,
#: and sub-quad precision only trims fan-out candidates — cheap
#: parallel probes — at the price of serial router work per request.
QUAD_COVER_ORDER = 5


def _cover_shift(
    order: int, x_lo: int, x_hi: int, y_lo: int, y_hi: int
) -> int:
    """Coarsening shift for covering the cell box with few quads.

    Starts at the memo-friendly floor (``QUAD_COVER_ORDER`` grid) and
    coarsens further until the box spans at most
    :data:`QUAD_COVER_CAP` quads.
    """
    shift = max(order - QUAD_COVER_ORDER, 0)
    while shift < order and (
        ((x_hi >> shift) - (x_lo >> shift) + 1)
        * ((y_hi >> shift) - (y_lo >> shift) + 1)
        > QUAD_COVER_CAP
    ):
        shift += 1
    return shift


def _cell_key(xi: int, yi: int, order: int) -> int:
    """Hilbert key of grid cell ``(xi, yi)`` at ``order`` refinement.

    The integer-cell form of :func:`repro.engine.order.hilbert_index`:
    a point whose clamped coordinates snap to cell ``(xi, yi)`` gets
    exactly this key, so cell covers computed here agree bit-for-bit
    with point routing.
    """
    side = 1 << order
    distance = 0
    s = side >> 1
    while s > 0:
        rx = 1 if xi & s else 0
        ry = 1 if yi & s else 0
        distance += s * s * ((3 * rx) ^ ry)
        if ry == 0:
            if rx == 1:
                xi = s - 1 - xi
                yi = s - 1 - yi
            xi, yi = yi, xi
        s >>= 1
    return distance


def _cell_index(value: float, side: int) -> int:
    """The grid cell holding coordinate ``value`` (clamped like points).

    Mirrors ``hilbert_index``'s snapping — clamp into ``[0, 1]``, scale,
    truncate, clamp to the last cell — so interval covers include every
    cell a routed point can land in.
    """
    value = 0.0 if value < 0.0 else (1.0 if value > 1.0 else value)
    return min(side - 1, int(value * side))


def cell_cover(
    bounds: Tuple[float, float, float, float], *, order: int = DEFAULT_ORDER
) -> List[int]:
    """Hilbert keys of every grid cell intersecting ``bounds``.

    ``bounds`` is ``(min_x, min_y, max_x, max_y)`` in the unit square's
    coordinate frame (anything outside clamps to the border cells, the
    same way point routing clamps).  Returns an unsorted key list; the
    caller maps keys to owners.  Covers larger than
    :data:`CELL_COVER_CAP` cells return an empty list as the "give up,
    fan out everywhere" signal.
    """
    min_x, min_y, max_x, max_y = bounds
    side = 1 << order
    x_lo, x_hi = _cell_index(min_x, side), _cell_index(max_x, side)
    y_lo, y_hi = _cell_index(min_y, side), _cell_index(max_y, side)
    if (x_hi - x_lo + 1) * (y_hi - y_lo + 1) > CELL_COVER_CAP:
        return []
    return [
        _cell_key(xi, yi, order)
        for xi in range(x_lo, x_hi + 1)
        for yi in range(y_lo, y_hi + 1)
    ]


def _merge_intervals(
    intervals: List[Tuple[int, int]],
) -> List[Tuple[int, int]]:
    """Sort and coalesce adjacent/overlapping ``[lo, hi)`` intervals."""
    intervals.sort()
    merged: List[Tuple[int, int]] = []
    for lo, hi in intervals:
        if merged and lo <= merged[-1][1]:
            if hi > merged[-1][1]:
                merged[-1] = (merged[-1][0], hi)
        else:
            merged.append((lo, hi))
    return merged


def key_intervals(
    bounds: Tuple[float, float, float, float], *, order: int = DEFAULT_ORDER
) -> List[Tuple[int, int]]:
    """Merged Hilbert key intervals covering ``bounds``.

    The curve is hierarchical: a level-``L`` quad (the grid coarsened by
    ``order - L`` doublings) owns one **contiguous** key interval —
    the top ``2L`` bits of every key inside it.  Covering a region with
    coarse quads therefore yields a handful of ``[lo, hi)`` intervals
    instead of one key per unit cell, turning region routing from
    O(area) into O(quads): the refinement level adapts until at most
    :data:`QUAD_COVER_CAP` quads span the bounding box.

    The cover is a superset by construction — every cell a clamped
    point can snap to inside ``bounds`` lies in some covered quad —
    and over-covers only at quad granularity around the border.
    """
    min_x, min_y, max_x, max_y = bounds
    side = 1 << order
    x_lo, x_hi = _cell_index(min_x, side), _cell_index(max_x, side)
    y_lo, y_hi = _cell_index(min_y, side), _cell_index(max_y, side)
    shift = 0
    while shift < order and (
        ((x_hi >> shift) - (x_lo >> shift) + 1)
        * ((y_hi >> shift) - (y_lo >> shift) + 1)
        > QUAD_COVER_CAP
    ):
        shift += 1
    if shift >= order:  # pragma: no cover - cap >= 4 always terminates
        return [(0, 4**order)]
    quad_order = order - shift
    width = 2 * shift  # key bits per quad: 4**shift keys
    intervals = []
    for qx in range(x_lo >> shift, (x_hi >> shift) + 1):
        for qy in range(y_lo >> shift, (y_hi >> shift) + 1):
            quad = _cell_key(qx, qy, quad_order)
            intervals.append((quad << width, (quad + 1) << width))
    return _merge_intervals(intervals)


@dataclass(frozen=True)
class ShardRange:
    """One contiguous Hilbert key range ``[lo, hi)`` owned by a worker.

    ``replica`` optionally names the worker's standby: point writes in
    the range mirror to it synchronously and reads fail over to it when
    the primary is down (see :mod:`repro.cluster.faults` and
    ``docs/CLUSTER.md``).  ``None`` means unreplicated — a lost primary
    degrades queries touching the range instead.
    """

    #: inclusive lower key bound
    lo: int
    #: exclusive upper key bound
    hi: int
    #: index of the owning worker replica
    worker: int
    #: index of the standby replica backend (``None`` = unreplicated)
    replica: Optional[int] = None

    def __post_init__(self) -> None:
        if self.lo < 0 or self.hi <= self.lo:
            raise ValueError(
                f"degenerate shard range [{self.lo}, {self.hi})"
            )

    @property
    def width(self) -> int:
        """Number of Hilbert keys in the range."""
        return self.hi - self.lo


class ShardMap:
    """An immutable partition of the Hilbert key space across workers.

    ``ranges`` must tile ``[0, 4**order)`` exactly: sorted, gap-free,
    non-overlapping.  A worker may own several ranges (splits reassign
    sub-ranges, so ownership fragments over time); every range has
    exactly one owner.
    """

    __slots__ = (
        "order",
        "ranges",
        "_lows",
        "_side",
        "_workers",
        "_replica_of",
        "_quads",
    )

    def __init__(
        self, ranges: Sequence[ShardRange], *, order: int = DEFAULT_ORDER
    ) -> None:
        if order <= 0:
            raise ValueError(f"order must be positive, got {order}")
        ordered = tuple(sorted(ranges, key=lambda r: r.lo))
        key_space = 4**order
        if not ordered or ordered[0].lo != 0 or ordered[-1].hi != key_space:
            raise ValueError(
                f"ranges must tile [0, {key_space}) exactly"
            )
        for left, right in zip(ordered, ordered[1:]):
            if left.hi != right.lo:
                raise ValueError(
                    f"gap or overlap between [{left.lo}, {left.hi}) "
                    f"and [{right.lo}, {right.hi})"
                )
        replica_of: dict = {}
        for shard_range in ordered:
            known = replica_of.setdefault(
                shard_range.worker, shard_range.replica
            )
            if known != shard_range.replica:
                raise ValueError(
                    f"worker {shard_range.worker} has conflicting "
                    f"replica assignments {known!r} and "
                    f"{shard_range.replica!r}"
                )
        #: Hilbert refinement order (``2**order`` cells per axis)
        self.order = order
        #: the sorted, gap-free :class:`ShardRange` tuple
        self.ranges = ordered
        self._lows = [r.lo for r in ordered]
        self._side = 1 << order
        self._workers = frozenset(r.worker for r in ordered)
        self._replica_of = replica_of
        # Memo of quad -> owning workers.  The map is immutable (splits
        # build a new instance), so entries never invalidate; the key
        # space is bounded by the grid, and in practice queries revisit
        # the same coarse quads, so covers amortise to dict lookups.
        self._quads = {}

    @classmethod
    def even(
        cls,
        workers: int,
        *,
        order: int = DEFAULT_ORDER,
        replicated: bool = False,
    ) -> "ShardMap":
        """An equal-width partition of the key space over ``workers``.

        The launcher's starting map: worker ``i`` owns the ``i``-th of
        ``workers`` equal Hilbert intervals.  Uniform data then loads
        evenly; skew is corrected later by :meth:`split`.  With
        ``replicated`` worker ``i`` is paired with replica slot ``i``
        (the coordinator's parallel replica-backend list).
        """
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        key_space = 4**order
        if workers > key_space:
            raise ValueError(
                f"{workers} workers exceed the {key_space}-key space"
            )
        bounds = [key_space * i // workers for i in range(workers + 1)]
        return cls(
            [
                ShardRange(
                    bounds[i],
                    bounds[i + 1],
                    i,
                    replica=i if replicated else None,
                )
                for i in range(workers)
            ],
            order=order,
        )

    def replica_of(self, worker: int) -> Optional[int]:
        """The replica slot paired with ``worker`` (``None`` if none)."""
        return self._replica_of.get(worker)

    def with_replicas(self, assignment: dict) -> "ShardMap":
        """A new map with replica slots from ``{worker: replica}``.

        Workers absent from ``assignment`` become unreplicated.
        """
        from dataclasses import replace as _replace

        return ShardMap(
            [
                _replace(r, replica=assignment.get(r.worker))
                for r in self.ranges
            ],
            order=self.order,
        )

    @property
    def workers(self) -> int:
        """Number of distinct workers with at least one range."""
        return len({r.worker for r in self.ranges})

    def key_of(self, x: float, y: float) -> int:
        """The Hilbert routing key of point ``(x, y)``."""
        return hilbert_index(x, y, order=self.order)

    def range_at(self, key: int) -> ShardRange:
        """The range containing Hilbert ``key``."""
        key_space = 4**self.order
        if not 0 <= key < key_space:
            raise ValueError(
                f"key {key} outside [0, {key_space})"
            )
        return self.ranges[bisect_right(self._lows, key) - 1]

    def owner_of_key(self, key: int) -> int:
        """The worker owning Hilbert ``key``."""
        return self.range_at(key).worker

    def owner_of(self, x: float, y: float) -> int:
        """The worker owning point ``(x, y)`` — the write/seed route."""
        return self.owner_of_key(self.key_of(x, y))

    def all_workers(self) -> FrozenSet[int]:
        """Every worker index appearing in the map."""
        return self._workers

    def _owners_of_intervals(
        self, intervals: Sequence[Tuple[int, int]]
    ) -> FrozenSet[int]:
        """Workers whose ranges intersect any ``[lo, hi)`` key interval."""
        owners = set()
        lows = self._lows
        ranges = self.ranges
        for lo, hi in intervals:
            position = max(bisect_right(lows, lo) - 1, 0)
            while position < len(ranges) and ranges[position].lo < hi:
                owners.add(ranges[position].worker)
                position += 1
            if len(owners) == len(self._workers):
                break
        return frozenset(owners)

    def _quad_owners(self, shift: int, qx: int, qy: int) -> FrozenSet[int]:
        """Memoised owners of the level-``order - shift`` quad."""
        memo_key = (shift, qx, qy)
        owners = self._quads.get(memo_key)
        if owners is None:
            width = 2 * shift
            quad = _cell_key(qx, qy, self.order - shift)
            owners = self._owners_of_intervals(
                [(quad << width, (quad + 1) << width)]
            )
            self._quads[memo_key] = owners
        return owners

    def workers_for_bounds(
        self, bounds: Tuple[float, float, float, float]
    ) -> FrozenSet[int]:
        """Workers whose ranges intersect the bounding box ``bounds``.

        A conservative superset: every point routed inside ``bounds``
        is owned by one of the returned workers (quads are covered with
        the same clamping as point routing), but a returned worker may
        hold no matching point.
        """
        min_x, min_y, max_x, max_y = bounds
        order = self.order
        side = self._side
        x_lo, x_hi = _cell_index(min_x, side), _cell_index(max_x, side)
        y_lo, y_hi = _cell_index(min_y, side), _cell_index(max_y, side)
        shift = _cover_shift(order, x_lo, x_hi, y_lo, y_hi)
        if shift >= order:  # pragma: no cover - cap >= 4 always terminates
            return self._workers
        owners = set()
        everyone = len(self._workers)
        for qx in range(x_lo >> shift, (x_hi >> shift) + 1):
            for qy in range(y_lo >> shift, (y_hi >> shift) + 1):
                owners |= self._quad_owners(shift, qx, qy)
                if len(owners) == everyone:
                    return self._workers
        return frozenset(owners)

    def workers_for_circle(
        self, cx: float, cy: float, radius: float
    ) -> FrozenSet[int]:
        """Workers whose ranges intersect the disc around ``(cx, cy)``.

        Used for kNN boundary expansion: the disc is the kth-distance
        ball.  Covers the disc's bounding box with adaptive Hilbert
        quads, keeping only quads whose nearest point is within
        ``radius`` — still conservative (quad rectangles fully contain
        every point that snaps to them within the unit square, and
        border quads absorb the clamped outside).
        """
        if radius < 0.0:
            raise ValueError(f"radius must be non-negative, got {radius}")
        order = self.order
        side = self._side
        x_lo = _cell_index(cx - radius, side)
        x_hi = _cell_index(cx + radius, side)
        y_lo = _cell_index(cy - radius, side)
        y_hi = _cell_index(cy + radius, side)
        shift = _cover_shift(order, x_lo, x_hi, y_lo, y_hi)
        if shift >= order:  # pragma: no cover - cap >= 4 always terminates
            return self._workers
        quad_order = order - shift
        quad_side = 1 << quad_order
        r2 = radius * radius
        owners = set()
        everyone = len(self._workers)
        for qx in range(x_lo >> shift, (x_hi >> shift) + 1):
            # Clamp-aware quad extent: border quads extend to infinity
            # because out-of-square coordinates snap onto them.
            quad_min_x = qx / quad_side if qx > 0 else float("-inf")
            quad_max_x = (
                (qx + 1) / quad_side if qx < quad_side - 1 else float("inf")
            )
            dx = max(quad_min_x - cx, 0.0, cx - quad_max_x)
            for qy in range(y_lo >> shift, (y_hi >> shift) + 1):
                quad_min_y = qy / quad_side if qy > 0 else float("-inf")
                quad_max_y = (
                    (qy + 1) / quad_side
                    if qy < quad_side - 1
                    else float("inf")
                )
                dy = max(quad_min_y - cy, 0.0, cy - quad_max_y)
                if dx * dx + dy * dy <= r2:
                    owners |= self._quad_owners(shift, qx, qy)
                    if len(owners) == everyone:
                        return self._workers
        return frozenset(owners)

    def split(self, key: int, split_at: int, new_worker: int) -> "ShardMap":
        """A new map with the range holding ``key`` cut at ``split_at``.

        The upper half ``[split_at, hi)`` is reassigned to
        ``new_worker`` (inheriting ``new_worker``'s existing replica
        pairing, if any); the lower half keeps its owner.  ``split_at``
        must fall strictly inside the range.  This is the rebalance
        primitive: the coordinator picks the split key from the live
        data's median and migrates the moved rows before installing the
        returned map.
        """
        target = self.range_at(key)
        if not target.lo < split_at < target.hi:
            raise ValueError(
                f"split key {split_at} not strictly inside "
                f"[{target.lo}, {target.hi})"
            )
        replacement = [
            ShardRange(
                target.lo, split_at, target.worker, replica=target.replica
            ),
            ShardRange(
                split_at,
                target.hi,
                new_worker,
                replica=self._replica_of.get(new_worker),
            ),
        ]
        ranges = [r for r in self.ranges if r is not target] + replacement
        return ShardMap(ranges, order=self.order)

    def as_dicts(self) -> List[dict]:
        """JSON-ready range list (manifest and stats wire form).

        ``replica`` appears only on replicated ranges, so unreplicated
        maps serialise byte-identically to the pre-replication format.
        """
        dicts = []
        for r in self.ranges:
            entry = {"lo": r.lo, "hi": r.hi, "worker": r.worker}
            if r.replica is not None:
                entry["replica"] = r.replica
            dicts.append(entry)
        return dicts

    @classmethod
    def from_dicts(
        cls, data: Sequence[dict], *, order: int = DEFAULT_ORDER
    ) -> "ShardMap":
        """Rebuild a map from its :meth:`as_dicts` form."""
        return cls(
            [
                ShardRange(
                    int(d["lo"]),
                    int(d["hi"]),
                    int(d["worker"]),
                    replica=(
                        int(d["replica"]) if d.get("replica") is not None
                        else None
                    ),
                )
                for d in data
            ],
            order=order,
        )

    def __repr__(self) -> str:
        return (
            f"ShardMap({len(self.ranges)} ranges, "
            f"{self.workers} workers, order={self.order})"
        )
