"""Process management: spawn worker replicas and assemble a cluster.

A worker is nothing special — it is ``python -m repro serve`` on an
ephemeral port with an empty database, exactly the process a user would
start by hand.  :func:`spawn_worker` launches one and parses the bound
address from its startup banner (``serve --port 0`` prints the port it
actually got); :func:`start_cluster` composes N of them with a
:class:`~repro.cluster.coordinator.ClusterCoordinator` over
:class:`~repro.cluster.backends.RemoteShard` backends and a
:class:`~repro.cluster.router.RouterThread` speaking protocol v1 to
clients — the topology behind ``python -m repro cluster --workers N``.

Data loads *through* the coordinator (bulk extend, partitioned by the
shard map), so workers never need seed files and a restored snapshot
(``--load``) replays onto whatever worker count the snapshot recorded.

Fault tolerance: ``start_cluster(..., replicas=1)`` spawns one standby
worker per primary and mirrors writes synchronously (``--replicas`` on
the CLI); ``supervise=True`` starts a :class:`ClusterSupervisor` thread
that notices dead worker processes, respawns them, and reloads their
rows from the coordinator's global catalog
(:meth:`~repro.cluster.coordinator.ClusterCoordinator.rebuild_worker` /
:meth:`~repro.cluster.coordinator.ClusterCoordinator.rebuild_replica`),
so a ``kill -9`` heals without operator action.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.backends import RemoteShard
from repro.cluster.coordinator import ClusterCoordinator
from repro.cluster.router import RouterThread

__all__ = [
    "WorkerProcess",
    "spawn_worker",
    "ClusterSupervisor",
    "ClusterHandle",
    "start_cluster",
]

#: The serve banner the launcher parses the bound address from.
_BANNER = re.compile(r"Serving [\d,]+ points on ([\w.\-]+):(\d+) ")


class WorkerProcess:
    """One spawned ``repro serve`` worker and its bound address."""

    def __init__(
        self, process: subprocess.Popen, host: str, port: int
    ) -> None:
        #: the worker's OS process
        self.process = process
        #: bound listen address (parsed from the startup banner)
        self.host, self.port = host, port

    @property
    def alive(self) -> bool:
        """Whether the worker process is still running."""
        return self.process.poll() is None

    @property
    def pid(self) -> int:
        """The worker's OS process id (chaos tests kill this)."""
        return self.process.pid

    def terminate(self, timeout: float = 5.0) -> Optional[int]:
        """Stop and reap the worker; returns its exit code.

        Terminates (then kills on timeout) a still-running worker, waits
        so the child is reaped rather than left a zombie, and closes the
        captured stdout/stderr pipes so repeated restarts cannot leak
        file descriptors.  Returns the process exit code — nonzero or
        negative (killed by signal) when the worker did not shut down
        cleanly — or ``None`` if the process could not be reaped.
        """
        if self.process.poll() is None:
            self.process.terminate()
            try:
                self.process.wait(timeout=timeout)
            except subprocess.TimeoutExpired:  # pragma: no cover - stuck
                self.process.kill()
                try:
                    self.process.wait(timeout=timeout)
                except subprocess.TimeoutExpired:
                    pass
        else:
            # Already exited (crashed or killed externally): reap it.
            self.process.wait()
        for pipe in (self.process.stdout, self.process.stderr):
            if pipe is not None and not pipe.closed:
                pipe.close()
        return self.process.returncode


def _worker_environment() -> Dict[str, str]:
    """The spawned worker's environment: this repro on the path.

    Workers must import the same library as the launcher even when it
    was never installed (the repo's ``PYTHONPATH=src`` convention), so
    the package's parent directory is prepended explicitly.
    """
    import repro

    source_root = os.path.dirname(os.path.dirname(repro.__file__))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        source_root + os.pathsep + existing if existing else source_root
    )
    return env


def spawn_worker(
    *,
    host: str = "127.0.0.1",
    window_ms: float = 2.0,
    max_batch: int = 64,
    startup_timeout: float = 30.0,
) -> WorkerProcess:
    """Launch one empty ``repro serve`` worker on an ephemeral port.

    Blocks until the worker prints its startup banner (so the returned
    address is connectable) or ``startup_timeout`` passes.  The worker
    starts with ``--points 0`` — data arrives through the coordinator's
    bulk load, never via per-worker seed files.
    """
    command = [
        sys.executable,
        "-u",  # unbuffered: the banner must arrive through the pipe
        "-m",
        "repro",
        "serve",
        "--host",
        host,
        "--port",
        "0",
        "--points",
        "0",
        "--window-ms",
        str(window_ms),
        "--max-batch",
        str(max_batch),
    ]
    process = subprocess.Popen(
        command,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=_worker_environment(),
    )
    deadline = time.monotonic() + startup_timeout
    lines: List[str] = []
    while True:
        if process.poll() is not None:
            raise RuntimeError(
                "worker exited during startup:\n" + "".join(lines)
            )
        if time.monotonic() > deadline:
            process.kill()
            raise RuntimeError(
                "worker did not print its startup banner within "
                f"{startup_timeout:g}s:\n" + "".join(lines)
            )
        line = process.stdout.readline()
        if not line:
            time.sleep(0.01)
            continue
        lines.append(line)
        match = _BANNER.search(line)
        if match:
            return WorkerProcess(
                process, match.group(1), int(match.group(2))
            )


class ClusterSupervisor:
    """Respawn dead worker processes and reload their shards.

    A daemon thread polling every primary (and replica) worker process;
    when one has exited it is reaped (:meth:`WorkerProcess.terminate`
    closes its pipes and reports the exit code), a fresh empty worker
    is spawned, and the coordinator rebuilds the shard onto it from the
    global catalog —
    :meth:`~repro.cluster.coordinator.ClusterCoordinator.rebuild_worker`
    for a primary,
    :meth:`~repro.cluster.coordinator.ClusterCoordinator.rebuild_replica`
    for a standby.  Until the rebuild lands, reads fail over to the
    replica (or surface degraded results); afterwards the shard serves
    normally again.

    ``events`` accumulates one human-readable line per detection /
    recovery / failure, newest last; ``restarts`` counts successful
    recoveries.  Recovery failures (the respawn itself dying, the
    rebuild RPC failing) are logged and retried on the next poll tick.
    """

    def __init__(
        self,
        coordinator: ClusterCoordinator,
        workers: List[WorkerProcess],
        replica_workers: Optional[List[Optional[WorkerProcess]]] = None,
        *,
        poll_interval: float = 0.25,
        host: str = "127.0.0.1",
        window_ms: float = 2.0,
        max_batch: int = 64,
    ) -> None:
        self.coordinator = coordinator
        #: primary worker processes, mutated in place on respawn
        self.workers = workers
        #: replica worker processes (slot-indexed), mutated on respawn
        self.replica_workers = (
            replica_workers if replica_workers is not None else []
        )
        self.poll_interval = poll_interval
        self._spawn_options = {
            "host": host,
            "window_ms": window_ms,
            "max_batch": max_batch,
        }
        #: recovery log, one line per event (detection, success, failure)
        self.events: List[str] = []
        #: count of completed respawn-and-rebuild recoveries
        self.restarts = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()

    def start(self) -> None:
        """Start the poll loop (idempotent)."""
        if self._thread is not None:
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-supervisor", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop the poll loop (idempotent; joins the thread)."""
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=10.0)
        self._thread = None

    def _log(self, message: str) -> None:
        with self._lock:
            self.events.append(message)

    def _run(self) -> None:
        while not self._stop.wait(self.poll_interval):
            self.check_once()

    def check_once(self) -> int:
        """One poll pass: recover every dead worker found; returns count.

        Exposed for deterministic tests (call instead of starting the
        thread); the background loop calls it every ``poll_interval``.
        """
        recovered = 0
        for index, worker in enumerate(self.workers):
            if worker.alive:
                continue
            exit_code = worker.terminate()
            self._log(
                f"primary worker {index} exited with code {exit_code}"
            )
            if self._recover_primary(index):
                recovered += 1
        for slot, worker in enumerate(self.replica_workers):
            if worker is None or worker.alive:
                continue
            exit_code = worker.terminate()
            self._log(
                f"replica worker {slot} exited with code {exit_code}"
            )
            if self._recover_replica(slot):
                recovered += 1
        return recovered

    def _recover_primary(self, index: int) -> bool:
        try:
            replacement = spawn_worker(**self._spawn_options)
            backend = RemoteShard(replacement.host, replacement.port)
            rows = self.coordinator.rebuild_worker(index, backend)
        except Exception as exc:
            self._log(f"primary worker {index} recovery failed: {exc}")
            return False
        self.workers[index] = replacement
        with self._lock:
            self.restarts += 1
        self._log(
            f"primary worker {index} respawned on "
            f"{replacement.host}:{replacement.port}, {rows} rows restored"
        )
        return True

    def _recover_replica(self, slot: int) -> bool:
        try:
            replacement = spawn_worker(**self._spawn_options)
            backend = RemoteShard(replacement.host, replacement.port)
            rows = self.coordinator.rebuild_replica(slot, backend)
        except Exception as exc:
            self._log(f"replica worker {slot} recovery failed: {exc}")
            return False
        self.replica_workers[slot] = replacement
        with self._lock:
            self.restarts += 1
        self._log(
            f"replica worker {slot} respawned on "
            f"{replacement.host}:{replacement.port}, {rows} rows mirrored"
        )
        return True


class ClusterHandle:
    """A running cluster: router + workers + coordinator, one lifetime.

    Returned by :func:`start_cluster`; use as a context manager or call
    :meth:`close`.  :attr:`host`/:attr:`port` are the router's client
    address.  ``replica_workers`` holds the standby processes (empty
    when unreplicated) and ``supervisor`` the respawn thread (``None``
    unless ``supervise=True``).
    """

    def __init__(
        self,
        router_thread: RouterThread,
        coordinator: ClusterCoordinator,
        workers: List[WorkerProcess],
        replica_workers: Optional[List[WorkerProcess]] = None,
        supervisor: Optional[ClusterSupervisor] = None,
    ) -> None:
        #: the protocol-serving router thread
        self.router_thread = router_thread
        #: the routing/merge engine (shared with the router)
        self.coordinator = coordinator
        #: the spawned primary worker processes
        self.workers = workers
        #: the spawned standby worker processes (slot-indexed)
        self.replica_workers = replica_workers or []
        #: the respawn thread, when supervision was requested
        self.supervisor = supervisor
        #: the router's client-facing address
        self.host, self.port = router_thread.host, router_thread.port

    def close(self) -> None:
        """Stop supervision, then the router, then every worker."""
        if self.supervisor is not None:
            self.supervisor.stop()
        self.router_thread.close()
        for worker in self.workers:
            worker.terminate()
        for worker in self.replica_workers:
            if worker is not None:
                worker.terminate()

    def __enter__(self) -> "ClusterHandle":
        """Context-manager entry: the cluster is already serving."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: tear the cluster down."""
        self.close()


def start_cluster(
    worker_count: int,
    *,
    points: Optional[Sequence[Tuple[float, float]]] = None,
    host: str = "127.0.0.1",
    port: int = 0,
    window_ms: float = 2.0,
    max_batch: int = 64,
    snapshot_state: Optional[Dict] = None,
    replicas: int = 0,
    supervise: bool = False,
    health_interval: float = 0.0,
    **coordinator_options,
) -> ClusterHandle:
    """Spawn ``worker_count`` workers and serve them behind one router.

    Either ``points`` (bulk-loaded through the shard map) or
    ``snapshot_state`` (a :func:`repro.cluster.persist.load_cluster_state`
    mapping, restoring ids and shard assignment exactly) seeds the data;
    both ``None`` starts empty.  ``replicas=1`` spawns one standby
    worker per primary and mirrors every write synchronously (reads
    fail over when a primary dies); ``supervise=True`` starts a
    :class:`ClusterSupervisor` that respawns dead workers; a positive
    ``health_interval`` starts the coordinator's background health
    probes at that period.  ``coordinator_options`` pass through to
    :class:`ClusterCoordinator` (rebalance tuning).  On any startup
    failure the already-spawned workers are terminated before the error
    propagates.
    """
    if worker_count < 1:
        raise ValueError(f"need at least one worker, got {worker_count}")
    if points is not None and snapshot_state is not None:
        raise ValueError("pass points or snapshot_state, not both")
    if replicas not in (0, 1):
        raise ValueError(
            f"replicas must be 0 or 1 (per-primary standby), got {replicas}"
        )
    workers: List[WorkerProcess] = []
    replica_workers: List[WorkerProcess] = []
    try:
        for _ in range(worker_count):
            workers.append(
                spawn_worker(
                    host=host, window_ms=window_ms, max_batch=max_batch
                )
            )
        backends = [
            RemoteShard(worker.host, worker.port) for worker in workers
        ]
        if replicas:
            for _ in range(worker_count):
                replica_workers.append(
                    spawn_worker(
                        host=host,
                        window_ms=window_ms,
                        max_batch=max_batch,
                    )
                )
            coordinator_options["replicas"] = [
                RemoteShard(worker.host, worker.port)
                for worker in replica_workers
            ]
        if snapshot_state is not None:
            coordinator = ClusterCoordinator.restore(
                backends, snapshot_state, **coordinator_options
            )
        else:
            coordinator = ClusterCoordinator(
                backends, **coordinator_options
            )
            if points:
                coordinator.bulk_load(points)
        if health_interval > 0:
            coordinator.start_health_monitor(health_interval)
        router_thread = RouterThread(coordinator, host=host, port=port)
    except BaseException:
        for worker in workers + replica_workers:
            worker.terminate()
        raise
    supervisor: Optional[ClusterSupervisor] = None
    if supervise:
        supervisor = ClusterSupervisor(
            coordinator,
            workers,
            replica_workers if replicas else None,
            host=host,
            window_ms=window_ms,
            max_batch=max_batch,
        )
        supervisor.start()
    return ClusterHandle(
        router_thread, coordinator, workers, replica_workers, supervisor
    )
