"""Process management: spawn worker replicas and assemble a cluster.

A worker is nothing special — it is ``python -m repro serve`` on an
ephemeral port with an empty database, exactly the process a user would
start by hand.  :func:`spawn_worker` launches one and parses the bound
address from its startup banner (``serve --port 0`` prints the port it
actually got); :func:`start_cluster` composes N of them with a
:class:`~repro.cluster.coordinator.ClusterCoordinator` over
:class:`~repro.cluster.backends.RemoteShard` backends and a
:class:`~repro.cluster.router.RouterThread` speaking protocol v1 to
clients — the topology behind ``python -m repro cluster --workers N``.

Data loads *through* the coordinator (bulk extend, partitioned by the
shard map), so workers never need seed files and a restored snapshot
(``--load``) replays onto whatever worker count the snapshot recorded.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.backends import RemoteShard
from repro.cluster.coordinator import ClusterCoordinator
from repro.cluster.router import RouterThread

__all__ = ["WorkerProcess", "spawn_worker", "ClusterHandle", "start_cluster"]

#: The serve banner the launcher parses the bound address from.
_BANNER = re.compile(r"Serving [\d,]+ points on ([\w.\-]+):(\d+) ")


class WorkerProcess:
    """One spawned ``repro serve`` worker and its bound address."""

    def __init__(
        self, process: subprocess.Popen, host: str, port: int
    ) -> None:
        #: the worker's OS process
        self.process = process
        #: bound listen address (parsed from the startup banner)
        self.host, self.port = host, port

    @property
    def alive(self) -> bool:
        """Whether the worker process is still running."""
        return self.process.poll() is None

    def terminate(self, timeout: float = 5.0) -> None:
        """Stop the worker process (terminate, then kill on timeout)."""
        if self.process.poll() is None:
            self.process.terminate()
            try:
                self.process.wait(timeout=timeout)
            except subprocess.TimeoutExpired:  # pragma: no cover - stuck
                self.process.kill()
                self.process.wait(timeout=timeout)
        if self.process.stdout is not None:
            self.process.stdout.close()


def _worker_environment() -> Dict[str, str]:
    """The spawned worker's environment: this repro on the path.

    Workers must import the same library as the launcher even when it
    was never installed (the repo's ``PYTHONPATH=src`` convention), so
    the package's parent directory is prepended explicitly.
    """
    import repro

    source_root = os.path.dirname(os.path.dirname(repro.__file__))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        source_root + os.pathsep + existing if existing else source_root
    )
    return env


def spawn_worker(
    *,
    host: str = "127.0.0.1",
    window_ms: float = 2.0,
    max_batch: int = 64,
    startup_timeout: float = 30.0,
) -> WorkerProcess:
    """Launch one empty ``repro serve`` worker on an ephemeral port.

    Blocks until the worker prints its startup banner (so the returned
    address is connectable) or ``startup_timeout`` passes.  The worker
    starts with ``--points 0`` — data arrives through the coordinator's
    bulk load, never via per-worker seed files.
    """
    command = [
        sys.executable,
        "-u",  # unbuffered: the banner must arrive through the pipe
        "-m",
        "repro",
        "serve",
        "--host",
        host,
        "--port",
        "0",
        "--points",
        "0",
        "--window-ms",
        str(window_ms),
        "--max-batch",
        str(max_batch),
    ]
    process = subprocess.Popen(
        command,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=_worker_environment(),
    )
    deadline = time.monotonic() + startup_timeout
    lines: List[str] = []
    while True:
        if process.poll() is not None:
            raise RuntimeError(
                "worker exited during startup:\n" + "".join(lines)
            )
        if time.monotonic() > deadline:
            process.kill()
            raise RuntimeError(
                "worker did not print its startup banner within "
                f"{startup_timeout:g}s:\n" + "".join(lines)
            )
        line = process.stdout.readline()
        if not line:
            time.sleep(0.01)
            continue
        lines.append(line)
        match = _BANNER.search(line)
        if match:
            return WorkerProcess(
                process, match.group(1), int(match.group(2))
            )


class ClusterHandle:
    """A running cluster: router + workers + coordinator, one lifetime.

    Returned by :func:`start_cluster`; use as a context manager or call
    :meth:`close`.  :attr:`host`/:attr:`port` are the router's client
    address.
    """

    def __init__(
        self,
        router_thread: RouterThread,
        coordinator: ClusterCoordinator,
        workers: List[WorkerProcess],
    ) -> None:
        #: the protocol-serving router thread
        self.router_thread = router_thread
        #: the routing/merge engine (shared with the router)
        self.coordinator = coordinator
        #: the spawned worker processes
        self.workers = workers
        #: the router's client-facing address
        self.host, self.port = router_thread.host, router_thread.port

    def close(self) -> None:
        """Stop the router (closing shard connections), then workers."""
        self.router_thread.close()
        for worker in self.workers:
            worker.terminate()

    def __enter__(self) -> "ClusterHandle":
        """Context-manager entry: the cluster is already serving."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: tear the cluster down."""
        self.close()


def start_cluster(
    worker_count: int,
    *,
    points: Optional[Sequence[Tuple[float, float]]] = None,
    host: str = "127.0.0.1",
    port: int = 0,
    window_ms: float = 2.0,
    max_batch: int = 64,
    snapshot_state: Optional[Dict] = None,
    **coordinator_options,
) -> ClusterHandle:
    """Spawn ``worker_count`` workers and serve them behind one router.

    Either ``points`` (bulk-loaded through the shard map) or
    ``snapshot_state`` (a :func:`repro.cluster.persist.load_cluster_state`
    mapping, restoring ids and shard assignment exactly) seeds the data;
    both ``None`` starts empty.  ``coordinator_options`` pass through to
    :class:`ClusterCoordinator` (rebalance tuning).  On any startup
    failure the already-spawned workers are terminated before the error
    propagates.
    """
    if worker_count < 1:
        raise ValueError(f"need at least one worker, got {worker_count}")
    if points is not None and snapshot_state is not None:
        raise ValueError("pass points or snapshot_state, not both")
    workers: List[WorkerProcess] = []
    try:
        for _ in range(worker_count):
            workers.append(
                spawn_worker(
                    host=host, window_ms=window_ms, max_batch=max_batch
                )
            )
        backends = [
            RemoteShard(worker.host, worker.port) for worker in workers
        ]
        if snapshot_state is not None:
            coordinator = ClusterCoordinator.restore(
                backends, snapshot_state, **coordinator_options
            )
        else:
            coordinator = ClusterCoordinator(
                backends, **coordinator_options
            )
            if points:
                coordinator.bulk_load(points)
        router_thread = RouterThread(
            coordinator, host=host, port=port
        )
    except BaseException:
        for worker in workers:
            worker.terminate()
        raise
    return ClusterHandle(router_thread, coordinator, workers)
