"""Shard backends: the coordinator's uniform view of one worker.

The :class:`~repro.cluster.coordinator.ClusterCoordinator` routes and
merges; a *backend* answers shard-local operations in shard-local row
ids.  Two implementations share the interface:

:class:`LocalShard`
    A :class:`~repro.core.database.SpatialDatabase` in this process —
    the oracle-equivalence test harness and the zero-deployment mode.
    Specs pass through unserialised, so predicates work.

:class:`RemoteShard`
    A worker process reached over the v1 NDJSON protocol.  Connections
    are pooled per shard: concurrent router threads each borrow a
    dedicated :class:`~repro.server.client.QueryClient` (the wire
    client is not thread-safe on one socket), and streams keep their
    connection checked out until closed.  Specs must be serialisable —
    the coordinator strips predicates/limits before fan-out and applies
    them at the merge layer, so this never constrains cluster clients.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

from repro.query.spec import Query

__all__ = ["ShardBackend", "LocalShard", "RemoteShard"]


class ShardBackend:
    """Interface one shard exposes to the coordinator (local ids)."""

    def query_ids(self, spec: Query) -> List[int]:
        """Answer ``spec`` eagerly; returns shard-local row ids."""
        raise NotImplementedError

    def stream_ids(
        self, spec: Query, *, chunk_size: int = 256
    ) -> Iterator[int]:
        """Lazily yield ``spec``'s shard-local row ids in result order."""
        raise NotImplementedError

    def insert(self, x: float, y: float) -> int:
        """Insert one point; returns its shard-local row id."""
        raise NotImplementedError

    def extend(self, points: Sequence[Tuple[float, float]]) -> List[int]:
        """Insert a batch; returns the shard-local row ids in order."""
        raise NotImplementedError

    def delete(self, local_id: int) -> None:
        """Tombstone one shard-local row."""
        raise NotImplementedError

    def stats_frame(self) -> Optional[dict]:
        """The shard's ``stats`` wire frame (``None`` if not serving)."""
        return None

    def close(self) -> None:
        """Release any held resources (connections)."""


class LocalShard(ShardBackend):
    """An in-process :class:`SpatialDatabase` acting as one shard."""

    def __init__(self, database) -> None:
        #: the shard's database (local row ids)
        self.database = database

    def query_ids(self, spec: Query) -> List[int]:
        """Execute ``spec`` on the shard database (eager ids)."""
        return self.database.query(spec).ids()

    def stream_ids(
        self, spec: Query, *, chunk_size: int = 256
    ) -> Iterator[int]:
        """Stream ``spec`` lazily through the database's stream path."""
        result = self.database.query(spec)
        return result.stream()

    def insert(self, x: float, y: float) -> int:
        """Insert one point into the shard database."""
        from repro.geometry.point import Point

        return self.database.insert(Point(x, y))

    def extend(self, points: Sequence[Tuple[float, float]]) -> List[int]:
        """Bulk-insert into the shard database."""
        from repro.geometry.point import Point

        return self.database.extend([Point(x, y) for x, y in points])

    def delete(self, local_id: int) -> None:
        """Tombstone one row in the shard database."""
        self.database.delete(local_id)


class _PooledClient:
    """A borrowed wire client that returns to its pool on release."""

    __slots__ = ("client", "_shard", "_returned")

    def __init__(self, client, shard: "RemoteShard") -> None:
        #: the underlying :class:`~repro.server.client.QueryClient`
        self.client = client
        self._shard = shard
        self._returned = False

    def release(self) -> None:
        """Return the connection to the shard's pool (idempotent)."""
        if not self._returned:
            self._returned = True
            self._shard._release(self.client)

    def discard(self) -> None:
        """Close the connection instead of pooling it (error paths)."""
        if not self._returned:
            self._returned = True
            try:
                self.client.close()
            except OSError:  # pragma: no cover - teardown best effort
                pass


class RemoteShard(ShardBackend):
    """One worker process addressed over the NDJSON wire protocol.

    ``connect`` defaults to dialing a
    :class:`~repro.server.client.QueryClient`; tests may inject a
    factory.  The pool grows on demand (one connection per concurrently
    borrowing thread) and shrinks only at :meth:`close`.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        connect: Optional[Callable[[], object]] = None,
    ) -> None:
        #: worker address
        self.host, self.port = host, port
        self._connect = connect or self._dial
        self._pool: List[object] = []
        self._lock = threading.Lock()
        self._closed = False

    def _dial(self):
        """Open one wire client to the worker."""
        from repro.server.client import QueryClient

        return QueryClient(self.host, self.port)

    def _borrow(self) -> _PooledClient:
        """Check a pooled connection out (dialing when the pool is dry)."""
        with self._lock:
            if self._closed:
                raise RuntimeError("shard backend is closed")
            if self._pool:
                return _PooledClient(self._pool.pop(), self)
        return _PooledClient(self._connect(), self)

    def _release(self, client) -> None:
        """Return one connection to the pool (closing when shut down)."""
        with self._lock:
            if not self._closed:
                self._pool.append(client)
                return
        client.close()

    def query_ids(self, spec: Query) -> List[int]:
        """Answer ``spec`` over the wire (packed id transport)."""
        borrowed = self._borrow()
        try:
            ids = list(borrowed.client.query(spec).ids)
        except Exception:
            borrowed.discard()
            raise
        borrowed.release()
        return ids

    def stream_ids(
        self, spec: Query, *, chunk_size: int = 256
    ) -> Iterator[int]:
        """Open a chunked wire stream; the connection stays borrowed.

        The returned generator supports ``close()`` — closing cancels
        the server-side stream and returns the connection to the pool,
        so abandoning a merge mid-way releases worker resources
        deterministically.
        """
        borrowed = self._borrow()
        try:
            stream = borrowed.client.stream(spec, chunk_size=chunk_size)
        except Exception:
            borrowed.discard()
            raise

        def rows() -> Iterator[int]:
            try:
                for row in stream:
                    yield row
            finally:
                try:
                    stream.close()
                except Exception:
                    borrowed.discard()
                else:
                    borrowed.release()

        return rows()

    def insert(self, x: float, y: float) -> int:
        """Insert one point on the worker; returns its local row id."""
        borrowed = self._borrow()
        try:
            ack = borrowed.client.insert(x, y)
        except Exception:
            borrowed.discard()
            raise
        borrowed.release()
        return ack.rows[0]

    def extend(self, points: Sequence[Tuple[float, float]]) -> List[int]:
        """Bulk-insert on the worker, chunked under the wire cap."""
        from repro.server.protocol import MAX_WRITE_POINTS

        points = list(points)
        borrowed = self._borrow()
        rows: List[int] = []
        try:
            for start in range(0, len(points), MAX_WRITE_POINTS):
                ack = borrowed.client.extend(
                    points[start : start + MAX_WRITE_POINTS]
                )
                rows.extend(ack.rows)
        except Exception:
            borrowed.discard()
            raise
        borrowed.release()
        return rows

    def delete(self, local_id: int) -> None:
        """Tombstone one worker row."""
        borrowed = self._borrow()
        try:
            borrowed.client.delete(local_id)
        except Exception:
            borrowed.discard()
            raise
        borrowed.release()

    def stats_frame(self) -> Optional[dict]:
        """Fetch the worker's ``stats`` frame."""
        borrowed = self._borrow()
        try:
            frame = borrowed.client.stats()
        except Exception:
            borrowed.discard()
            raise
        borrowed.release()
        return frame

    def close(self) -> None:
        """Close every pooled connection and refuse new borrows."""
        with self._lock:
            self._closed = True
            pool, self._pool = self._pool, []
        for client in pool:
            try:
                client.close()
            except OSError:  # pragma: no cover - teardown best effort
                pass
