"""Shard backends: the coordinator's uniform view of one worker.

The :class:`~repro.cluster.coordinator.ClusterCoordinator` routes and
merges; a *backend* answers shard-local operations in shard-local row
ids.  Two implementations share the interface:

:class:`LocalShard`
    A :class:`~repro.core.database.SpatialDatabase` in this process —
    the oracle-equivalence test harness and the zero-deployment mode.
    Specs pass through unserialised, so predicates work.

:class:`RemoteShard`
    A worker process reached over the v1 NDJSON protocol.  Connections
    are pooled per shard: concurrent router threads each borrow a
    dedicated :class:`~repro.server.client.QueryClient` (the wire
    client is not thread-safe on one socket), and streams keep their
    connection checked out until closed.  Specs must be serialisable —
    the coordinator strips predicates/limits before fan-out and applies
    them at the merge layer, so this never constrains cluster clients.

**RPC hardening.**  Every remote call runs under a per-call socket
deadline (``rpc_timeout``); *read* RPCs additionally retry under a
:class:`~repro.cluster.faults.RetryPolicy` — bounded attempts, jittered
exponential backoff, connection discarded and re-dialed between
attempts (a dry pool dials fresh, so a worker restarted on the same
address reconnects transparently).  *Write* RPCs get exactly one
attempt: a retried write could double-apply on a worker that committed
the first attempt before the connection died.  A call that exhausts its
budget raises :class:`~repro.cluster.faults.ShardUnavailableError`, the
signal the coordinator's failover logic keys on.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Iterator, List, Optional, Sequence, Tuple

from repro.query.spec import Query

__all__ = ["ShardBackend", "LocalShard", "RemoteShard"]

#: Transport-level failures worth retrying (server-side ``RemoteError``
#: frames are *not* here: a worker that answered is reachable, and its
#: verdict would not change on a retry).
_RETRYABLE = (ConnectionError, TimeoutError, OSError, EOFError)


class ShardBackend:
    """Interface one shard exposes to the coordinator (local ids)."""

    def query_ids(self, spec: Query) -> List[int]:
        """Answer ``spec`` eagerly; returns shard-local row ids."""
        raise NotImplementedError

    def stream_ids(
        self, spec: Query, *, chunk_size: int = 256
    ) -> Iterator[int]:
        """Lazily yield ``spec``'s shard-local row ids in result order."""
        raise NotImplementedError

    def insert(self, x: float, y: float) -> int:
        """Insert one point; returns its shard-local row id."""
        raise NotImplementedError

    def extend(self, points: Sequence[Tuple[float, float]]) -> List[int]:
        """Insert a batch; returns the shard-local row ids in order."""
        raise NotImplementedError

    def delete(self, local_id: int) -> None:
        """Tombstone one shard-local row."""
        raise NotImplementedError

    def stats_frame(self) -> Optional[dict]:
        """The shard's ``stats`` wire frame (``None`` if not serving)."""
        return None

    def ping(self) -> bool:
        """Health probe: can this backend answer right now?

        Never raises — probe failures return ``False``.  The default is
        ``True`` (an in-process shard is alive iff this process is).
        """
        return True

    def close(self) -> None:
        """Release any held resources (connections)."""


class LocalShard(ShardBackend):
    """An in-process :class:`SpatialDatabase` acting as one shard."""

    def __init__(self, database) -> None:
        #: the shard's database (local row ids)
        self.database = database

    def query_ids(self, spec: Query) -> List[int]:
        """Execute ``spec`` on the shard database (eager ids)."""
        return self.database.query(spec).ids()

    def stream_ids(
        self, spec: Query, *, chunk_size: int = 256
    ) -> Iterator[int]:
        """Stream ``spec`` lazily through the database's stream path."""
        result = self.database.query(spec)
        return result.stream()

    def insert(self, x: float, y: float) -> int:
        """Insert one point into the shard database."""
        from repro.geometry.point import Point

        return self.database.insert(Point(x, y))

    def extend(self, points: Sequence[Tuple[float, float]]) -> List[int]:
        """Bulk-insert into the shard database."""
        from repro.geometry.point import Point

        return self.database.extend([Point(x, y) for x, y in points])

    def delete(self, local_id: int) -> None:
        """Tombstone one row in the shard database."""
        self.database.delete(local_id)


class _PooledClient:
    """A borrowed wire client that returns to its pool on release."""

    __slots__ = ("client", "_shard", "_returned")

    def __init__(self, client, shard: "RemoteShard") -> None:
        #: the underlying :class:`~repro.server.client.QueryClient`
        self.client = client
        self._shard = shard
        self._returned = False

    def release(self) -> None:
        """Return the connection to the shard's pool (idempotent)."""
        if not self._returned:
            self._returned = True
            self._shard._release(self.client)

    def discard(self) -> None:
        """Close the connection instead of pooling it (error paths)."""
        if not self._returned:
            self._returned = True
            try:
                self.client.close()
            except OSError:  # pragma: no cover - teardown best effort
                pass


class RemoteShard(ShardBackend):
    """One worker process addressed over the NDJSON wire protocol.

    ``connect`` defaults to dialing a
    :class:`~repro.server.client.QueryClient`; tests may inject a
    factory.  The pool grows on demand (one connection per concurrently
    borrowing thread) and shrinks only at :meth:`close`.

    ``retry`` governs read RPCs (see the module docstring); ``None``
    installs the default :class:`~repro.cluster.faults.RetryPolicy`.
    ``rpc_timeout`` is the per-attempt socket deadline in seconds.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        connect: Optional[Callable[[], object]] = None,
        retry: Optional["RetryPolicy"] = None,
        rpc_timeout: float = 10.0,
    ) -> None:
        from repro.cluster.faults import RetryPolicy

        #: worker address
        self.host, self.port = host, port
        #: the read-RPC retry policy
        self.retry = retry if retry is not None else RetryPolicy()
        #: per-attempt socket deadline, seconds
        self.rpc_timeout = float(rpc_timeout)
        self._connect = connect or self._dial
        self._pool: List[object] = []
        self._lock = threading.Lock()
        self._closed = False

    def _dial(self):
        """Open one wire client to the worker (per-call socket deadline)."""
        from repro.server.client import QueryClient

        return QueryClient(self.host, self.port, timeout=self.rpc_timeout)

    def _call(self, op: Callable[[object], object], *, retryable: bool):
        """Run ``op(client)`` on a borrowed connection, retrying reads.

        Transport failures discard the connection (the next borrow
        re-dials when the pool is dry) and — for ``retryable`` calls —
        back off and try again under the policy's attempt and deadline
        budgets.  A call that exhausts its budget raises
        :class:`~repro.cluster.faults.ShardUnavailableError` chained to
        the last transport error; non-transport errors (a worker's
        ``RemoteError`` verdict, spec bugs) propagate unchanged.
        """
        from repro.cluster.faults import ShardUnavailableError

        policy = self.retry
        attempts = policy.attempts if retryable else 1
        deadline = time.monotonic() + policy.deadline_s
        last_error: Optional[BaseException] = None
        for attempt in range(attempts):
            if attempt:
                backoff = policy.backoff_s(attempt - 1)
                if time.monotonic() + backoff > deadline:
                    break
                time.sleep(backoff)
            try:
                borrowed = self._borrow()
            except RuntimeError:
                raise  # closed backend: not a transport failure
            except _RETRYABLE as exc:
                last_error = exc
                continue
            try:
                result = op(borrowed.client)
            except _RETRYABLE as exc:
                borrowed.discard()
                last_error = exc
                continue
            except Exception:
                borrowed.discard()
                raise
            borrowed.release()
            return result
        raise ShardUnavailableError(
            f"worker {self.host}:{self.port} unavailable after "
            f"{attempts} attempt(s): {last_error}"
        ) from last_error

    def _borrow(self) -> _PooledClient:
        """Check a pooled connection out (dialing when the pool is dry)."""
        with self._lock:
            if self._closed:
                raise RuntimeError("shard backend is closed")
            if self._pool:
                return _PooledClient(self._pool.pop(), self)
        return _PooledClient(self._connect(), self)

    def _release(self, client) -> None:
        """Return one connection to the pool (closing when shut down)."""
        with self._lock:
            if not self._closed:
                self._pool.append(client)
                return
        client.close()

    def query_ids(self, spec: Query) -> List[int]:
        """Answer ``spec`` over the wire (packed ids; retried reads)."""
        return self._call(
            lambda client: list(client.query(spec).ids), retryable=True
        )

    def stream_ids(
        self, spec: Query, *, chunk_size: int = 256
    ) -> Iterator[int]:
        """Open a chunked wire stream; the connection stays borrowed.

        The returned generator supports ``close()`` — closing cancels
        the server-side stream and returns the connection to the pool,
        so abandoning a merge mid-way releases worker resources
        deterministically.  Opening retries like any read RPC;
        mid-stream transport failures propagate to the consumer (the
        coordinator fails the pull over to the replica).
        """

        from repro.cluster.faults import ShardUnavailableError

        # The generic _call loop releases the connection on success, but
        # a stream must keep its connection checked out until exhausted
        # — so the borrow+open step runs its own retry loop here.
        policy = self.retry
        deadline = time.monotonic() + policy.deadline_s
        last_error: Optional[BaseException] = None
        borrowed = stream = None
        for attempt in range(policy.attempts):
            if attempt:
                backoff = policy.backoff_s(attempt - 1)
                if time.monotonic() + backoff > deadline:
                    break
                time.sleep(backoff)
            try:
                borrowed = self._borrow()
            except RuntimeError:
                raise
            except _RETRYABLE as exc:
                last_error = exc
                continue
            try:
                stream = borrowed.client.stream(spec, chunk_size=chunk_size)
                break
            except _RETRYABLE as exc:
                borrowed.discard()
                last_error = exc
                continue
            except Exception:
                borrowed.discard()
                raise
        if stream is None:
            raise ShardUnavailableError(
                f"worker {self.host}:{self.port} unavailable after "
                f"{policy.attempts} attempt(s): {last_error}"
            ) from last_error

        def rows() -> Iterator[int]:
            try:
                for row in stream:
                    yield row
            finally:
                try:
                    stream.close()
                except Exception:
                    borrowed.discard()
                else:
                    borrowed.release()

        return rows()

    def insert(self, x: float, y: float) -> int:
        """Insert one point on the worker; returns its local row id.

        Single attempt: a retried insert could double-apply on a worker
        that committed before the connection died.
        """
        return self._call(
            lambda client: client.insert(x, y).rows[0], retryable=False
        )

    def extend(self, points: Sequence[Tuple[float, float]]) -> List[int]:
        """Bulk-insert on the worker, chunked under the wire cap.

        Single attempt per call, like :meth:`insert`.
        """
        from repro.server.protocol import MAX_WRITE_POINTS

        points = list(points)

        def run(client) -> List[int]:
            rows: List[int] = []
            for start in range(0, len(points), MAX_WRITE_POINTS):
                ack = client.extend(points[start : start + MAX_WRITE_POINTS])
                rows.extend(ack.rows)
            return rows

        return self._call(run, retryable=False)

    def delete(self, local_id: int) -> None:
        """Tombstone one worker row (single attempt, like all writes)."""
        self._call(
            lambda client: client.delete(local_id), retryable=False
        )

    def stats_frame(self) -> Optional[dict]:
        """Fetch the worker's ``stats`` frame (retried like a read)."""
        return self._call(lambda client: client.stats(), retryable=True)

    def ping(self) -> bool:
        """One-attempt liveness probe (no retries — probes must be cheap)."""
        try:
            borrowed = self._borrow()
        except Exception:
            return False
        try:
            borrowed.client.stats()
        except Exception:
            borrowed.discard()
            return False
        borrowed.release()
        return True

    def close(self) -> None:
        """Close every pooled connection and refuse new borrows."""
        with self._lock:
            self._closed = True
            pool, self._pool = self._pool, []
        for client in pool:
            try:
                client.close()
            except OSError:  # pragma: no cover - teardown best effort
                pass
