"""Cluster-wide stats aggregation over the ``stats`` wire frame.

Each worker replica answers a full PR-8 ``stats`` frame: counter
sections (``server``/``coalescer``/``engine``/``subscriptions``) plus a
``latency`` section of per-kind :class:`~repro.server.metrics.LatencyHistogram`
wire forms.  Those histogram dicts are mergeable by design — fixed
log2 buckets keyed by their upper edge, exact ``count``/``sum``/``max``
alongside — so the cluster view is computed by summing bucket counts
and re-walking the quantiles, with no per-observation state crossing
the wire.

:func:`merge_stats_frames` produces one frame that passes the protocol's
``stats`` validation (the three required sections present, additive
sections only when every input carried them), so cluster clients can
consume it with the same code path as a single server's frame.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

__all__ = [
    "merge_histogram_dicts",
    "merge_latency_sections",
    "merge_stats_frames",
]


def merge_histogram_dicts(
    histograms: Sequence[Dict],
) -> Dict[str, object]:
    """Merge :meth:`LatencyHistogram.as_dict` wire forms into one.

    Bucket counts sum per upper edge; ``count`` and ``max_ms`` are
    exact; ``mean_ms`` is reconstructed from the rounded per-source
    means (exact up to their wire rounding); the quantiles re-run the
    histogram's conservative walk over the merged buckets, so they
    carry the same never-under-reporting guarantee as a single
    histogram's.
    """
    buckets: Dict[str, int] = {}
    count = 0
    sum_ms = 0.0
    max_ms = 0.0
    for histogram in histograms:
        source_count = int(histogram.get("count", 0))
        count += source_count
        sum_ms += float(histogram.get("mean_ms", 0.0)) * source_count
        max_ms = max(max_ms, float(histogram.get("max_ms", 0.0)))
        for edge, bucket_count in histogram.get("buckets", {}).items():
            buckets[edge] = buckets.get(edge, 0) + int(bucket_count)
    merged: Dict[str, object] = {
        "count": count,
        "mean_ms": round(sum_ms / count, 3) if count else 0.0,
        "max_ms": round(max_ms, 3),
        "buckets": dict(
            sorted(buckets.items(), key=lambda item: float(item[0]))
        ),
    }
    for name, q in (("p50_ms", 0.50), ("p95_ms", 0.95), ("p99_ms", 0.99)):
        merged[name] = round(
            _percentile_from_buckets(buckets, count, max_ms, q), 3
        )
    return merged


def _percentile_from_buckets(
    buckets: Dict[str, int], count: int, max_ms: float, q: float
) -> float:
    """The conservative bucket-walk quantile over merged wire buckets.

    Mirrors :meth:`LatencyHistogram.percentile_ms`: walk edges in
    ascending order to the first bucket whose cumulative count reaches
    the rank and report that bucket's upper edge, clamped by the exact
    maximum.
    """
    if not count:
        return 0.0
    rank = q * count
    cumulative = 0
    for edge in sorted(buckets, key=float):
        cumulative += buckets[edge]
        if cumulative >= rank and cumulative > 0:
            return min(float(edge), max_ms)
    return max_ms


def merge_latency_sections(
    sections: Sequence[Dict],
) -> Dict[str, object]:
    """Merge per-worker ``latency`` stats sections into the cluster view.

    Both sub-sections merge histogram-wise: ``admission_wait`` directly,
    ``kinds`` per query kind (a kind recorded by any worker appears in
    the merge).
    """
    kinds: Dict[str, List[Dict]] = {}
    waits: List[Dict] = []
    for section in sections:
        wait = section.get("admission_wait")
        if wait:
            waits.append(wait)
        for kind, histogram in section.get("kinds", {}).items():
            kinds.setdefault(kind, []).append(histogram)
    return {
        "admission_wait": merge_histogram_dicts(waits),
        "kinds": {
            kind: merge_histogram_dicts(histograms)
            for kind, histograms in sorted(kinds.items())
        },
    }


def _sum_counters(sections: Sequence[Dict]) -> Dict:
    """Sum numeric counters key-wise across worker stats sections.

    Non-numeric values (and booleans) are carried through from the
    first section that has them — they are labels, not counters.
    Nested dicts merge recursively (the histogram-shaped ones are
    handled by the dedicated mergers before this runs).
    """
    merged: Dict = {}
    for section in sections:
        for key, value in section.items():
            if isinstance(value, bool) or not isinstance(
                value, (int, float)
            ):
                if isinstance(value, dict):
                    merged[key] = _sum_counters(
                        [merged.get(key, {}), value]
                    )
                else:
                    merged.setdefault(key, value)
            else:
                merged[key] = merged.get(key, 0) + value
    return merged


def merge_stats_frames(
    frames: Sequence[Dict], *, cluster: Optional[Dict] = None
) -> Dict:
    """One cluster-wide ``stats`` frame from per-worker frames.

    Counter sections sum key-wise; the ``latency`` section merges
    histogram-wise; additive sections (``subscriptions``, ``latency``)
    appear only when every worker supplied them, keeping the merged
    frame within the protocol's stats schema.  ``cluster`` attaches the
    router's own additive section (shard map, per-worker live counts,
    rebalance counters) — unknown extra fields are forward-compatible
    by protocol rule.
    """
    if not frames:
        raise ValueError("need at least one worker stats frame")
    merged: Dict = {"type": "stats"}
    for key in ("server", "coalescer", "engine"):
        merged[key] = _sum_counters(
            [frame.get(key, {}) for frame in frames]
        )
    if all("subscriptions" in frame for frame in frames):
        merged["subscriptions"] = _sum_counters(
            [frame["subscriptions"] for frame in frames]
        )
    if all("latency" in frame for frame in frames):
        merged["latency"] = merge_latency_sections(
            [frame["latency"] for frame in frames]
        )
    if cluster is not None:
        merged["cluster"] = cluster
    return merged
