"""The cluster router: protocol v1 over a shard coordinator.

:class:`ClusterRouter` is a threaded TCP server speaking the exact
NDJSON wire format of the single-process
:class:`~repro.server.app.QueryServer` — same ``hello``, same
``query``/``next``/``cancel``/write/``stats`` frames, same packed id
transport, same error codes — so every existing client
(:class:`~repro.server.client.QueryClient`, the CLI, the benchmarks)
talks to a cluster without change.  Behind the socket it delegates to a
:class:`~repro.cluster.coordinator.ClusterCoordinator`: queries scatter
to the owning shards and gather through the merge layer; writes route
to the owning shard; ``stats`` answers the cluster-merged frame with
the router's additive ``cluster`` section.

Differences from a single server, all wire-legal:

* ``stats`` carries an extra ``cluster`` section (unknown fields are
  forward-compatible by protocol rule) and omits ``subscriptions``.
* ``subscribe``/``unsubscribe`` answer ``bad-request`` — standing
  queries would need cross-shard delta ordering, which the router does
  not provide (see docs/CLUSTER.md for the planned design).
* ``explain`` renders the router's routing decision, not a per-shard
  planner trace.
* Partial failure is *loud*: a query that loses a shard from both its
  primary and replica answers with ``"degraded": true`` plus the
  ``shards_failed`` worker list on the result frame (or the stream's
  final ``done`` chunk) — never a silently smaller result.  A write
  whose owning shard is unreachable answers an ``error`` frame with
  code ``unavailable``; the write did not apply and is safe to retry
  after recovery.

Concurrency: one OS thread per client connection (blocking socket I/O
releases the GIL, and the coordinator's readers-writer lock lets reads
from different connections fan out to workers truly concurrently); each
connection's frames are processed strictly in arrival order, preserving
the single-server admission semantics per connection.
"""

from __future__ import annotations

import math
import socket
import threading
from dataclasses import asdict
from time import perf_counter
from typing import Dict, Iterator, List, Optional

from repro.cluster.coordinator import (
    ClusterCoordinator,
    ClusterDegradedError,
    ClusterWriteError,
)
from repro.core.exceptions import ReproError
from repro.core.stats import QueryStats
from repro.server.protocol import (
    DEFAULT_CHUNK_SIZE,
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_frame,
    encode_frame,
    error_frame,
    pack_ids,
    parse_query_spec,
    rows_to_wire,
)

__all__ = ["ClusterRouter", "RouterThread"]


def _router_version() -> str:
    """The advertised server string (import deferred to avoid cycles)."""
    import repro

    return f"repro-cluster/{repro.__version__}"


class _RouterStream:
    """One open chunked stream on a router connection."""

    __slots__ = ("request_id", "chunks", "source", "seq", "produced")

    def __init__(self, request_id: int, chunks, source) -> None:
        self.request_id = request_id
        #: iterator of row blocks (post-projection)
        self.chunks = chunks
        #: the underlying merged gid stream (closed on teardown)
        self.source = source
        self.seq = 0
        #: rows produced so far (the chunk frames' ``examined`` field)
        self.produced = 0

    def close(self) -> None:
        """Tear down the underlying shard streams."""
        close = getattr(self.source, "close", None)
        if close is not None:
            close()


class ClusterRouter:
    """Serve the v1 wire protocol over a :class:`ClusterCoordinator`.

    Parameters
    ----------
    coordinator:
        The routing/merge engine (its backends may be remote workers or
        in-process shards — the router does not care).
    host, port:
        Listen address; port 0 binds an ephemeral port, exposed via
        :attr:`address` after :meth:`start`.
    chunk_size:
        Default rows per ``chunk`` frame when the client names none.
    max_inflight:
        Cap on concurrently open streams per connection.
    """

    def __init__(
        self,
        coordinator: ClusterCoordinator,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        max_inflight: int = 64,
    ) -> None:
        self.coordinator = coordinator
        self._host = host
        self._port = port
        self.chunk_size = int(chunk_size)
        self.max_inflight = int(max_inflight)
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._connections: set = set()
        self._conn_lock = threading.Lock()
        self._closed = threading.Event()
        #: router-level counters (merged into the stats frame)
        self.metrics: Dict[str, int] = {
            "connections_accepted": 0,
            "requests_total": 0,
            "writes_total": 0,
            "streams_opened": 0,
            "streams_completed": 0,
            "streams_cancelled": 0,
            "errors_sent": 0,
            "degraded_results": 0,
            "writes_unavailable": 0,
        }

    # -- lifecycle ---------------------------------------------------------

    @property
    def address(self) -> tuple:
        """The bound ``(host, port)`` (valid after :meth:`start`)."""
        if self._listener is None:
            raise RuntimeError("router is not started")
        return self._listener.getsockname()[:2]

    def start(self) -> tuple:
        """Bind the listen socket and start accepting; returns address."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self._host, self._port))
        listener.listen(64)
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-cluster-router", daemon=True
        )
        self._accept_thread.start()
        return self.address

    def close(self) -> None:
        """Stop accepting, drop every connection, close shard backends."""
        if self._closed.is_set():
            return
        self._closed.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover - teardown best effort
                pass
        with self._conn_lock:
            connections = list(self._connections)
        for conn in connections:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:  # pragma: no cover - teardown best effort
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5.0)
        self.coordinator.close()

    def _accept_loop(self) -> None:
        """Accept connections until closed; one handler thread each."""
        while not self._closed.is_set():
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return  # listener closed
            with self._conn_lock:
                self._connections.add(conn)
            self.metrics["connections_accepted"] += 1
            thread = threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name="repro-cluster-conn",
                daemon=True,
            )
            thread.start()

    # -- per-connection protocol loop --------------------------------------

    def _serve_connection(self, conn: socket.socket) -> None:
        """One client's frame loop: hello, then request/response."""
        streams: Dict[int, _RouterStream] = {}
        try:
            conn.sendall(
                encode_frame(
                    {
                        "type": "hello",
                        "protocol": PROTOCOL_VERSION,
                        "server": _router_version(),
                        "points": self.coordinator.total_live,
                    }
                )
            )
            reader = conn.makefile("rb")
            while True:
                line = reader.readline(MAX_LINE_BYTES + 1)
                if not line:
                    return  # client disconnected
                try:
                    frame = decode_frame(line)
                except ProtocolError as exc:
                    self._send_error(conn, None, exc.code, exc.message)
                    continue
                self._dispatch(conn, streams, frame)
        except (ConnectionError, OSError, BrokenPipeError):
            pass  # client vanished mid-frame
        finally:
            for stream in streams.values():
                stream.close()
            streams.clear()
            with self._conn_lock:
                self._connections.discard(conn)
            try:
                conn.close()
            except OSError:  # pragma: no cover - teardown best effort
                pass

    def _send(self, conn: socket.socket, frame: Dict) -> None:
        """Encode and write one frame."""
        conn.sendall(encode_frame(frame))

    def _send_error(
        self,
        conn: socket.socket,
        request_id: Optional[int],
        code: str,
        message: str,
    ) -> None:
        """Write one ``error`` frame."""
        self.metrics["errors_sent"] += 1
        self._send(conn, error_frame(request_id, code, message))

    def _dispatch(
        self,
        conn: socket.socket,
        streams: Dict[int, _RouterStream],
        frame: Dict,
    ) -> None:
        """Route one validated frame to its handler (arrival order)."""
        frame_type = frame["type"]
        if frame_type == "query":
            self._on_query(conn, streams, frame)
        elif frame_type in ("insert", "extend", "delete"):
            self._on_write(conn, frame)
        elif frame_type == "next":
            self._on_next(conn, streams, frame)
        elif frame_type == "cancel":
            self._on_cancel(conn, streams, frame)
        elif frame_type in ("subscribe", "unsubscribe"):
            # Standing queries need cross-shard delta ordering the
            # scatter-gather router does not provide; explicit rejection
            # beats silently absent notifies.
            self._send_error(
                conn,
                frame["id"],
                "bad-request",
                "subscriptions are not supported through the cluster "
                "router; subscribe to a worker directly or poll",
            )
        else:  # "stats"
            self._on_stats(conn)

    # -- queries -----------------------------------------------------------

    def _on_query(
        self,
        conn: socket.socket,
        streams: Dict[int, _RouterStream],
        frame: Dict,
    ) -> None:
        """Answer one query: eager scatter-gather or chunked stream."""
        request_id = frame["id"]
        if request_id in streams:
            self._send_error(
                conn,
                request_id,
                "bad-request",
                f"request id {request_id} is already in flight",
            )
            return
        try:
            spec = parse_query_spec(frame)
        except ProtocolError as exc:
            self._send_error(conn, request_id, exc.code, exc.message)
            return
        self.metrics["requests_total"] += 1
        if frame.get("stream"):
            self._open_stream(conn, streams, request_id, spec, frame)
            return
        started = perf_counter()
        shards_failed: Optional[List[int]] = None
        try:
            ids = self.coordinator.query(spec)
        except ClusterDegradedError as exc:
            # A shard was lost from both copies: answer with the
            # explicitly-partial result, never a silent one.
            ids = exc.ids
            shards_failed = exc.shards_failed
            self.metrics["degraded_results"] += 1
        except (ValueError, ReproError) as exc:
            self._send_error(conn, request_id, "bad-spec", str(exc))
            return
        except Exception as exc:  # pragma: no cover - defensive
            self._send_error(conn, request_id, "server-error", str(exc))
            return
        stats = QueryStats(
            method="cluster",
            result_size=len(ids),
            time_ms=(perf_counter() - started) * 1000.0,
        )
        response: Dict = {
            "type": "result",
            "id": request_id,
            "stats": _stats_to_wire(stats),
        }
        if shards_failed is not None:
            response["degraded"] = True
            response["shards_failed"] = shards_failed
        if frame.get("packed"):
            response["ids_packed"] = pack_ids(ids)
        else:
            response["ids"] = ids
        if frame.get("explain"):
            response["explain"] = self._explain(spec)
        self._send(conn, response)

    def _explain(self, spec) -> str:
        """Render the router's routing decision for an ``explain`` query."""
        coordinator = self.coordinator
        shard_map = coordinator.shard_map
        lines = [
            f"cluster scatter-gather over {coordinator.workers} workers "
            f"({len(shard_map.ranges)} Hilbert ranges, "
            f"order={shard_map.order})",
            f"spec: {spec.describe()}",
        ]
        point = getattr(spec, "point", None)
        if point is not None:
            owner = shard_map.owner_of(point.x, point.y)
            lines.append(
                f"route: owning shard {owner}, ball expansion on demand"
            )
        else:
            lines.append(
                "route: fan out to range-intersecting shards, "
                "merge sorted ids"
            )
        return "\n".join(lines)

    def _project(self, spec) -> "callable":
        """Row projector for ``spec.select`` over the global catalog."""
        coordinator = self.coordinator
        if spec.select == "points":
            return coordinator._point_at
        if spec.select == "distances":
            point = spec.point

            def distance(global_id: int) -> float:
                other = coordinator._point_at(global_id)
                return math.hypot(other.x - point.x, other.y - point.y)

            return distance
        return lambda global_id: global_id

    def _open_stream(
        self,
        conn: socket.socket,
        streams: Dict[int, _RouterStream],
        request_id: int,
        spec,
        frame: Dict,
    ) -> None:
        """Open a chunked stream and push its first chunk."""
        if len(streams) >= self.max_inflight:
            self._send_error(
                conn,
                request_id,
                "too-many-requests",
                f"connection exceeds {self.max_inflight} open streams",
            )
            return
        size = frame.get("chunk_size", self.chunk_size)
        try:
            source = self.coordinator.stream(spec)
        except (ValueError, ReproError) as exc:
            self._send_error(conn, request_id, "bad-spec", str(exc))
            return
        project = self._project(spec)
        stream = _RouterStream(
            request_id, _blocks(source, size, project), source
        )
        streams[request_id] = stream
        self.metrics["streams_opened"] += 1
        self._push_chunk(conn, streams, stream)

    def _push_chunk(
        self,
        conn: socket.socket,
        streams: Dict[int, _RouterStream],
        stream: _RouterStream,
    ) -> None:
        """Produce and send one chunk; ``done`` only on exhaustion.

        Mirrors the single server exactly: a final chunk of exactly
        ``chunk_size`` rows is followed by one empty ``done`` chunk on
        the next ``next``, so clients read until ``done``.
        """
        try:
            rows = next(stream.chunks, None)
        except Exception as exc:
            streams.pop(stream.request_id, None)
            stream.close()
            self._send_error(
                conn, stream.request_id, "server-error", str(exc)
            )
            return
        stream.produced += len(rows or [])
        frame = {
            "type": "chunk",
            "id": stream.request_id,
            "seq": stream.seq,
            "rows": rows_to_wire(rows or []),
            "done": rows is None,
            "examined": stream.produced,
        }
        stream.seq += 1
        if rows is None:
            streams.pop(stream.request_id, None)
            stream.close()
            self.metrics["streams_completed"] += 1
            # Stamp degradation on the final chunk: the stream source
            # accumulated any shards lost (from both copies) mid-flight.
            shards_failed = getattr(stream.source, "shards_failed", None)
            if shards_failed:
                frame["degraded"] = True
                frame["shards_failed"] = sorted(set(shards_failed))
                self.metrics["degraded_results"] += 1
        self._send(conn, frame)

    def _on_next(
        self,
        conn: socket.socket,
        streams: Dict[int, _RouterStream],
        frame: Dict,
    ) -> None:
        """Client-driven continuation: produce the next chunk."""
        stream = streams.get(frame["id"])
        if stream is None:
            self._send_error(
                conn,
                frame["id"],
                "bad-request",
                f"no open stream with id {frame['id']}",
            )
            return
        self._push_chunk(conn, streams, stream)

    def _on_cancel(
        self,
        conn: socket.socket,
        streams: Dict[int, _RouterStream],
        frame: Dict,
    ) -> None:
        """Tear down an open stream; acknowledge with a final chunk."""
        request_id = frame["id"]
        stream = streams.pop(request_id, None)
        if stream is None:
            self._send_error(
                conn,
                request_id,
                "bad-request",
                f"no open stream with id {request_id}",
            )
            return
        stream.close()
        self.metrics["streams_cancelled"] += 1
        self._send(
            conn,
            {
                "type": "chunk",
                "id": request_id,
                "seq": stream.seq,
                "rows": [],
                "done": True,
                "cancelled": True,
                "examined": stream.produced,
            },
        )

    # -- writes ------------------------------------------------------------

    def _on_write(self, conn: socket.socket, frame: Dict) -> None:
        """Route one mutation to its owning shard and acknowledge."""
        request_id = frame["id"]
        op = frame["type"]
        coordinator = self.coordinator
        try:
            if op == "insert":
                rows = [
                    coordinator.insert(float(frame["x"]), float(frame["y"]))
                ]
            elif op == "extend":
                rows = coordinator.extend(
                    [(float(x), float(y)) for x, y in frame["points"]]
                )
            else:  # "delete"
                row = int(frame["row"])
                coordinator.delete(row)
                rows = [row]
        except (ClusterWriteError, IndexError, ValueError, ReproError) as exc:
            self._send_error(conn, request_id, "bad-request", str(exc))
            return
        except (OSError, EOFError) as exc:
            # The owning shard is unreachable.  The write did NOT apply
            # (the coordinator never acks a write its primary did not
            # commit), so the client may retry after recovery.
            self.metrics["writes_unavailable"] += 1
            self._send_error(
                conn,
                request_id,
                "unavailable",
                f"owning shard unreachable, write not applied: {exc}",
            )
            return
        except Exception as exc:  # pragma: no cover - defensive
            self._send_error(conn, request_id, "server-error", str(exc))
            return
        self.metrics["writes_total"] += 1
        self._send(
            conn,
            {
                "type": "write",
                "id": request_id,
                "op": op,
                "rows": rows,
                "version": coordinator.version,
                "points": coordinator.total_live,
            },
        )

    # -- stats -------------------------------------------------------------

    def _on_stats(self, conn: socket.socket) -> None:
        """Answer with the cluster-merged stats frame."""
        try:
            frame = self.coordinator.stats_frame()
        except Exception as exc:  # pragma: no cover - worker vanished
            self._send_error(conn, None, "server-error", str(exc))
            return
        frame["cluster"] = dict(frame.get("cluster", {}))
        frame["cluster"]["router"] = dict(self.metrics)
        self._send(conn, frame)


def _blocks(source: Iterator, size: int, project) -> Iterator[List]:
    """Cut a gid stream into projected row blocks of ``size``."""
    block: List = []
    for global_id in source:
        block.append(project(global_id))
        if len(block) >= size:
            yield block
            block = []
    if block:
        yield block


def _stats_to_wire(stats: QueryStats) -> Dict:
    """JSON-ready form of the router's synthetic :class:`QueryStats`."""
    data = asdict(stats)
    data["time_ms"] = round(float(data["time_ms"]), 4)
    return data


class RouterThread:
    """A started :class:`ClusterRouter` with blocking lifecycle.

    The cluster sibling of :class:`~repro.server.app.ServerThread`:
    construction binds the listen socket (port 0 by default — the bound
    ephemeral port is in :attr:`host`/:attr:`port`), and :meth:`close`
    (or leaving the ``with`` block) tears the router down, shard
    backends included.
    """

    def __init__(
        self, coordinator: ClusterCoordinator, **router_kwargs
    ) -> None:
        self.router = ClusterRouter(coordinator, **router_kwargs)
        #: the bound listen address
        self.host, self.port = self.router.start()

    def close(self) -> None:
        """Stop the router (idempotent)."""
        self.router.close()

    def __enter__(self) -> "RouterThread":
        """Context-manager entry: the router is already accepting."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: stop the router."""
        self.close()
