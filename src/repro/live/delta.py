"""Incremental delta evaluation for standing subscriptions.

Given one applied write (its operation, affected rows, and their
coordinates) and a subscription's materialized current result, these
evaluators compute the exact ``added``/``removed`` row-id sets *without
re-executing the query*:

* **Region** subscriptions test only the written coordinates against
  the region geometry — the same exact containment predicates the query
  executors refine with (:meth:`Rect.contains_point
  <repro.geometry.rectangle.Rect.contains_point>`, region
  ``contains_point``), so the maintained membership is bit-for-bit the
  set a re-execution would return.
* **kNN** subscriptions maintain their k-set as a sorted
  ``(squared distance, row id)`` list — the executors' exact ranking
  order, ties by row id.  An insert strictly inside the kth radius
  displaces the current kth member; a delete of a member triggers one
  :func:`~repro.core.knn_query.incremental_nearest` walk that refills
  the set from the post-write live rows, skipping survivors.  Both
  repairs are local: cost scales with ``k`` and the walk's frontier,
  never with the database.

A delete of a *tombstoned-then-reinserted* position is two independent
writes: the delete produces one ``removed`` delta and the later insert
one ``added`` delta for the *new* row id — membership is by row, so
reinsertion never manufactures remove+add churn for untouched rows.
"""

from __future__ import annotations

from bisect import insort
from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple

from repro.core.knn_query import incremental_nearest

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.database import SpatialDatabase
    from repro.core.store import StoreSnapshot
    from repro.live.registry import Subscription


class Delta:
    """One subscription's result change under one write."""

    __slots__ = ("added", "removed")

    def __init__(self, added: List[int], removed: List[int]) -> None:
        #: row ids that entered the result (kNN: rank-insertion order)
        self.added = added
        #: row ids that left the result
        self.removed = removed

    def __bool__(self) -> bool:
        """Whether the write changed this subscription's result at all."""
        return bool(self.added or self.removed)

    def __repr__(self) -> str:
        return f"Delta(added={self.added}, removed={self.removed})"


def evaluate_write(
    subscription: "Subscription",
    op: str,
    rows: Sequence[int],
    coords: Sequence[Tuple[float, float]],
    database: "SpatialDatabase",
    pre: Optional["StoreSnapshot"] = None,
) -> Delta:
    """Update ``subscription`` for one applied write; return its delta.

    ``rows``/``coords`` are parallel: the written row ids and their
    coordinates (for a delete, the tombstoned row's coordinates — the
    append-only store keeps them addressable).  The subscription's
    members are mutated in place to the post-write result.

    ``pre`` is the pre-write :class:`~repro.core.store.StoreSnapshot`
    (O(1) to capture).  The member sets *are* the materialized pre-write
    results, so the snapshot is a guard, not a data source: a delete of
    a row the pre-write version could not see is ignored rather than
    trusted, keeping the state machine exact even if a caller ever
    replays a write description.
    """
    if subscription.kind == "region":
        return _evaluate_region(subscription, op, rows, coords, pre)
    return _evaluate_knn(subscription, op, rows, coords, database, pre)


def _evaluate_region(
    subscription: "Subscription",
    op: str,
    rows: Sequence[int],
    coords: Sequence[Tuple[float, float]],
    pre: Optional["StoreSnapshot"],
) -> Delta:
    """Membership delta of a region subscription from coordinates alone."""
    added: List[int] = []
    removed: List[int] = []
    members = subscription.members
    if op == "delete":
        for row in rows:
            if pre is not None and not pre.visible(row):
                continue
            if row in members:
                members.discard(row)
                removed.append(row)
    else:  # insert / extend
        contains = subscription.contains
        for row, (x, y) in zip(rows, coords):
            if contains(x, y):
                members.add(row)
                added.append(row)
    return Delta(added, removed)


def _evaluate_knn(
    subscription: "Subscription",
    op: str,
    rows: Sequence[int],
    coords: Sequence[Tuple[float, float]],
    database: "SpatialDatabase",
    pre: Optional["StoreSnapshot"],
) -> Delta:
    """Repair a kNN subscription's k-set in place; return its delta."""
    added: List[int] = []
    removed: List[int] = []
    members = subscription.members
    ordered = subscription.ordered
    if op == "delete":
        for row in rows:
            if pre is not None and not pre.visible(row):
                continue
            if row not in members:
                continue
            members.discard(row)
            removed.append(row)
            for position, (_, member) in enumerate(ordered):
                if member == row:
                    del ordered[position]
                    break
        if removed:
            _refill(subscription, database, added)
    else:  # insert / extend: displacement check per written point
        k = subscription.k
        focal_x = subscription.focal.x
        focal_y = subscription.focal.y
        for row, (x, y) in zip(rows, coords):
            dx = x - focal_x
            dy = y - focal_y
            entry = (dx * dx + dy * dy, row)
            if len(ordered) < k:
                insort(ordered, entry)
                members.add(row)
                added.append(row)
            elif entry < ordered[-1]:
                evicted = ordered.pop()[1]
                members.discard(evicted)
                # An entry of this same write that was admitted into an
                # underfull set and displaced again nets out to nothing.
                if evicted in added:
                    added.remove(evicted)
                else:
                    removed.append(evicted)
                insort(ordered, entry)
                members.add(row)
                added.append(row)
    return Delta(added, removed)


def _refill(
    subscription: "Subscription",
    database: "SpatialDatabase",
    added: List[int],
) -> None:
    """Top an underfull k-set back up from the post-write live rows.

    One :func:`~repro.core.knn_query.incremental_nearest` walk yields
    live rows nearest-first (ties by row id); the surviving members are
    a prefix of that ranking, so skipping them and taking rows until the
    set holds ``k`` reconstructs the exact post-write k-set.  With fewer
    than ``k`` live rows the walk exhausts and the set stays underfull
    (the registry then indexes the subscription as unbounded).
    """
    store = database.store
    members = subscription.members
    missing = subscription.k - len(members)
    if missing <= 0 or store.live_count <= len(members):
        return
    ordered = subscription.ordered
    focal = subscription.focal
    columnar = store if database.vectorized else None
    for row in incremental_nearest(
        database.index,
        database.backend,
        store.rows(),
        focal,
        store=columnar,
        deleted=store.deleted_rows or None,
    ):
        if row in members:
            continue
        x, y = store.coords(row)
        dx = x - focal.x
        dy = y - focal.y
        insort(ordered, (dx * dx + dy * dy, row))
        members.add(row)
        added.append(row)
        missing -= 1
        if missing <= 0:
            break
