"""Tile math for the live-query inverted index.

A :class:`TileGrid` cuts the space into ``resolution x resolution``
equal tiles — the same clamped-cell mapping as
:class:`repro.index.grid.GridIndex`, reimplemented here without the
entry buckets (the inverted index stores *subscriptions* per tile, not
points, so sharing the spatial index's cells would couple two
unrelated lifetimes).

Clamping is what makes the tiling total: a coordinate outside the
bounds lands in the nearest border tile, and because the clamp is
monotonic the covering property below survives it.

**Covering property** (the correctness contract the registry relies
on): for any point ``p`` and any rectangle ``r`` with ``p`` inside
``r``, ``tile_of(p)`` is a member of ``tiles_for_rect(r)``.  The same
holds for circles via their bounding square.  Tiles are therefore a
*superset* filter — a write can never skip a subscription it affects,
only occasionally wake one it does not.
"""

from __future__ import annotations

import math
from typing import FrozenSet, Tuple

from repro.geometry.rectangle import Rect

#: One tile: its ``(column, row)`` cell coordinates.
Tile = Tuple[int, int]


class TileGrid:
    """Fixed-resolution tiling keyed by clamped cell coordinates.

    Parameters
    ----------
    bounds:
        The tiled extent (positive area required).  Points outside are
        clamped into the border tiles, so any data distribution works.
    resolution:
        Tiles per axis; ``resolution**2`` tiles total.
    """

    __slots__ = ("bounds", "resolution")

    def __init__(
        self,
        bounds: Rect = Rect(0.0, 0.0, 1.0, 1.0),
        resolution: int = 64,
    ) -> None:
        if resolution < 1:
            raise ValueError(f"resolution must be >= 1, got {resolution}")
        if bounds.width <= 0.0 or bounds.height <= 0.0:
            raise ValueError("tile grid bounds must have positive area")
        #: the tiled extent
        self.bounds = bounds
        #: tiles per axis
        self.resolution = int(resolution)

    def _axis_cell(self, value: float, low: float, extent: float) -> int:
        cell = int((value - low) / extent * self.resolution)
        return min(max(cell, 0), self.resolution - 1)

    def tile_of(self, x: float, y: float) -> Tile:
        """The tile containing ``(x, y)`` (clamped into the borders)."""
        return (
            self._axis_cell(x, self.bounds.min_x, self.bounds.width),
            self._axis_cell(y, self.bounds.min_y, self.bounds.height),
        )

    def tiles_for_rect(self, rect: Rect) -> FrozenSet[Tile]:
        """Every tile overlapping ``rect`` (clamped; never empty)."""
        min_cx, min_cy = self.tile_of(rect.min_x, rect.min_y)
        max_cx, max_cy = self.tile_of(rect.max_x, rect.max_y)
        return frozenset(
            (cx, cy)
            for cx in range(min_cx, max_cx + 1)
            for cy in range(min_cy, max_cy + 1)
        )

    def tiles_for_circle(
        self, cx: float, cy: float, radius_sq: float
    ) -> FrozenSet[Tile]:
        """Tiles overlapping the circle's bounding square.

        ``radius_sq`` is the *squared* radius (the kNN evaluators keep
        squared distances end to end); it must be finite.  The radius is
        inflated by one part in 10^9 before the square root so that the
        rounding of ``sqrt`` and of the caller's squared-distance sums
        can never shave the bounding square below a true member's
        coordinates — the covering property must hold bit-for-bit.
        """
        if radius_sq < 0.0 or not math.isfinite(radius_sq):
            raise ValueError(
                f"radius_sq must be finite and >= 0, got {radius_sq!r}"
            )
        radius = math.sqrt(radius_sq)
        radius += radius * 1e-9
        return self.tiles_for_rect(
            Rect(cx - radius, cy - radius, cx + radius, cy + radius)
        )
