"""The standing-query registry and its dirty-tile inverted index.

:class:`SubscriptionRegistry` is the server-side heart of live queries:
it holds every registered subscription, maintains an inverted index
from :class:`~repro.live.tiles.TileGrid` tiles to the subscriptions a
write in that tile could affect, and fans each applied write out to
exactly those subscriptions' incremental evaluators
(:mod:`repro.live.delta`).

**Indexing rules.**  A region subscription registers under the tiles
overlapping its rectangle (window) or region MBR — fixed for its
lifetime.  A kNN subscription registers under the tiles overlapping the
circle around its focal point with the current *kth-member radius*:
only a write inside that circle can change the k-set.  The circle
shrinks and grows as the k-set changes, so the subscription is
re-indexed after every delta that moved its kth distance; while the set
holds fewer than ``k`` members (sparse data) any insert anywhere could
join it, so it sits in the *unbounded* bucket that every write wakes.

**Mechanism counters.**  :class:`RegistryStats` counts writes fanned
out, per-subscription evaluations, and notifications produced.  The
pruning claim of the whole design is ``evaluations ≪ writes × active``
— asserted by ``benchmarks/bench_subscriptions.py``, not just implied.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.geometry.point import Point
from repro.live.delta import Delta, evaluate_write
from repro.live.tiles import Tile, TileGrid
from repro.query.spec import AreaQuery, KnnQuery, Query, WindowQuery

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.database import SpatialDatabase
    from repro.core.store import StoreSnapshot


@dataclass
class RegistryStats:
    """Lifetime counters of one registry (the ``subscriptions`` stats)."""

    #: subscriptions ever registered
    registered_total: int = 0
    #: subscriptions unregistered (client request or disconnect)
    unregistered_total: int = 0
    #: writes fanned out through :meth:`SubscriptionRegistry.apply_write`
    writes: int = 0
    #: per-subscription delta evaluations (the pruned work unit)
    evaluations: int = 0
    #: non-empty deltas produced (one notify frame each)
    notifications: int = 0
    #: sum over writes of affected-subscription counts (fanout)
    fanout: int = 0
    #: largest single-write fanout observed
    max_fanout: int = 0

    def as_dict(self) -> Dict[str, int]:
        """A JSON-ready mapping for the ``stats`` frame."""
        return {
            "registered_total": self.registered_total,
            "unregistered_total": self.unregistered_total,
            "writes": self.writes,
            "evaluations": self.evaluations,
            "notifications": self.notifications,
            "fanout": self.fanout,
            "max_fanout": self.max_fanout,
        }


class Subscription:
    """One standing query: its spec, owner, and materialized result.

    Created by :meth:`SubscriptionRegistry.register`; the registry's
    evaluators mutate ``members``/``ordered`` in place as writes land,
    so the object always holds the exact current result.
    """

    __slots__ = (
        "sid",
        "spec",
        "owner",
        "kind",
        "members",
        "ordered",
        "contains",
        "focal",
        "k",
        "tiles",
        "notifications",
    )

    def __init__(
        self,
        sid: int,
        spec: Query,
        owner: object,
        kind: str,
        *,
        contains: Optional[Callable[[float, float], bool]] = None,
        focal: Optional[Point] = None,
        k: int = 0,
    ) -> None:
        #: registry-wide subscription id (stable for the lifetime)
        self.sid = sid
        #: the registered immutable query spec
        self.spec = spec
        #: opaque owner tag (the server passes its connection object)
        self.owner = owner
        #: ``"region"`` or ``"knn"``
        self.kind = kind
        #: current result row ids
        self.members: Set[int] = set()
        #: kNN only: the k-set as a sorted ``(dist_sq, row)`` list
        self.ordered: List[Tuple[float, int]] = []
        #: region only: exact containment test over raw coordinates
        self.contains = contains
        #: kNN only: the focal query point
        self.focal = focal
        #: kNN only: the requested k
        self.k = k
        #: tiles currently registered under (``None`` = unbounded bucket)
        self.tiles: Optional[FrozenSet[Tile]] = None
        #: notify deltas produced for this subscription so far
        self.notifications = 0

    def __repr__(self) -> str:
        return (
            f"Subscription(sid={self.sid}, kind={self.kind!r}, "
            f"members={len(self.members)})"
        )


class SubscriptionRegistry:
    """Registered standing queries plus their tile inverted index.

    Parameters
    ----------
    database:
        The served database; initial results are evaluated through its
        planner and kNN refills walk its Voronoi backend.
    grid:
        The :class:`~repro.live.tiles.TileGrid` keying the inverted
        index (default: 64x64 over the unit square — the library's
        default data space; out-of-bounds data degrades to border-tile
        fanout, never to a missed notification).
    """

    def __init__(
        self,
        database: "SpatialDatabase",
        *,
        grid: Optional[TileGrid] = None,
    ) -> None:
        self._db = database
        #: the tiling that keys the inverted index
        self.grid = grid if grid is not None else TileGrid()
        #: lifetime mechanism counters
        self.stats = RegistryStats()
        self._by_tile: Dict[Tile, Set[Subscription]] = {}
        self._unbounded: Set[Subscription] = set()
        self._subscriptions: Set[Subscription] = set()
        self._next_sid = 0

    @property
    def active(self) -> int:
        """Subscriptions currently registered."""
        return len(self._subscriptions)

    # -- admission ---------------------------------------------------------

    def register(
        self, spec: Query, *, owner: object = None
    ) -> Tuple[Subscription, List[int]]:
        """Admit ``spec`` as a standing query; return it with its result.

        The initial result is one ordinary planner execution (region
        ids ascending, kNN ids in rank order) — the *only* full
        execution the subscription ever costs; every later update is
        incremental.  Raises :class:`ValueError` for specs that cannot
        be maintained incrementally (composites, predicates, limits,
        projections, unbounded kNN).
        """
        kind = _subscribable_kind(spec)
        ids = list(self._db.query(spec).ids())
        self._next_sid += 1
        if kind == "region":
            subscription = Subscription(
                self._next_sid,
                spec,
                owner,
                kind,
                contains=_containment_test(spec),
            )
            subscription.members = set(ids)
        else:
            subscription = Subscription(
                self._next_sid,
                spec,
                owner,
                kind,
                focal=spec.point,
                k=spec.k,
            )
            coords = self._db.store.coords
            focal = spec.point
            for row in ids:
                x, y = coords(row)
                dx = x - focal.x
                dy = y - focal.y
                subscription.ordered.append((dx * dx + dy * dy, row))
            subscription.ordered.sort()
            subscription.members = set(ids)
        self._subscriptions.add(subscription)
        subscription.tiles = self._tiles_for(subscription)
        self._index_add(subscription)
        self.stats.registered_total += 1
        return subscription, ids

    def unregister(self, subscription: Subscription) -> bool:
        """Drop one subscription (idempotent); True when it was active."""
        if subscription not in self._subscriptions:
            return False
        self._subscriptions.discard(subscription)
        self._index_remove(subscription)
        self.stats.unregistered_total += 1
        return True

    def drop_owner(self, owner: object) -> int:
        """Unregister every subscription of ``owner`` (disconnects)."""
        stale = [
            subscription
            for subscription in self._subscriptions
            if subscription.owner is owner
        ]
        for subscription in stale:
            self.unregister(subscription)
        return len(stale)

    # -- the write fan-out -------------------------------------------------

    def apply_write(
        self,
        op: str,
        rows: Sequence[int],
        coords: Sequence[Tuple[float, float]],
        *,
        pre: Optional["StoreSnapshot"] = None,
    ) -> List[Tuple[Subscription, Delta]]:
        """Fan one *applied* write out; return per-subscription deltas.

        Called by the server immediately after the mutation lands (the
        subscriptions' member sets are the materialized pre-write
        results, so state plus write description determines the exact
        delta; ``pre`` — the pre-write snapshot — guards the delete
        path, see :func:`~repro.live.delta.evaluate_write`).  Only
        subscriptions registered under a written tile — plus the
        unbounded bucket — are evaluated; everything else is untouched,
        which is the entire point of the inverted index.  Subscriptions
        whose kth radius moved are re-indexed in passing.
        """
        self.stats.writes += 1
        if not self._subscriptions:
            return []
        affected: Set[Subscription] = set(self._unbounded)
        tile_of = self.grid.tile_of
        for tile in {tile_of(x, y) for x, y in coords}:
            bucket = self._by_tile.get(tile)
            if bucket:
                affected |= bucket
        self.stats.fanout += len(affected)
        if len(affected) > self.stats.max_fanout:
            self.stats.max_fanout = len(affected)
        events: List[Tuple[Subscription, Delta]] = []
        for subscription in sorted(affected, key=lambda sub: sub.sid):
            self.stats.evaluations += 1
            delta = evaluate_write(
                subscription, op, rows, coords, self._db, pre
            )
            if subscription.kind == "knn" and delta:
                self._reindex(subscription)
            if delta:
                subscription.notifications += 1
                self.stats.notifications += 1
                events.append((subscription, delta))
        return events

    # -- tile index plumbing -----------------------------------------------

    def _tiles_for(
        self, subscription: Subscription
    ) -> Optional[FrozenSet[Tile]]:
        """The tile set a subscription indexes under now (None=unbounded)."""
        if subscription.kind == "region":
            spec = subscription.spec
            rect = spec.rect if isinstance(spec, WindowQuery) else spec.region.mbr
            return self.grid.tiles_for_rect(rect)
        if len(subscription.ordered) < subscription.k:
            return None  # underfull k-set: any insert anywhere may join
        focal = subscription.focal
        return self.grid.tiles_for_circle(
            focal.x, focal.y, subscription.ordered[-1][0]
        )

    def _index_add(self, subscription: Subscription) -> None:
        if subscription.tiles is None:
            self._unbounded.add(subscription)
            return
        for tile in subscription.tiles:
            self._by_tile.setdefault(tile, set()).add(subscription)

    def _index_remove(self, subscription: Subscription) -> None:
        if subscription.tiles is None:
            self._unbounded.discard(subscription)
            return
        for tile in subscription.tiles:
            bucket = self._by_tile.get(tile)
            if bucket is not None:
                bucket.discard(subscription)
                if not bucket:
                    del self._by_tile[tile]

    def _reindex(self, subscription: Subscription) -> None:
        """Refresh a kNN subscription's tiles after its radius moved."""
        tiles = self._tiles_for(subscription)
        if tiles != subscription.tiles:
            self._index_remove(subscription)
            subscription.tiles = tiles
            self._index_add(subscription)


def _subscribable_kind(spec: Query) -> str:
    """``"region"``/``"knn"`` for a maintainable spec; raise otherwise.

    Standing queries must be incrementally evaluable from write deltas:
    leaf region kinds (:class:`~repro.query.spec.AreaQuery`,
    :class:`~repro.query.spec.WindowQuery`) and bounded
    :class:`~repro.query.spec.KnnQuery`.  Composites, predicates,
    limits, non-id projections, and unbounded kNN are rejected with
    :class:`ValueError` (the server answers ``bad-spec``).
    """
    if spec.predicate is not None:
        raise ValueError("subscriptions cannot carry a predicate")
    if spec.limit is not None:
        raise ValueError("subscriptions cannot carry a limit")
    if spec.select != "ids":
        raise ValueError("subscriptions deliver row ids; drop the projection")
    if isinstance(spec, (AreaQuery, WindowQuery)):
        return "region"
    if isinstance(spec, KnnQuery):
        if spec.k is None:
            raise ValueError(
                "unbounded kNN cannot be a subscription; give it a k"
            )
        return "knn"
    raise ValueError(
        f"{type(spec).__name__} is not subscribable; standing queries are "
        "area, window, or bounded knn specs"
    )


def _containment_test(spec: Query) -> Callable[[float, float], bool]:
    """The exact containment predicate of a region spec, over raw x/y.

    The same geometric tests the query executors refine with, so
    incremental membership can never drift from a re-execution.
    """
    if isinstance(spec, WindowQuery):
        rect = spec.rect
        contains_point = rect.contains_point

        def window_contains(x: float, y: float) -> bool:
            """Closed-bounds window containment."""
            return contains_point(Point(x, y))

        return window_contains
    region = spec.region
    region_contains = region.contains_point

    def area_contains(x: float, y: float) -> bool:
        """Exact region containment (boundary inclusive)."""
        return region_contains(Point(x, y))

    return area_contains
