"""Live queries: standing subscriptions with incremental delta push.

The continuous-spatial-query layer over the mutable serving stack
(SINA/SCUBA-style incremental evaluation): a client *registers* a query
once and the server pushes ``added``/``removed`` row-id deltas as writes
land, instead of the client re-polling the full result.

``repro.live.tiles``
    :class:`TileGrid` — the fixed-resolution tiling whose cells key the
    inverted index.  Same clamped-cell math as the grid spatial index,
    so points outside the bounds still land in border tiles.
``repro.live.registry``
    :class:`SubscriptionRegistry` — standing specs (region queries and
    kNN-of-focal-point), a dirty-tile inverted index mapping tiles to
    the subscriptions whose result a write there could change, and the
    per-write fan-out that turns one mutation into per-subscription
    deltas.  :class:`RegistryStats` carries the mechanism counters
    (evaluations ≪ writes × subscriptions is the pruning proof).
``repro.live.delta``
    The incremental evaluators: region membership updates from the
    write's coordinates alone; kNN k-sets repaired in place (an insert
    inside the kth radius displaces the kth member, a deleted member
    triggers one :func:`~repro.core.knn_query.incremental_nearest`
    refill) — never a full re-execution.

The server wires this into the write path (see
:mod:`repro.server.app`); ``docs/SERVER.md`` documents the
``subscribe``/``unsubscribe``/``notify`` wire frames and the delivery
semantics.
"""

from repro.live.delta import Delta
from repro.live.registry import (
    RegistryStats,
    Subscription,
    SubscriptionRegistry,
)
from repro.live.tiles import TileGrid

__all__ = [
    "Delta",
    "RegistryStats",
    "Subscription",
    "SubscriptionRegistry",
    "TileGrid",
]
