"""repro — Voronoi-diagram-based area queries.

A full reproduction of *"Area Queries Based on Voronoi Diagrams"* (Yang Li,
ICDE 2020): a spatial database answering polygon area queries either the
traditional way (R-tree window filter + point-in-polygon refine) or with the
paper's contribution, an incremental candidate expansion over Voronoi
neighbours that touches only the points inside the polygon plus a thin
boundary shell.

Queries are declarative spec objects; the database is one entry point::

    import random
    from repro import AreaQuery, KnnQuery, SpatialDatabase, random_query_polygon
    from repro.geometry import Point

    rng = random.Random(0)
    db = SpatialDatabase.from_points(
        Point(rng.random(), rng.random()) for _ in range(100_000)
    ).prepare()
    area = random_query_polygon(query_size=0.01, rng=rng)

    result = db.query(AreaQuery(area))            # planner-routed ("auto")
    voronoi = db.query(AreaQuery(area, method="voronoi"))
    baseline = db.query(AreaQuery(area, method="traditional"))
    assert voronoi.ids() == baseline.ids()
    print(f"candidates: {voronoi.stats.candidates} (voronoi) "
          f"vs {baseline.stats.candidates} (traditional)")
    print(result.explain().render())              # the planner's decision
    nearest = db.query(KnnQuery((0.5, 0.5), 8)).points()

Packages
--------
``repro.geometry``
    From-scratch planar geometry kernel (points, robust predicates,
    segments, rectangles, simple polygons, random polygon workloads).
``repro.index``
    Spatial indexes: R-tree (the paper's), R*-tree, k-d tree, PR quadtree,
    uniform grid, brute force — one common interface.
``repro.delaunay``
    Bowyer–Watson Delaunay triangulation, the Voronoi dual (cells +
    neighbour graph), and pluggable neighbour backends.
``repro.core``
    The two area-query algorithms, the :class:`SpatialDatabase` facade, and
    per-query statistics.
``repro.query``
    The declarative query API: immutable spec objects
    (:class:`AreaQuery`, :class:`WindowQuery`, :class:`KnnQuery`,
    :class:`NearestQuery`), the composite algebra over them
    (:class:`UnionQuery`, :class:`IntersectionQuery`,
    :class:`DifferenceQuery`) with lazy set-semantics merging, streaming
    consumption (``KnnQuery(k=None)``, ``result.first(n)``), the lazy
    result handle, and exact JSON (de)serialisation of specs.
``repro.engine``
    The serving layer: heterogeneous batch execution with cross-query
    sharing, a cost-based planner routing every query kind
    (``method="auto"``), and a spec-keyed LRU result cache.
``repro.server``
    The network surface: an asyncio NDJSON query server with
    cross-client batch coalescing and chunked result streaming, plus a
    small blocking client (``python -m repro serve`` /
    ``repro query --remote``).
``repro.workloads``
    Seeded dataset/query generators and the experiment harness regenerating
    every table and figure of the paper.
"""

from repro.core import (
    EmptyDatabaseError,
    InvalidQueryAreaError,
    PointStore,
    QueryResult,
    QueryStats,
    ReproError,
    SpatialDatabase,
    traditional_area_query,
    voronoi_area_query,
)
from repro.geometry import (
    Point,
    Polygon,
    Rect,
    Segment,
    random_query_polygon,
    random_simple_polygon,
    random_star_polygon,
)
from repro.query import (
    AreaQuery,
    CompositeQuery,
    DifferenceQuery,
    IntersectionQuery,
    KnnQuery,
    NearestQuery,
    Query,
    UnionQuery,
    WindowQuery,
    dump_specs,
    load_specs,
)

__version__ = "1.1.0"

__all__ = [
    "SpatialDatabase",
    "PointStore",
    "Query",
    "AreaQuery",
    "WindowQuery",
    "KnnQuery",
    "NearestQuery",
    "CompositeQuery",
    "UnionQuery",
    "IntersectionQuery",
    "DifferenceQuery",
    "QueryResult",
    "QueryStats",
    "dump_specs",
    "load_specs",
    "traditional_area_query",
    "voronoi_area_query",
    "ReproError",
    "EmptyDatabaseError",
    "InvalidQueryAreaError",
    "Point",
    "Polygon",
    "Rect",
    "Segment",
    "random_query_polygon",
    "random_simple_polygon",
    "random_star_polygon",
    "__version__",
]
