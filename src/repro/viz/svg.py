"""A minimal SVG document builder (standard library only).

Just enough SVG for the figure renderers: a canvas with a world-to-pixel
transform, primitive shapes, and text.  Output is a self-contained
``<svg>`` document string (or file).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple
from xml.sax.saxutils import escape, quoteattr

from repro.geometry.point import Point
from repro.geometry.rectangle import Rect


class SvgCanvas:
    """An SVG drawing surface mapping world coordinates to pixels.

    Parameters
    ----------
    world:
        The world-coordinate rectangle shown on the canvas.
    width:
        Pixel width; height follows from the world aspect ratio.
    padding:
        Pixel padding around the drawn world area.

    The y axis is flipped (world y grows upward, SVG y grows downward), so
    figures look like the paper's plots, not mirror images.
    """

    def __init__(
        self,
        world: Rect,
        width: int = 640,
        padding: int = 12,
    ) -> None:
        if world.width <= 0 or world.height <= 0:
            raise ValueError("world rectangle must have positive area")
        if width <= 2 * padding:
            raise ValueError("width must exceed twice the padding")
        self.world = world
        self.width = width
        self.padding = padding
        inner = width - 2 * padding
        self._scale = inner / world.width
        self.height = int(round(world.height * self._scale)) + 2 * padding
        self._elements: List[str] = []

    # -- coordinate transform ---------------------------------------------

    def to_pixel(self, p: Point) -> Tuple[float, float]:
        """World point -> pixel coordinates (y flipped)."""
        x = self.padding + (p.x - self.world.min_x) * self._scale
        y = (
            self.height
            - self.padding
            - (p.y - self.world.min_y) * self._scale
        )
        return (round(x, 2), round(y, 2))

    # -- primitives ----------------------------------------------------------

    def circle(
        self,
        center: Point,
        radius_px: float,
        *,
        fill: str = "black",
        stroke: str = "none",
        stroke_width: float = 1.0,
        opacity: float = 1.0,
    ) -> None:
        """A dot of fixed pixel radius at a world position."""
        cx, cy = self.to_pixel(center)
        self._elements.append(
            f'<circle cx="{cx}" cy="{cy}" r="{radius_px}" '
            f'fill={quoteattr(fill)} stroke={quoteattr(stroke)} '
            f'stroke-width="{stroke_width}" opacity="{opacity}"/>'
        )

    def world_circle(
        self,
        center: Point,
        radius_world: float,
        *,
        fill: str = "none",
        stroke: str = "black",
        stroke_width: float = 1.0,
        opacity: float = 1.0,
    ) -> None:
        """A circle whose radius is in world units (e.g. a Circle region)."""
        cx, cy = self.to_pixel(center)
        self._elements.append(
            f'<circle cx="{cx}" cy="{cy}" '
            f'r="{round(radius_world * self._scale, 2)}" '
            f'fill={quoteattr(fill)} stroke={quoteattr(stroke)} '
            f'stroke-width="{stroke_width}" opacity="{opacity}"/>'
        )

    def polygon(
        self,
        vertices: Sequence[Point],
        *,
        fill: str = "none",
        stroke: str = "black",
        stroke_width: float = 1.5,
        opacity: float = 1.0,
    ) -> None:
        """A closed polygon."""
        pixel_pairs = " ".join(
            f"{x},{y}" for x, y in (self.to_pixel(v) for v in vertices)
        )
        self._elements.append(
            f'<polygon points="{pixel_pairs}" fill={quoteattr(fill)} '
            f'stroke={quoteattr(stroke)} stroke-width="{stroke_width}" '
            f'opacity="{opacity}"/>'
        )

    def line(
        self,
        start: Point,
        end: Point,
        *,
        stroke: str = "black",
        stroke_width: float = 1.0,
        opacity: float = 1.0,
    ) -> None:
        """A straight segment."""
        x1, y1 = self.to_pixel(start)
        x2, y2 = self.to_pixel(end)
        self._elements.append(
            f'<line x1="{x1}" y1="{y1}" x2="{x2}" y2="{y2}" '
            f'stroke={quoteattr(stroke)} stroke-width="{stroke_width}" '
            f'opacity="{opacity}"/>'
        )

    def polyline(
        self,
        vertices: Sequence[Point],
        *,
        stroke: str = "black",
        stroke_width: float = 1.0,
        opacity: float = 1.0,
    ) -> None:
        """An open polyline."""
        pixel_pairs = " ".join(
            f"{x},{y}" for x, y in (self.to_pixel(v) for v in vertices)
        )
        self._elements.append(
            f'<polyline points="{pixel_pairs}" fill="none" '
            f'stroke={quoteattr(stroke)} stroke-width="{stroke_width}" '
            f'opacity="{opacity}"/>'
        )

    def text(
        self,
        anchor: Point,
        content: str,
        *,
        size_px: int = 14,
        fill: str = "black",
        anchor_mode: str = "start",
    ) -> None:
        """A text label anchored at a world position."""
        x, y = self.to_pixel(anchor)
        self._elements.append(
            f'<text x="{x}" y="{y}" font-size="{size_px}" '
            f'font-family="sans-serif" fill={quoteattr(fill)} '
            f'text-anchor={quoteattr(anchor_mode)}>'
            f"{escape(content)}</text>"
        )

    # -- output -----------------------------------------------------------------

    def to_svg(self) -> str:
        """The complete SVG document."""
        body = "\n  ".join(self._elements)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self.width}" height="{self.height}" '
            f'viewBox="0 0 {self.width} {self.height}">\n'
            f'  <rect width="{self.width}" height="{self.height}" '
            f'fill="white"/>\n'
            f"  {body}\n"
            f"</svg>\n"
        )

    def save(self, path) -> None:
        """Write the document to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_svg())


def side_by_side(canvases: Iterable[SvgCanvas], gap: int = 16) -> str:
    """Compose canvases horizontally into one SVG document (Fig. 2 layout)."""
    canvases = list(canvases)
    if not canvases:
        raise ValueError("need at least one canvas")
    total_width = sum(c.width for c in canvases) + gap * (len(canvases) - 1)
    total_height = max(c.height for c in canvases)
    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{total_width}" '
        f'height="{total_height}" viewBox="0 0 {total_width} '
        f'{total_height}">'
    ]
    offset = 0
    for canvas in canvases:
        inner = canvas.to_svg()
        # Strip the outer <svg> wrapper and re-nest with an x offset.
        body = inner.split(">", 1)[1].rsplit("</svg>", 1)[0]
        parts.append(
            f'<svg x="{offset}" y="0" width="{canvas.width}" '
            f'height="{canvas.height}">{body}</svg>'
        )
        offset += canvas.width + gap
    parts.append("</svg>")
    return "\n".join(parts)
