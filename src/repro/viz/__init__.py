"""Dependency-free SVG rendering of spatial data.

GIS results want to be *seen*.  This package writes standalone SVG files
with nothing beyond the standard library:

* :mod:`repro.viz.svg` — a minimal SVG document builder (circles, polygons,
  polylines, text, groups).
* :mod:`repro.viz.figures` — renderers for the library's objects: point
  sets, query polygons, candidate/result classifications (the paper's
  Fig. 2), and Voronoi/Delaunay diagrams (the paper's Fig. 3).
"""

from repro.viz.svg import SvgCanvas
from repro.viz.figures import (
    render_candidate_comparison,
    render_query_result,
    render_voronoi_delaunay,
)

__all__ = [
    "SvgCanvas",
    "render_query_result",
    "render_candidate_comparison",
    "render_voronoi_delaunay",
]
