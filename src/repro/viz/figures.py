"""Figure renderers for the library's objects.

Three renderers, each returning a complete SVG document string:

* :func:`render_query_result` — one database + one query region, results
  highlighted.
* :func:`render_candidate_comparison` — the paper's **Fig. 2**: the same
  query executed with the traditional and the Voronoi method side by side,
  candidates (green) vs results (black), showing the MBR-shaped candidate
  cloud of the baseline against the thin shell of the Voronoi method.
* :func:`render_voronoi_delaunay` — the paper's **Fig. 3**: the Voronoi
  diagram and the Delaunay triangulation of a point set side by side.
"""

from __future__ import annotations

from typing import Optional

from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.rectangle import Rect
from repro.core.database import SpatialDatabase
from repro.core.traditional_query import traditional_area_query
from repro.core.voronoi_query import voronoi_area_query
from repro.query.spec import AreaQuery
from repro.viz.svg import SvgCanvas, side_by_side

_RESULT_COLOR = "black"
_CANDIDATE_COLOR = "#2ca02c"  # green, as in the paper's Fig. 2
_BACKGROUND_COLOR = "#c8c8c8"
_AREA_COLOR = "black"
_MBR_COLOR = "#d62728"


def _world_of(db: SpatialDatabase, margin: float = 0.02) -> Rect:
    bounds = db.index.bounds
    if bounds is None:
        raise ValueError("cannot render an empty database")
    pad = margin * max(bounds.width, bounds.height, 1e-9)
    return bounds.expanded(pad)


def render_query_result(
    db: SpatialDatabase,
    area: Polygon,
    *,
    method: str = "voronoi",
    width: int = 640,
    dot_px: float = 1.6,
) -> str:
    """One query, results highlighted over the full point cloud."""
    canvas = SvgCanvas(_world_of(db), width=width)
    result = db.query(AreaQuery(area, method=method))
    result_set = set(result.ids())
    for row, p in enumerate(db.points):
        canvas.circle(
            p,
            dot_px,
            fill=_RESULT_COLOR if row in result_set else _BACKGROUND_COLOR,
        )
    canvas.polygon(
        list(area.vertices), stroke=_AREA_COLOR, stroke_width=2.0
    )
    canvas.text(
        Point(canvas.world.min_x, canvas.world.max_y),
        f"{method}: {len(result)} results",
    )
    return canvas.to_svg()


def _candidate_panel(
    db: SpatialDatabase,
    area: Polygon,
    method: str,
    width: int,
    dot_px: float,
    show_mbr: bool,
) -> SvgCanvas:
    canvas = SvgCanvas(_world_of(db), width=width)

    validated = []

    def tracking_contains(region, p):
        validated.append(p)
        return region.contains_point(p)

    if method == "traditional":
        result = traditional_area_query(
            db.index, area, contains=tracking_contains
        )
    else:
        result = voronoi_area_query(
            db.index, db.backend, db.points, area, contains=tracking_contains
        )
    result_points = {db.point(row) for row in result.ids}
    candidate_points = set(validated) - result_points

    for p in db.points:
        if p in result_points or p in candidate_points:
            continue
        canvas.circle(p, dot_px, fill=_BACKGROUND_COLOR)
    for p in candidate_points:
        canvas.circle(p, dot_px * 1.6, fill=_CANDIDATE_COLOR)
    for p in result_points:
        canvas.circle(p, dot_px * 1.6, fill=_RESULT_COLOR)

    if show_mbr and method == "traditional":
        canvas.polygon(
            list(area.mbr.corners()),
            stroke=_MBR_COLOR,
            stroke_width=1.0,
            opacity=0.8,
        )
    canvas.polygon(list(area.vertices), stroke=_AREA_COLOR, stroke_width=2.0)
    canvas.text(
        Point(canvas.world.min_x, canvas.world.max_y),
        f"{method}: {result.stats.candidates} candidates, "
        f"{result.stats.result_size} results",
    )
    return canvas


def render_candidate_comparison(
    db: SpatialDatabase,
    area: Polygon,
    *,
    width: int = 480,
    dot_px: float = 1.4,
    show_mbr: bool = True,
) -> str:
    """The paper's Fig. 2: candidate sets of both methods, side by side.

    Left panel: traditional (candidates fill the MBR).  Right panel:
    Voronoi (candidates hug the polygon boundary).  Black dots are results,
    green dots are redundant candidates, grey dots were never touched.
    """
    left = _candidate_panel(db, area, "traditional", width, dot_px, show_mbr)
    right = _candidate_panel(db, area, "voronoi", width, dot_px, show_mbr)
    return side_by_side([left, right])


def render_voronoi_delaunay(
    points,
    *,
    clip: Optional[Rect] = None,
    width: int = 480,
    dot_px: float = 2.5,
) -> str:
    """The paper's Fig. 3: Voronoi diagram (a) and Delaunay dual (b)."""
    from repro.delaunay.triangulation import DelaunayTriangulation
    from repro.delaunay.voronoi import VoronoiDiagram

    points = list(points)
    triangulation = DelaunayTriangulation(points)
    clip_box = (
        clip
        if clip is not None
        else Rect.from_points(points).expanded(
            0.1 * max(Rect.from_points(points).width, 1e-9)
        )
    )
    diagram = VoronoiDiagram(points, clip=clip_box, triangulation=triangulation)

    voronoi_canvas = SvgCanvas(clip_box, width=width)
    for cell in diagram.cells():
        if cell.polygon is not None:
            voronoi_canvas.polygon(
                list(cell.polygon.vertices),
                stroke="#1f77b4",
                stroke_width=1.0,
            )
    for p in points:
        voronoi_canvas.circle(p, dot_px, fill="black")
    voronoi_canvas.text(
        Point(clip_box.min_x, clip_box.max_y), "a) Voronoi diagram"
    )

    delaunay_canvas = SvgCanvas(clip_box, width=width)
    for i, j in triangulation.edges():
        delaunay_canvas.line(
            points[i], points[j], stroke="#ff7f0e", stroke_width=1.0
        )
    for p in points:
        delaunay_canvas.circle(p, dot_px, fill="black")
    delaunay_canvas.text(
        Point(clip_box.min_x, clip_box.max_y), "b) Delaunay triangulation"
    )
    return side_by_side([voronoi_canvas, delaunay_canvas])
