"""Immutable 2-D points.

The *edges* of the library speak :class:`Point`.  It is deliberately a tiny
frozen dataclass rather than a numpy array: where algorithms touch points one
at a time (hash them, compare them, compute a couple of distances), a plain
Python object with ``__slots__`` is both faster and clearer.  Bulk storage —
the database's point table — is columnar: :class:`repro.core.store.PointStore`
keeps contiguous float64 ``xs``/``ys`` arrays, the hot paths (refinement
kernels in :mod:`repro.geometry.kernels`, bulk index probes, the batch
engine's shared frontiers) operate on those arrays by row id, and ``Point``
objects are materialized only at the conversion boundary
(:meth:`repro.core.store.PointStore.view` /
:attr:`repro.core.database.SpatialDatabase.points`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence, Tuple


@dataclass(frozen=True, slots=True)
class Point:
    """A point in the Euclidean plane.

    Supports vector arithmetic (``+``, ``-``, scalar ``*`` and ``/``),
    iteration/unpacking (``x, y = p``) and is hashable, so it can be used in
    sets and as dictionary keys — Algorithm 1 keeps its *visited* set keyed
    by point identity.
    """

    x: float
    y: float

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y

    def __add__(self, other: "Point") -> "Point":
        return Point(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Point") -> "Point":
        return Point(self.x - other.x, self.y - other.y)

    def __mul__(self, scalar: float) -> "Point":
        return Point(self.x * scalar, self.y * scalar)

    __rmul__ = __mul__

    def __truediv__(self, scalar: float) -> "Point":
        return Point(self.x / scalar, self.y / scalar)

    def __neg__(self) -> "Point":
        return Point(-self.x, -self.y)

    def dot(self, other: "Point") -> float:
        """Dot product, treating both points as vectors from the origin."""
        return self.x * other.x + self.y * other.y

    def cross(self, other: "Point") -> float:
        """Z-component of the 3-D cross product of the two vectors."""
        return self.x * other.y - self.y * other.x

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def squared_distance_to(self, other: "Point") -> float:
        """Squared Euclidean distance (avoids the sqrt in hot loops)."""
        dx = self.x - other.x
        dy = self.y - other.y
        return dx * dx + dy * dy

    def norm(self) -> float:
        """Euclidean length of the vector from the origin to this point."""
        return math.hypot(self.x, self.y)

    def squared_norm(self) -> float:
        """Squared Euclidean length."""
        return self.x * self.x + self.y * self.y

    def midpoint(self, other: "Point") -> "Point":
        """The point halfway between this point and ``other``."""
        return Point((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)

    def rotated(self, angle: float, about: "Point" | None = None) -> "Point":
        """Return this point rotated by ``angle`` radians around ``about``.

        ``about`` defaults to the origin.
        """
        cx, cy = (about.x, about.y) if about is not None else (0.0, 0.0)
        cos_a = math.cos(angle)
        sin_a = math.sin(angle)
        dx = self.x - cx
        dy = self.y - cy
        return Point(cx + dx * cos_a - dy * sin_a, cy + dx * sin_a + dy * cos_a)

    def as_tuple(self) -> Tuple[float, float]:
        """Return ``(x, y)``."""
        return (self.x, self.y)

    @staticmethod
    def from_sequence(xy: Sequence[float]) -> "Point":
        """Build a :class:`Point` from any two-element sequence."""
        if len(xy) != 2:
            raise ValueError(f"expected a 2-element sequence, got {len(xy)}")
        return Point(float(xy[0]), float(xy[1]))


def centroid(points: Iterable[Point]) -> Point:
    """Arithmetic mean of a non-empty collection of points."""
    total_x = 0.0
    total_y = 0.0
    count = 0
    for p in points:
        total_x += p.x
        total_y += p.y
        count += 1
    if count == 0:
        raise ValueError("centroid of an empty point collection is undefined")
    return Point(total_x / count, total_y / count)


def collinear(a: Point, b: Point, c: Point, tolerance: float = 0.0) -> bool:
    """True if the three points lie on a common line.

    With the default zero tolerance this is an exact floating-point test of
    the doubled signed triangle area; pass a small positive ``tolerance`` to
    treat nearly-degenerate triples as collinear.
    """
    area2 = (b - a).cross(c - a)
    return abs(area2) <= tolerance
