"""Planar geometry kernel for the area-query reproduction.

This package is a from-scratch replacement for the geometry engine the
paper's implementation relied on (a shapely-style library).  It provides
exactly the primitives the two area-query algorithms need:

* :class:`~repro.geometry.point.Point` — immutable 2-D points with vector
  arithmetic.
* Robust orientation and in-circle predicates
  (:mod:`repro.geometry.predicates`) with an exact-arithmetic fallback, used
  by the Delaunay substrate.
* :class:`~repro.geometry.segment.Segment` — segment/segment and
  segment/polygon intersection tests, used by Algorithm 1's boundary
  expansion rule.
* :class:`~repro.geometry.rectangle.Rect` — axis-aligned boxes (MBR algebra)
  used by every spatial index.
* :class:`~repro.geometry.polygon.Polygon` — simple (possibly concave)
  polygons with exact point-containment, the refinement test of both query
  methods.
* Random simple-polygon generation (:mod:`repro.geometry.random_shapes`)
  reproducing the paper's query workload ("a randomly generated polygon of
  ten points").
"""

from repro.geometry.point import Point
from repro.geometry.predicates import (
    Orientation,
    incircle,
    orientation,
    orientation_value,
)
from repro.geometry.circle import Circle
from repro.geometry.rectangle import Rect
from repro.geometry.region import QueryRegion, interior_seed_position
from repro.geometry.segment import Segment
from repro.geometry.polygon import Polygon
from repro.geometry.random_shapes import (
    random_query_polygon,
    random_simple_polygon,
    random_star_polygon,
    scale_polygon_to_query_size,
)

__all__ = [
    "Point",
    "Orientation",
    "orientation",
    "orientation_value",
    "incircle",
    "Rect",
    "Circle",
    "QueryRegion",
    "interior_seed_position",
    "Segment",
    "Polygon",
    "random_query_polygon",
    "random_simple_polygon",
    "random_star_polygon",
    "scale_polygon_to_query_size",
]
