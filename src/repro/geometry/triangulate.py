"""Ear-clipping triangulation of simple polygons.

Two consumers inside the library:

* :func:`repro.core.voronoi_query.interior_position` — the paper's
  "arbitrary position in A" must be found for *any* simple polygon,
  including shapes where the centroid and all diagonal midpoints fall
  outside; any triangle of a triangulation supplies an interior point
  directly.
* :meth:`sample_interior` — uniform random points inside a polygon
  (area-weighted triangle choice + uniform barycentric sampling), used by
  workload generators and available to applications.

The clipping loop is the classical O(n^2) ear removal with robust
orientation tests — query polygons have tens of vertices, so simplicity
beats an O(n log n) monotone decomposition here.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.geometry.point import Point
from repro.geometry.predicates import Orientation, orientation

Triangle = Tuple[Point, Point, Point]


def triangulate_polygon(vertices: Sequence[Point]) -> List[Triangle]:
    """Triangulate a simple polygon given as a CCW vertex ring.

    Returns ``len(vertices) - 2`` triangles covering the polygon exactly.
    Collinear (zero-area) ears are clipped away without emitting a
    triangle.  Raises :class:`ValueError` if no ear can be found, which for
    a simple input ring can only mean the ring is degenerate (zero area).
    """
    ring: List[Point] = list(vertices)
    if len(ring) < 3:
        raise ValueError(f"need at least 3 vertices, got {len(ring)}")

    triangles: List[Triangle] = []
    guard = 0
    while len(ring) > 3:
        guard += 1
        if guard > 2 * len(vertices) * len(vertices):
            raise ValueError(
                "ear clipping failed to converge; is the polygon simple?"
            )
        ear_index = _find_ear(ring)
        if ear_index is None:
            raise ValueError(
                "no ear found; the polygon is degenerate or not simple"
            )
        previous = ring[ear_index - 1]
        tip = ring[ear_index]
        following = ring[(ear_index + 1) % len(ring)]
        if (
            orientation(previous, tip, following)
            is Orientation.COUNTERCLOCKWISE
        ):
            triangles.append((previous, tip, following))
        # Collinear ears are dropped silently (zero area).
        del ring[ear_index]
    if orientation(*ring) is Orientation.COUNTERCLOCKWISE:
        triangles.append((ring[0], ring[1], ring[2]))
    return triangles


def _find_ear(ring: List[Point]) -> Optional[int]:
    """Index of a clippable ear tip in the CCW ring."""
    n = len(ring)
    for i in range(n):
        previous = ring[i - 1]
        tip = ring[i]
        following = ring[(i + 1) % n]
        turn = orientation(previous, tip, following)
        if turn is Orientation.CLOCKWISE:
            continue  # reflex vertex: not an ear
        if turn is Orientation.COLLINEAR:
            return i  # degenerate ear: clip it away, emits nothing
        # Convex tip: an ear iff no other vertex lies inside the candidate
        # triangle (boundary counts as inside to stay safe with touching
        # vertices).
        if not any(
            _point_in_triangle(ring[j], previous, tip, following)
            for j in range(n)
            if ring[j] not in (previous, tip, following)
        ):
            return i
    return None


def _point_in_triangle(p: Point, a: Point, b: Point, c: Point) -> bool:
    """Closed-triangle membership for a CCW triangle."""
    return (
        orientation(a, b, p) is not Orientation.CLOCKWISE
        and orientation(b, c, p) is not Orientation.CLOCKWISE
        and orientation(c, a, p) is not Orientation.CLOCKWISE
    )


def triangle_area(triangle: Triangle) -> float:
    """Area of one triangle."""
    a, b, c = triangle
    return abs((b - a).cross(c - a)) / 2.0


def triangle_interior_point(triangle: Triangle) -> Point:
    """The centroid of a triangle — always strictly interior."""
    a, b, c = triangle
    return Point((a.x + b.x + c.x) / 3.0, (a.y + b.y + c.y) / 3.0)


def sample_point_in_triangle(
    triangle: Triangle, rng: random.Random
) -> Point:
    """Uniform random point inside a triangle (barycentric reflection)."""
    a, b, c = triangle
    u = rng.random()
    v = rng.random()
    if u + v > 1.0:
        u, v = 1.0 - u, 1.0 - v
    return Point(
        a.x + u * (b.x - a.x) + v * (c.x - a.x),
        a.y + u * (b.y - a.y) + v * (c.y - a.y),
    )


def sample_interior(
    vertices: Sequence[Point],
    count: int,
    rng: Optional[random.Random] = None,
) -> List[Point]:
    """``count`` points uniform over the polygon's interior.

    Triangulates once, then draws triangles with probability proportional
    to area and samples uniformly within each.
    """
    rng = rng if rng is not None else random.Random()
    triangles = [
        t for t in triangulate_polygon(vertices) if triangle_area(t) > 0.0
    ]
    if not triangles:
        raise ValueError("cannot sample a zero-area polygon")
    weights = [triangle_area(t) for t in triangles]
    chosen = rng.choices(triangles, weights=weights, k=count)
    return [sample_point_in_triangle(t, rng) for t in chosen]
