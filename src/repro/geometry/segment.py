"""Line segments and intersection tests.

Algorithm 1's expansion rule for external points is "enqueue the neighbour
``pn`` iff the segment ``p -> pn`` intersects the query area"; the polygon
containment and boundary tests in :mod:`repro.geometry.polygon` are built on
the segment/segment intersection implemented here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.geometry.point import Point
from repro.geometry.predicates import Orientation, orientation, orientation_sign


@dataclass(frozen=True, slots=True)
class Segment:
    """A closed line segment between two endpoints."""

    start: Point
    end: Point

    @property
    def length(self) -> float:
        """Euclidean length of the segment."""
        return self.start.distance_to(self.end)

    @property
    def midpoint(self) -> Point:
        """The point halfway along the segment."""
        return self.start.midpoint(self.end)

    def reversed(self) -> "Segment":
        """The same segment travelled in the opposite direction."""
        return Segment(self.end, self.start)

    def contains_point(self, p: Point) -> bool:
        """True if ``p`` lies on the (closed) segment.

        Uses the robust orientation predicate for the collinearity part, so
        points exactly on the supporting line are classified correctly.
        """
        if orientation(self.start, self.end, p) is not Orientation.COLLINEAR:
            return False
        return _within_bounds(self.start, self.end, p)

    def intersects(self, other: "Segment") -> bool:
        """True if the two closed segments share at least one point.

        Handles all degenerate configurations: shared endpoints, collinear
        overlap, and a segment endpoint lying in the interior of the other
        segment all count as intersections (the paper's boundary-expansion
        rule needs the closed-set semantics).
        """
        return segments_intersect(self.start, self.end, other.start, other.end)

    def intersection_point(self, other: "Segment") -> Optional[Point]:
        """A single intersection point, if the segments properly cross.

        Returns ``None`` when the segments do not intersect *or* when they
        overlap collinearly in more than one point (there is then no unique
        answer).  Shared endpoints are returned.

        Existence is decided by the **exact** intersection predicate (so a
        returned point is never a float near-miss); the returned
        coordinates themselves carry ordinary floating-point rounding.
        """
        if not self.intersects(other):
            return None
        p, r = self.start, self.end - self.start
        q, s = other.start, other.end - other.start
        denominator = r.cross(s)
        qp = q - p
        if denominator == 0.0:
            # Parallel but intersecting: collinear overlap.  A unique point
            # exists only when the segments touch at exactly one endpoint.
            touches = [
                pt
                for pt in (other.start, other.end)
                if pt in (self.start, self.end)
            ]
            if len(touches) == 1 and not (
                self.contains_point(other.start)
                and self.contains_point(other.end)
            ):
                return touches[0]
            return None
        # Intersection is certain; clamp the parameter against rounding.
        t = qp.cross(s) / denominator
        t = min(1.0, max(0.0, t))
        return p + r * t

    def distance_to_point(self, p: Point) -> float:
        """Euclidean distance from ``p`` to the closest point of the segment."""
        return p.distance_to(self.closest_point_to(p))

    def closest_point_to(self, p: Point) -> Point:
        """The point of the segment closest to ``p``."""
        direction = self.end - self.start
        denom = direction.squared_norm()
        if denom == 0.0:  # degenerate segment
            return self.start
        t = (p - self.start).dot(direction) / denom
        t = min(1.0, max(0.0, t))
        return self.start + direction * t


def _within_bounds(a: Point, b: Point, p: Point) -> bool:
    """True if ``p`` is inside the axis-aligned box spanned by ``a``/``b``."""
    return (
        min(a.x, b.x) <= p.x <= max(a.x, b.x)
        and min(a.y, b.y) <= p.y <= max(a.y, b.y)
    )


def segments_intersect(a: Point, b: Point, c: Point, d: Point) -> bool:
    """True if closed segments ``ab`` and ``cd`` share at least one point.

    The classic four-orientation test with collinear special cases, built on
    the robust predicates so the answer is exact for float inputs.
    """
    return segments_intersect_xy(
        a.x, a.y, b.x, b.y, c.x, c.y, d.x, d.y
    )


def segments_intersect_xy(
    ax: float,
    ay: float,
    bx: float,
    by: float,
    cx: float,
    cy: float,
    dx: float,
    dy: float,
) -> bool:
    """Raw-coordinate segment intersection (hot-loop form).

    Same exactness guarantee as :func:`segments_intersect`; avoids
    :class:`Point` wrapping and exits early when the first orientation pair
    already separates the segments.
    """
    o1 = orientation_sign(ax, ay, bx, by, cx, cy)
    o2 = orientation_sign(ax, ay, bx, by, dx, dy)
    if (o1 > 0.0 and o2 > 0.0) or (o1 < 0.0 and o2 < 0.0):
        return False  # c and d strictly on the same side of ab
    o3 = orientation_sign(cx, cy, dx, dy, ax, ay)
    o4 = orientation_sign(cx, cy, dx, dy, bx, by)
    if (o3 > 0.0 and o4 > 0.0) or (o3 < 0.0 and o4 < 0.0):
        return False
    if o1 != 0.0 and o2 != 0.0 and o3 != 0.0 and o4 != 0.0:
        return True  # both pairs strictly straddle: proper crossing

    # Collinear / endpoint-touching cases.
    if (
        o1 == 0.0
        and min(ax, bx) <= cx <= max(ax, bx)
        and min(ay, by) <= cy <= max(ay, by)
    ):
        return True
    if (
        o2 == 0.0
        and min(ax, bx) <= dx <= max(ax, bx)
        and min(ay, by) <= dy <= max(ay, by)
    ):
        return True
    if (
        o3 == 0.0
        and min(cx, dx) <= ax <= max(cx, dx)
        and min(cy, dy) <= ay <= max(cy, dy)
    ):
        return True
    if (
        o4 == 0.0
        and min(cx, dx) <= bx <= max(cx, dx)
        and min(cy, dy) <= by <= max(cy, dy)
    ):
        return True
    return False
