"""Simple polygons: the query areas of the paper.

A :class:`Polygon` is a simple (non-self-intersecting) closed polygon given
by its vertex ring; it may be convex or concave, and the paper stresses that
the interesting case is the irregular/concave one.  The two operations the
area-query algorithms need are

* exact point containment (the *refinement* test both methods run on every
  candidate), and
* segment/polygon intersection (Algorithm 1's rule for expanding across the
  polygon's boundary).

Containment is implemented twice — crossing number and winding number — and
the test suite checks that the two always agree; the crossing-number version
is the one used in hot paths.
"""

from __future__ import annotations

from functools import cached_property
from typing import Iterable, Iterator, List, Sequence, Tuple

from repro.geometry.point import Point
from repro.geometry.predicates import (
    Orientation,
    orientation,
    orientation_sign,
    signed_area_sign,
)
from repro.geometry.rectangle import Rect
from repro.geometry.segment import (
    Segment,
    segments_intersect_xy,
)


class Polygon:
    """A simple closed polygon defined by at least three vertices.

    The vertex ring may be given in either rotational direction; it is
    normalised to counter-clockwise internally so that signed-area consumers
    can rely on the sign.  The ring must not repeat the first vertex at the
    end (the closing edge is implicit).
    """

    __slots__ = ("_vertices", "__dict__")

    def __init__(self, vertices: Sequence[Point] | Sequence[Tuple[float, float]]):
        ring: List[Point] = [
            v if isinstance(v, Point) else Point(float(v[0]), float(v[1]))
            for v in vertices
        ]
        if len(ring) >= 2 and ring[0] == ring[-1]:
            ring = ring[:-1]
        if len(ring) < 3:
            raise ValueError(
                f"a polygon needs at least 3 distinct vertices, got {len(ring)}"
            )
        # The *sign* decision must be robust: the float shoelace sum can
        # cancel to the wrong sign for thin rings at extreme coordinate
        # scales, which would reverse a correctly-CCW ring (and e.g. make
        # is_convex() reject a valid convex hull).
        if signed_area_sign(ring) < 0.0:
            ring.reverse()
        self._vertices: Tuple[Point, ...] = tuple(ring)

    # -- structure ---------------------------------------------------------

    @property
    def vertices(self) -> Tuple[Point, ...]:
        """The vertex ring in counter-clockwise order."""
        return self._vertices

    def __len__(self) -> int:
        return len(self._vertices)

    def __iter__(self) -> Iterator[Point]:
        return iter(self._vertices)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Polygon):
            return NotImplemented
        return self._vertices == other._vertices

    def __hash__(self) -> int:
        # Memoised: the vertex ring is immutable after __init__, and the
        # query layer hashes polygons constantly (spec-keyed caches and
        # batch dedup), so rehashing every Point each time would dominate
        # small batches.
        try:
            return self.__dict__["_hash_memo"]
        except KeyError:
            value = hash(self._vertices)
            self.__dict__["_hash_memo"] = value
            return value

    def __repr__(self) -> str:
        return f"Polygon({len(self._vertices)} vertices, area={self.area:.6g})"

    def edges(self) -> Iterator[Segment]:
        """The boundary edges, including the implicit closing edge."""
        ring = self._vertices
        for i, start in enumerate(ring):
            yield Segment(start, ring[(i + 1) % len(ring)])

    # -- measures ----------------------------------------------------------

    @cached_property
    def signed_area(self) -> float:
        """Shoelace signed area (float); the ring is normalised to CCW.

        Non-negative up to floating-point rounding: for thin polygons at
        extreme coordinate scales the float sum may come out as a tiny
        negative even though the ring is truly counter-clockwise (the
        normalisation decision itself uses the robust
        :func:`~repro.geometry.predicates.signed_area_sign`).
        """
        return _signed_area(self._vertices)

    @property
    def area(self) -> float:
        """Enclosed area."""
        return abs(self.signed_area)

    @cached_property
    def perimeter(self) -> float:
        """Total boundary length.

        The paper's analysis: redundant candidates of the Voronoi method are
        proportional to this, not to the MBR area.
        """
        return sum(edge.length for edge in self.edges())

    @cached_property
    def mbr(self) -> Rect:
        """Minimum bounding rectangle (the traditional method's filter)."""
        return Rect.from_points(self._vertices)

    @cached_property
    def _edge_coords(self) -> Tuple[Tuple[float, float, float, float], ...]:
        """Per-edge ``(ax, ay, bx, by)`` tuples for the raw-float hot loops."""
        ring = self._vertices
        n = len(ring)
        return tuple(
            (ring[i].x, ring[i].y, ring[(i + 1) % n].x, ring[(i + 1) % n].y)
            for i in range(n)
        )

    @cached_property
    def centroid(self) -> Point:
        """Area centroid of the polygon."""
        a = 0.0
        cx = 0.0
        cy = 0.0
        ring = self._vertices
        for i, p in enumerate(ring):
            q = ring[(i + 1) % len(ring)]
            cross = p.cross(q)
            a += cross
            cx += (p.x + q.x) * cross
            cy += (p.y + q.y) * cross
        if a == 0.0:  # degenerate (zero-area) ring: fall back to vertex mean
            n = len(ring)
            return Point(
                sum(p.x for p in ring) / n, sum(p.y for p in ring) / n
            )
        return Point(cx / (3.0 * a), cy / (3.0 * a))

    def is_convex(self) -> bool:
        """True if every interior angle is at most pi."""
        ring = self._vertices
        n = len(ring)
        saw_turn = False
        for i in range(n):
            turn = orientation(ring[i], ring[(i + 1) % n], ring[(i + 2) % n])
            if turn is Orientation.CLOCKWISE:
                return False
            if turn is Orientation.COUNTERCLOCKWISE:
                saw_turn = True
        return saw_turn

    def is_simple(self) -> bool:
        """True if no two non-adjacent edges intersect.

        Quadratic in the number of vertices; query polygons have ~10
        vertices, so this is cheap.  Adjacent edges sharing their common
        vertex do not count as intersections.
        """
        edges = list(self.edges())
        n = len(edges)
        for i in range(n):
            for j in range(i + 1, n):
                adjacent = j == i + 1 or (i == 0 and j == n - 1)
                if adjacent:
                    # Adjacent edges legitimately share one vertex; they must
                    # not touch anywhere else.
                    shared = edges[i].end if j == i + 1 else edges[i].start
                    endpoints = (
                        edges[i].start,
                        edges[i].end,
                        edges[j].start,
                        edges[j].end,
                    )
                    segments = (edges[j], edges[j], edges[i], edges[i])
                    for p, seg in zip(endpoints, segments):
                        if p != shared and seg.contains_point(p):
                            return False
                elif edges[i].intersects(edges[j]):
                    return False
        return True

    # -- containment -------------------------------------------------------

    def contains_point(self, p: Point, *, boundary: bool = True) -> bool:
        """Exact point-in-polygon test (crossing number).

        ``boundary=True`` (the default) counts points exactly on the
        boundary as contained, matching the closed-area semantics of the
        paper's ``Contains(A, p)``.

        The implementation is the even–odd crossing-number walk with the
        standard half-open edge rule (``min_y <= p.y < max_y``), which makes
        vertex crossings count exactly once; boundary points are detected
        explicitly first so the half-open rule never misclassifies them.
        """
        px, py = p.x, p.y
        box = self.mbr
        if not (
            box.min_x <= px <= box.max_x and box.min_y <= py <= box.max_y
        ):
            return False
        return self._contains_xy(px, py, boundary)

    def _contains_xy(self, px: float, py: float, boundary: bool) -> bool:
        """Crossing-number walk on raw floats (assumes ``p`` is in the MBR).

        Per edge there are two disjoint cases needing exact work:

        * the edge *straddles* the horizontal ray through ``p`` — the
          robust sign decides the crossing side, and a zero sign means ``p``
          lies on the (closed) edge;
        * the edge lies entirely at or below ``p``'s level — ``p`` can only
          touch it when its level equals the edge's upper end (a vertex
          touch or a horizontal edge), checked explicitly.

        Edges entirely above ``p`` can neither cross the ray nor contain
        ``p``, so the common case costs two float comparisons.
        """
        inside = False
        for ax, ay, bx, by in self._edge_coords:
            a_above = ay > py
            if a_above != (by > py):
                # Straddling edge: the robustly-signed area decides the
                # crossing side; zero means p is on the closed edge.
                cross = orientation_sign(ax, ay, bx, by, px, py)
                if cross == 0.0:
                    return boundary
                if by > ay:
                    if cross > 0.0:
                        inside = not inside
                elif cross < 0.0:
                    inside = not inside
            elif not a_above:
                # Both endpoints at or below p's level: p can only lie on
                # this edge if it touches the upper endpoint's level.
                if (
                    (py == ay or py == by)
                    and (ax <= px <= bx or bx <= px <= ax)
                    and orientation_sign(ax, ay, bx, by, px, py) == 0.0
                ):
                    return boundary
        return inside

    def contains_many(self, xs, ys, *, boundary: bool = True):
        """Vectorized :meth:`contains_point` over coordinate arrays.

        ``xs``/``ys`` are equally-long float64 arrays (typically gathered
        from the :class:`~repro.core.store.PointStore` columns by row
        id); returns a boolean array whose element ``i`` equals
        ``contains_point(Point(xs[i], ys[i]), boundary=boundary)``
        **exactly** — candidates whose edge decisions the vectorized
        error filter cannot certify are re-answered by the scalar test
        (see :func:`repro.geometry.kernels.polygon_contains_many`).
        """
        from repro.geometry.kernels import polygon_contains_many

        return polygon_contains_many(self, xs, ys, boundary=boundary)

    def winding_number(self, p: Point) -> int:
        """Winding number of the boundary around ``p``.

        Non-zero means inside for simple polygons.  Used as an independent
        oracle against :meth:`contains_point` in the test suite; points on
        the boundary yield an implementation-defined non-zero value.
        """
        ring = self._vertices
        n = len(ring)
        winding = 0
        for i in range(n):
            a = ring[i]
            b = ring[(i + 1) % n]
            if a.y <= p.y:
                if b.y > p.y and orientation(a, b, p) is Orientation.COUNTERCLOCKWISE:
                    winding += 1
            else:
                if b.y <= p.y and orientation(a, b, p) is Orientation.CLOCKWISE:
                    winding -= 1
        return winding

    def contains_point_winding(self, p: Point) -> bool:
        """Containment via winding number (boundary counts as inside)."""
        if not self.mbr.contains_point(p):
            return False
        if self.point_on_boundary(p):
            return True
        return self.winding_number(p) != 0

    def point_on_boundary(self, p: Point) -> bool:
        """True if ``p`` lies exactly on one of the boundary edges."""
        if not self.mbr.contains_point(p):
            return False
        return any(edge.contains_point(p) for edge in self.edges())

    # -- boundary interaction ---------------------------------------------

    def intersects_segment(self, segment: Segment) -> bool:
        """True if ``segment`` touches the closed polygonal region at all.

        This is the paper's ``Intersects(line(p, pn), A)``: true when the
        segment crosses or touches the boundary *or* lies entirely inside.
        This sits on Algorithm 1's innermost loop, hence the raw-float form.
        """
        if self.crosses_boundary_xy(
            segment.start.x, segment.start.y, segment.end.x, segment.end.y
        ):
            return True
        # No boundary crossing: the segment is wholly inside or wholly
        # outside; either endpoint decides.
        return self.contains_point(segment.start)

    def crosses_boundary(self, segment: Segment) -> bool:
        """True if ``segment`` intersects the polygon *boundary* (not interior)."""
        return self.crosses_boundary_xy(
            segment.start.x, segment.start.y, segment.end.x, segment.end.y
        )

    def crosses_boundary_xy(
        self, sx: float, sy: float, ex: float, ey: float
    ) -> bool:
        """Raw-float boundary-crossing test.

        For a segment whose start point is known to lie *outside* the closed
        polygon, this is equivalent to :meth:`intersects_segment` (a segment
        from outside can only meet the region by crossing its boundary) and
        skips the interior-containment fallback — Algorithm 1 calls this on
        its innermost loop when expanding from external points.
        """
        lo_x, hi_x = (sx, ex) if sx <= ex else (ex, sx)
        lo_y, hi_y = (sy, ey) if sy <= ey else (ey, sy)
        box = self.mbr
        if (
            hi_x < box.min_x
            or lo_x > box.max_x
            or hi_y < box.min_y
            or lo_y > box.max_y
        ):
            return False
        for ax, ay, bx, by in self._edge_coords:
            if ax <= bx:
                if bx < lo_x or ax > hi_x:
                    continue
            elif ax < lo_x or bx > hi_x:
                continue
            if ay <= by:
                if by < lo_y or ay > hi_y:
                    continue
            elif ay < lo_y or by > hi_y:
                continue
            if segments_intersect_xy(ax, ay, bx, by, sx, sy, ex, ey):
                return True
        return False

    def intersects_rect(self, rect: Rect) -> bool:
        """True if the closed polygon and the rectangle share any point."""
        if not self.mbr.intersects(rect):
            return False
        corners = list(rect.corners())
        if any(self.contains_point(c) for c in corners):
            return True
        if any(rect.contains_point(v) for v in self._vertices):
            return True
        rect_edges = [
            Segment(corners[i], corners[(i + 1) % 4]) for i in range(4)
        ]
        return any(
            edge.intersects(rect_edge)
            for edge in self.edges()
            for rect_edge in rect_edges
        )

    # -- triangulation -----------------------------------------------------

    def triangulate(self):
        """Ear-clipping triangulation: a list of CCW ``(a, b, c)`` triples
        covering the polygon exactly.  See
        :func:`repro.geometry.triangulate.triangulate_polygon`."""
        from repro.geometry.triangulate import triangulate_polygon

        return triangulate_polygon(self._vertices)

    def sample_interior(self, count: int, rng=None) -> List[Point]:
        """``count`` uniform random points inside the polygon."""
        from repro.geometry.triangulate import sample_interior

        return sample_interior(self._vertices, count, rng)

    def interior_point(self) -> Point:
        """A point strictly inside the polygon (largest-triangle centroid).

        Works for any simple polygon with positive area, including shapes
        whose centroid lies outside (strong concavity).
        """
        from repro.geometry.triangulate import (
            triangle_area,
            triangle_interior_point,
            triangulate_polygon,
        )

        triangles = triangulate_polygon(self._vertices)
        if not triangles:
            raise ValueError("polygon has no positive-area triangulation")
        largest = max(triangles, key=triangle_area)
        if triangle_area(largest) <= 0.0:
            raise ValueError("polygon is degenerate (zero area)")
        return triangle_interior_point(largest)

    # -- transforms --------------------------------------------------------

    def translated(self, dx: float, dy: float) -> "Polygon":
        """A copy shifted by ``(dx, dy)``."""
        offset = Point(dx, dy)
        return Polygon([v + offset for v in self._vertices])

    def scaled(self, factor: float, about: Point | None = None) -> "Polygon":
        """A copy scaled by ``factor`` about ``about`` (default: centroid)."""
        if factor <= 0.0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        center = about if about is not None else self.centroid
        return Polygon(
            [center + (v - center) * factor for v in self._vertices]
        )

    @staticmethod
    def regular(n: int, center: Point, radius: float, phase: float = 0.0) -> "Polygon":
        """A regular ``n``-gon, handy for tests and examples."""
        import math

        if n < 3:
            raise ValueError(f"a regular polygon needs n >= 3, got {n}")
        if radius <= 0.0:
            raise ValueError(f"radius must be positive, got {radius}")
        return Polygon(
            [
                Point(
                    center.x + radius * math.cos(phase + 2.0 * math.pi * i / n),
                    center.y + radius * math.sin(phase + 2.0 * math.pi * i / n),
                )
                for i in range(n)
            ]
        )

    @staticmethod
    def from_rect(rect: Rect) -> "Polygon":
        """The rectangle as a 4-gon (the 'query area is a rectangle' case)."""
        return Polygon(list(rect.corners()))


def _signed_area(ring: Sequence[Point]) -> float:
    """Shoelace formula over an open vertex ring."""
    total = 0.0
    n = len(ring)
    for i, p in enumerate(ring):
        q = ring[(i + 1) % n]
        total += p.cross(q)
    return total / 2.0


def convex_hull(points: Iterable[Point]) -> List[Point]:
    """Andrew's monotone-chain convex hull, CCW, no duplicate endpoint.

    Collinear points on hull edges are dropped.  Used by the random polygon
    generator and by tests as an oracle.
    """
    unique = sorted(set(points), key=lambda p: (p.x, p.y))
    if len(unique) <= 2:
        return unique

    def half_hull(source: Sequence[Point]) -> List[Point]:
        hull: List[Point] = []
        for p in source:
            while (
                len(hull) >= 2
                and orientation(hull[-2], hull[-1], p)
                is not Orientation.COUNTERCLOCKWISE
            ):
                hull.pop()
            hull.append(p)
        return hull

    lower = half_hull(unique)
    upper = half_hull(list(reversed(unique)))
    return lower[:-1] + upper[:-1]
