"""Random simple polygons — the paper's query workload.

Every experiment in the paper issues "a randomly generated polygon of ten
points" whose *query size* (MBR area divided by the area of the solution
space) is the sweep knob.  This module generates such polygons:

* :func:`random_star_polygon` — vertices at random radii sorted by angle
  around a centre.  Always simple, usually concave; this is the generator
  the experiment harness uses because it is fast and its irregularity is
  controllable.
* :func:`random_simple_polygon` — fully random vertex sets untangled into a
  simple polygon by 2-opt edge swaps; slower but samples a wider shape
  space.  Used in tests and available to users.
* :func:`scale_polygon_to_query_size` — rescales and re-places a polygon so
  its MBR covers exactly the requested fraction of a space rectangle, i.e.
  the paper's ``query size`` parameter.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional

from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.rectangle import Rect


def random_star_polygon(
    n_vertices: int = 10,
    rng: Optional[random.Random] = None,
    *,
    center: Point = Point(0.5, 0.5),
    mean_radius: float = 0.25,
    irregularity: float = 0.6,
    spikiness: float = 0.45,
) -> Polygon:
    """A random simple (star-shaped) polygon around ``center``.

    Angles advance around the circle with jitter controlled by
    ``irregularity`` (0 = regular spacing, 1 = fully random spacing) and each
    vertex radius is drawn around ``mean_radius`` with relative spread
    ``spikiness``.  The result is always simple because vertices are sorted
    by angle around an interior point, and with the default spikiness it is
    concave with high probability — matching the paper's "irregular polygon,
    more often even a concave polygon".
    """
    if n_vertices < 3:
        raise ValueError(f"need at least 3 vertices, got {n_vertices}")
    if not 0.0 <= irregularity <= 1.0:
        raise ValueError(f"irregularity must be in [0, 1], got {irregularity}")
    if not 0.0 <= spikiness < 1.0:
        raise ValueError(f"spikiness must be in [0, 1), got {spikiness}")
    rng = rng if rng is not None else random.Random()

    # Random angular steps that sum to 2*pi.
    base_step = 2.0 * math.pi / n_vertices
    jitter = irregularity * base_step
    steps = [
        base_step + rng.uniform(-jitter, jitter) for _ in range(n_vertices)
    ]
    step_sum = sum(steps)
    steps = [s * (2.0 * math.pi / step_sum) for s in steps]

    vertices: List[Point] = []
    angle = rng.uniform(0.0, 2.0 * math.pi)
    for step in steps:
        radius = mean_radius * (1.0 + rng.uniform(-spikiness, spikiness))
        radius = max(radius, mean_radius * 0.05)
        vertices.append(
            Point(
                center.x + radius * math.cos(angle),
                center.y + radius * math.sin(angle),
            )
        )
        angle += step
    return Polygon(vertices)


def random_simple_polygon(
    n_vertices: int = 10,
    rng: Optional[random.Random] = None,
    *,
    bounds: Rect = Rect(0.0, 0.0, 1.0, 1.0),
    max_untangle_passes: int = 200,
) -> Polygon:
    """A simple polygon on uniformly random vertices inside ``bounds``.

    Vertices are drawn uniformly, then the closed tour is untangled by 2-opt
    reversals (each swap removes one edge crossing and strictly shortens the
    tour, so the process terminates); in the rare event the pass budget runs
    out, fresh vertices are drawn.  The output distribution covers convex and
    strongly concave shapes alike.
    """
    if n_vertices < 3:
        raise ValueError(f"need at least 3 vertices, got {n_vertices}")
    rng = rng if rng is not None else random.Random()

    while True:
        ring = [
            Point(
                rng.uniform(bounds.min_x, bounds.max_x),
                rng.uniform(bounds.min_y, bounds.max_y),
            )
            for _ in range(n_vertices)
        ]
        if len(set(ring)) < n_vertices:
            continue
        if _untangle(ring, max_untangle_passes):
            polygon = Polygon(ring)
            if polygon.area > 0.0 and polygon.is_simple():
                return polygon


def _untangle(ring: List[Point], max_passes: int) -> bool:
    """Remove edge crossings from a closed tour by 2-opt reversals in place."""
    from repro.geometry.segment import segments_intersect

    n = len(ring)
    for _ in range(max_passes):
        crossed = False
        for i in range(n):
            a, b = ring[i], ring[(i + 1) % n]
            for j in range(i + 2, n):
                if i == 0 and j == n - 1:
                    continue  # adjacent through the closing edge
                c, d = ring[j], ring[(j + 1) % n]
                if segments_intersect(a, b, c, d):
                    # Reverse the path b..c: the crossing pair (ab, cd)
                    # becomes the non-crossing pair (ac, bd).
                    ring[i + 1 : j + 1] = reversed(ring[i + 1 : j + 1])
                    crossed = True
                    a, b = ring[i], ring[(i + 1) % n]
        if not crossed:
            return True
    return False


def scale_polygon_to_query_size(
    polygon: Polygon,
    query_size: float,
    space: Rect = Rect(0.0, 0.0, 1.0, 1.0),
    rng: Optional[random.Random] = None,
) -> Polygon:
    """Rescale/translate ``polygon`` so MBR(polygon).area == query_size * space.area.

    This realises the paper's *query size* knob: "the area of the query
    area's MBR divided by the total area of the solution space".  The scaled
    polygon is placed uniformly at random inside ``space`` (or centred, when
    no ``rng`` is given).
    """
    if not 0.0 < query_size <= 1.0:
        raise ValueError(f"query_size must be in (0, 1], got {query_size}")
    mbr = polygon.mbr
    if mbr.area <= 0.0:
        raise ValueError("cannot scale a polygon with a degenerate MBR")

    target_area = query_size * space.area
    factor = math.sqrt(target_area / mbr.area)
    # Keep the aspect ratio; if the scaled MBR would exceed the space in one
    # dimension, clamp the factor so the polygon still fits.
    max_factor = min(
        space.width / mbr.width if mbr.width > 0 else math.inf,
        space.height / mbr.height if mbr.height > 0 else math.inf,
    )
    factor = min(factor, max_factor)
    scaled = polygon.scaled(factor)

    smbr = scaled.mbr
    free_x = space.width - smbr.width
    free_y = space.height - smbr.height
    if rng is not None:
        dx = space.min_x + rng.uniform(0.0, max(free_x, 0.0)) - smbr.min_x
        dy = space.min_y + rng.uniform(0.0, max(free_y, 0.0)) - smbr.min_y
    else:
        dx = space.min_x + max(free_x, 0.0) / 2.0 - smbr.min_x
        dy = space.min_y + max(free_y, 0.0) / 2.0 - smbr.min_y
    return scaled.translated(dx, dy)


def random_query_polygon(
    query_size: float,
    n_vertices: int = 10,
    rng: Optional[random.Random] = None,
    *,
    space: Rect = Rect(0.0, 0.0, 1.0, 1.0),
) -> Polygon:
    """One query area exactly as the paper's experiments draw them.

    A random 10-vertex star polygon, rescaled so its MBR covers
    ``query_size`` of the solution space and dropped at a uniformly random
    position.
    """
    rng = rng if rng is not None else random.Random()
    shape = random_star_polygon(n_vertices, rng)
    return scale_polygon_to_query_size(shape, query_size, space, rng)
