"""Vectorized geometry kernels over coordinate arrays.

The refinement test (point-in-region) is the constant-factor sink of both
area-query methods: the traditional baseline refines every MBR candidate,
Algorithm 1 refines every expansion candidate.  These kernels run the
same tests over *whole arrays* of candidate coordinates (gathered from
the columnar :class:`~repro.core.store.PointStore`) in a handful of
numpy passes per polygon edge.

**Exactness contract.**  Every kernel returns *bitwise the same* answers
as its scalar sibling (``Polygon.contains_point`` /
``Rect.contains_point`` / ``Circle.contains_point``), point for point:

* :func:`rect_contains_many` / :func:`circle_contains_many` perform the
  identical IEEE-754 comparisons the scalar tests perform, so they are
  trivially exact.
* :func:`polygon_contains_many` vectorizes the crossing-number walk with
  the same forward-error filter the robust scalar predicate
  (:func:`repro.geometry.predicates.orientation_sign`) uses: an edge
  decision is taken from the float cross product only when its
  magnitude clears Shewchuk's error bound *and* sits outside the
  denormal zone.  Points with any unclear edge decision — near-boundary
  points, exact vertex/edge touches, denormal-scale coordinates — are
  re-answered one by one by the scalar test itself, so disagreements
  are impossible by construction.  On real workloads the fallback set
  is a vanishing fraction (points within one rounding error of an
  edge), so the kernel keeps its array speed.

The kernels take bare coordinate arrays rather than ``Point`` sequences
on purpose: the hot paths gather ``xs``/``ys`` by row id from the store
and never materialize ``Point`` objects at all.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.geometry.predicates import _MIN_NORMAL, _ORIENT_ERR_BOUND

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.geometry.circle import Circle
    from repro.geometry.polygon import Polygon
    from repro.geometry.rectangle import Rect


def as_coord_array(values) -> "np.ndarray":
    """Coerce any coordinate sequence to a contiguous float64 array."""
    return np.ascontiguousarray(values, dtype=np.float64)


def rect_contains_many(
    rect: "Rect", xs: "np.ndarray", ys: "np.ndarray"
) -> "np.ndarray":
    """Closed-rectangle membership for every ``(xs[i], ys[i])``.

    Bitwise identical to ``rect.contains_point`` per element (the same
    four closed-bound comparisons).
    """
    return (
        (xs >= rect.min_x)
        & (xs <= rect.max_x)
        & (ys >= rect.min_y)
        & (ys <= rect.max_y)
    )


def circle_contains_many(
    circle: "Circle",
    xs: "np.ndarray",
    ys: "np.ndarray",
    *,
    boundary: bool = True,
) -> "np.ndarray":
    """Closed-disc membership for every ``(xs[i], ys[i])``.

    Performs exactly the scalar test's operations (coordinate
    differences, squared sum, one comparison against ``r*r``), so the
    results match ``circle.contains_point`` bit for bit.
    """
    dx = xs - circle.center.x
    dy = ys - circle.center.y
    squared = dx * dx + dy * dy
    limit = circle.radius * circle.radius
    if boundary:
        return squared <= limit
    return squared < limit


#: Target cells (edges x points) per broadcast block: large enough to
#: amortize numpy dispatch, small enough to stay cache-resident.
_BLOCK_CELLS = 1 << 16


def _edge_columns(polygon: "Polygon"):
    """Per-edge broadcast columns, memoised on the polygon.

    ``(ax, ay, bx, by, up, lo_x, hi_x)`` — each an ``(E, 1)`` float64 (or
    bool) column so edge-by-point matrices broadcast directly.  Cached on
    the polygon instance (its vertex ring is immutable after
    construction, like the ``_edge_coords`` tuples the scalar loops use).
    """
    try:
        return polygon.__dict__["_edge_columns_memo"]
    except KeyError:
        coords = polygon._edge_coords
        count = len(coords)
        ax = np.fromiter((e[0] for e in coords), np.float64, count)
        ay = np.fromiter((e[1] for e in coords), np.float64, count)
        bx = np.fromiter((e[2] for e in coords), np.float64, count)
        by = np.fromiter((e[3] for e in coords), np.float64, count)
        columns = (
            ax[:, None],
            ay[:, None],
            bx[:, None],
            by[:, None],
            (by > ay)[:, None],
            np.minimum(ax, bx)[:, None],
            np.maximum(ax, bx)[:, None],
        )
        polygon.__dict__["_edge_columns_memo"] = columns
        return columns


def polygon_contains_many(
    polygon: "Polygon",
    xs: "np.ndarray",
    ys: "np.ndarray",
    *,
    boundary: bool = True,
) -> "np.ndarray":
    """Exact point-in-polygon for every ``(xs[i], ys[i])``.

    The crossing-number walk of ``Polygon.contains_point`` evaluated one
    edge at a time over the whole candidate array.  Per straddling edge
    the float cross product decides the crossing side only when it
    clears the robust predicate's forward error bound; candidates with
    any untrusted edge decision (possible boundary touches, catastrophic
    cancellation, denormal-zone products) are resolved by the scalar
    test itself.  The returned mask therefore equals
    ``[polygon.contains_point(Point(x, y), boundary=boundary) ...]``
    exactly, for any input.
    """
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    out = np.zeros(xs.shape[0], dtype=bool)
    if xs.shape[0] == 0:
        return out
    box = polygon.mbr
    in_box = (
        (xs >= box.min_x)
        & (xs <= box.max_x)
        & (ys >= box.min_y)
        & (ys <= box.max_y)
    )
    count = int(in_box.sum())
    if count == 0:
        return out
    if count == xs.shape[0]:
        pxs, pys = xs, ys
    else:
        pxs, pys = xs[in_box], ys[in_box]

    ax, ay, bx, by, up, lo_x, hi_x = _edge_columns(polygon)
    edges = ax.shape[0]
    inside = np.empty(count, dtype=bool)
    unclear = np.empty(count, dtype=bool)
    # One (edges x block) broadcast per block of candidates: a handful
    # of numpy dispatches regardless of the edge count, with the block
    # width chosen so the matrices stay cache-resident.
    block = max(1, _BLOCK_CELLS // max(1, edges))
    for start in range(0, count, block):
        px = pxs[start : start + block]
        py = pys[start : start + block]
        a_above = ay > py
        b_above = by > py
        straddle = a_above != b_above
        # The robust scalar predicate trusts the raw cross product when
        # |det| >= bound * (|detleft| + |detright|) outside the denormal
        # zone; we additionally require det != 0 (a zero would mean an
        # exact boundary hit the scalar code early-returns on).
        # Everything else is deferred to the scalar test.
        detleft = (ax - px) * (by - py)
        detright = (ay - py) * (bx - px)
        det = detleft - detright
        abs_left = np.abs(detleft)
        abs_right = np.abs(detright)
        trusted = np.abs(det) > _ORIENT_ERR_BOUND * (abs_left + abs_right)
        trusted &= ~((abs_left < _MIN_NORMAL) & (abs_right < _MIN_NORMAL))
        flip = np.where(up, det > 0.0, det < 0.0)
        crossing = straddle & trusted & flip
        # Even-odd rule: parity of trusted crossings over all edges.
        inside[start : start + block] = (
            crossing.sum(axis=0, dtype=np.int64) & 1
        ).astype(bool)
        pending = straddle & ~trusted
        # Edges entirely at or below a candidate's level can only matter
        # when the candidate touches the upper endpoint's level inside
        # the edge's x-range (vertex touch / horizontal edge) — rare,
        # and a potential boundary early-return: defer to scalar.
        below = ~a_above & ~b_above
        pending |= (
            below
            & ((py == ay) | (py == by))
            & (px >= lo_x)
            & (px <= hi_x)
        )
        unclear[start : start + block] = pending.any(axis=0)

    if unclear.any():
        contains_xy = polygon._contains_xy
        unclear_idx = np.nonzero(unclear)[0]
        for i in unclear_idx.tolist():
            inside[i] = contains_xy(float(pxs[i]), float(pys[i]), boundary)

    if count == xs.shape[0]:
        return inside
    out[in_box] = inside
    return out


def squared_distances(
    xs: "np.ndarray", ys: "np.ndarray", qx: float, qy: float
) -> "np.ndarray":
    """Squared Euclidean distance from ``(qx, qy)`` to every candidate.

    Same operation order as ``Point.squared_distance_to`` (difference,
    two squares, one sum), so each element is bitwise identical to the
    scalar value — heap orderings built on these distances cannot
    diverge between the scalar and vectorized kNN expansions.
    """
    dx = xs - qx
    dy = ys - qy
    return dx * dx + dy * dy
