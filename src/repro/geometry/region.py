"""The query-region protocol.

Algorithm 1 and the traditional baseline never rely on the query area
being a polygon; they need exactly the operations listed in
:class:`QueryRegion`.  Any shape implementing them can be passed to
:meth:`repro.core.database.SpatialDatabase.area_query` —
:class:`~repro.geometry.polygon.Polygon` and
:class:`~repro.geometry.circle.Circle` both conform.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.geometry.segment import Segment


@runtime_checkable
class QueryRegion(Protocol):
    """A closed planar region usable as an area-query target.

    Required semantics:

    * the region is *closed* (its boundary belongs to it);
    * ``mbr`` is tight (the traditional filter depends on it);
    * ``crosses_boundary_xy`` must be exact for float inputs — Algorithm
      1's expansion rule rests on it.

    Regions may *optionally* provide
    ``contains_many(xs, ys, *, boundary=True)`` — a vectorized
    ``contains_point`` over coordinate arrays whose answers match the
    scalar test exactly (:class:`~repro.geometry.polygon.Polygon` and
    :class:`~repro.geometry.circle.Circle` both do).  The columnar hot
    paths probe for it with ``getattr`` and fall back to the scalar
    per-point loop when absent, so custom regions stay supported.
    """

    @property
    def area(self) -> float:
        """Enclosed area (must be positive for a valid query region)."""
        ...

    @property
    def mbr(self) -> Rect:
        """Tight minimum bounding rectangle."""
        ...

    @property
    def centroid(self) -> Point:
        """A representative position (used to seed Algorithm 1)."""
        ...

    def contains_point(self, p: Point, *, boundary: bool = True) -> bool:
        """Exact closed-region membership (the refinement test)."""
        ...

    def point_on_boundary(self, p: Point) -> bool:
        """True iff ``p`` lies exactly on the boundary."""
        ...

    def crosses_boundary_xy(
        self, sx: float, sy: float, ex: float, ey: float
    ) -> bool:
        """True iff segment ``(sx, sy) -> (ex, ey)`` meets the boundary."""
        ...

    def intersects_segment(self, segment: Segment) -> bool:
        """True iff the closed region and the closed segment share a point."""
        ...


def interior_seed_position(region: QueryRegion) -> Point:
    """A position strictly inside ``region`` (the paper's ``pA``).

    Works for any conforming region: the centroid when it is interior
    (always, for convex regions like circles), otherwise the region must
    provide richer structure — :class:`Polygon` instances fall back to the
    triangulation-based search in
    :func:`repro.core.voronoi_query.interior_position`.
    """
    centroid = region.centroid
    if region.contains_point(centroid) and not region.point_on_boundary(
        centroid
    ):
        return centroid
    from repro.core.voronoi_query import interior_position

    return interior_position(region)  # type: ignore[arg-type]
