"""Circular query regions.

A circle is the natural query area for "everything within distance r of
this location" — the radius-bounded variant of the range queries the
paper's introduction lists.  :class:`Circle` implements the
:class:`~repro.geometry.region.QueryRegion` protocol, so both area-query
methods accept it unchanged; its boundary tests are exact up to the
inherent squaring in float distance comparison.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property

from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.geometry.segment import Segment


@dataclass(frozen=True)
class Circle:
    """A closed disc with centre ``center`` and radius ``radius``."""

    center: Point
    radius: float

    def __post_init__(self) -> None:
        if not self.radius > 0.0:
            raise ValueError(f"radius must be positive, got {self.radius}")

    # -- QueryRegion protocol -------------------------------------------------

    @property
    def area(self) -> float:
        """Enclosed area, pi * r^2."""
        return math.pi * self.radius * self.radius

    @cached_property
    def mbr(self) -> Rect:
        """Tight axis-aligned bounding square."""
        return Rect(
            self.center.x - self.radius,
            self.center.y - self.radius,
            self.center.x + self.radius,
            self.center.y + self.radius,
        )

    @property
    def centroid(self) -> Point:
        """The centre (always interior, so seeding never needs a fallback)."""
        return self.center

    def contains_point(self, p: Point, *, boundary: bool = True) -> bool:
        """Closed-disc membership (squared-distance comparison, no sqrt)."""
        squared = p.squared_distance_to(self.center)
        limit = self.radius * self.radius
        if boundary:
            return squared <= limit
        return squared < limit

    def contains_many(self, xs, ys, *, boundary: bool = True):
        """Vectorized :meth:`contains_point` over coordinate arrays.

        Performs the scalar test's exact float operations per element
        (see :func:`repro.geometry.kernels.circle_contains_many`), so
        the boolean array matches ``contains_point`` bit for bit.
        """
        from repro.geometry.kernels import circle_contains_many

        return circle_contains_many(self, xs, ys, boundary=boundary)

    def point_on_boundary(self, p: Point) -> bool:
        """True iff ``p`` lies exactly on the circle (in float arithmetic)."""
        return p.squared_distance_to(self.center) == self.radius * self.radius

    def crosses_boundary_xy(
        self, sx: float, sy: float, ex: float, ey: float
    ) -> bool:
        """True iff the segment meets the circle's boundary.

        Equivalent to: the closest point of the segment to the centre is at
        distance <= r while the farthest endpoint is at distance >= r.
        """
        r2 = self.radius * self.radius
        closest = Segment(Point(sx, sy), Point(ex, ey)).closest_point_to(
            self.center
        )
        if closest.squared_distance_to(self.center) > r2:
            return False  # segment entirely outside
        start_inside = (
            Point(sx, sy).squared_distance_to(self.center) <= r2
        )
        end_inside = Point(ex, ey).squared_distance_to(self.center) <= r2
        if start_inside and end_inside:
            # Fully inside the closed disc: touches the boundary only if an
            # endpoint or the chord grazes the circle itself.
            return (
                Point(sx, sy).squared_distance_to(self.center) == r2
                or Point(ex, ey).squared_distance_to(self.center) == r2
            )
        return True  # one side in, one side out (or tangent from outside)

    def intersects_segment(self, segment: Segment) -> bool:
        """Closed-disc vs closed-segment intersection."""
        return (
            segment.closest_point_to(self.center).squared_distance_to(
                self.center
            )
            <= self.radius * self.radius
        )

    # -- conveniences ----------------------------------------------------------

    @property
    def perimeter(self) -> float:
        """Circumference, 2 * pi * r."""
        return 2.0 * math.pi * self.radius

    def scaled(self, factor: float) -> "Circle":
        """A concentric copy with the radius scaled by ``factor``."""
        if factor <= 0.0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        return Circle(self.center, self.radius * factor)

    def translated(self, dx: float, dy: float) -> "Circle":
        """A copy shifted by ``(dx, dy)``."""
        return Circle(self.center + Point(dx, dy), self.radius)
