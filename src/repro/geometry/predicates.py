"""Robust geometric predicates.

The Delaunay substrate (and through it every Voronoi-neighbour lookup the
core algorithm makes) rests on two predicates:

* ``orientation(a, b, c)`` — does ``c`` lie to the left of, to the right of,
  or on the directed line ``a -> b``?
* ``incircle(a, b, c, d)`` — does ``d`` lie inside the circumcircle of the
  (counter-clockwise) triangle ``a, b, c``?

Evaluated naively in floating point these can return the wrong *sign* when
the true value is near zero, which corrupts the triangulation topology (and
with it the correctness of the area query).  We use the standard two-stage
scheme: a fast float evaluation with a forward error bound, falling back to
exact rational arithmetic (:mod:`fractions`) only in the uncertain zone.
Python's unbounded integers make the exact stage simple and always correct;
the float fast path keeps the common case cheap.

Validity domain
---------------
As with Shewchuk's original predicates, the error-bound analysis assumes no
intermediate overflow or underflow: coordinate *differences* and their
pairwise products must stay inside the normal double range.  The
orientation test detects the underflow case explicitly — when both
products land in the denormal range (where relative rounding error is
unbounded and a product of non-zero differences can collapse to an exact
zero) it falls back to exact arithmetic, so ``orientation`` is
sign-correct at *any* coordinate scale.  The in-circle test keeps the
classical domain: coordinate magnitudes in ``[1e-75, 1e75]`` (or exact
zeros) are always safe, and anything a real spatial workload uses is far
inside that.
"""

from __future__ import annotations

from enum import IntEnum
from fractions import Fraction

from repro.geometry.point import Point

# Machine epsilon for IEEE-754 doubles (2^-52); forward error bounds below
# follow Shewchuk's "Adaptive Precision Floating-Point Arithmetic" constants.
_EPS = 2.220446049250313e-16
_ORIENT_ERR_BOUND = (3.0 + 16.0 * _EPS) * _EPS
_INCIRCLE_ERR_BOUND = (10.0 + 96.0 * _EPS) * _EPS
# Smallest normal double (2^-1022).  Below it, products carry unbounded
# *relative* rounding error — they may even underflow to an exact zero —
# so the relative error-bound filter is meaningless and the orientation
# test must fall back to exact arithmetic (see orientation_sign).
_MIN_NORMAL = 2.2250738585072014e-308
# In the denormal range the subtraction of the two products is exact and
# each product carries at most half an ulp (2^-1075) of absolute error,
# so a difference larger than a few ulps of the denormal spacing has a
# trustworthy sign.
_DENORMAL_SAFE_DET = 2e-323


class Orientation(IntEnum):
    """Sign of the signed area of triangle ``(a, b, c)``."""

    CLOCKWISE = -1
    COLLINEAR = 0
    COUNTERCLOCKWISE = 1


def orientation_sign(
    ax: float, ay: float, bx: float, by: float, cx: float, cy: float
) -> float:
    """Raw-coordinate form of :func:`orientation_value`.

    The hot loops of the area-query algorithms (point-in-polygon,
    segment intersection) call this directly on floats to avoid
    :class:`Point` attribute access and wrapper overhead; the sign guarantee
    is identical.
    """
    detleft = (ax - cx) * (by - cy)
    detright = (ay - cy) * (bx - cx)
    det = detleft - detright

    # Denormal zone: when BOTH products sit below the normal range their
    # relative rounding error is unbounded (a product of two non-zero
    # differences can even underflow to exact zero), so neither the
    # sign-based early returns nor the relative error bound below can be
    # trusted.  Products that are zero because a *difference* is exactly
    # zero are fine — those are exact.
    if -_MIN_NORMAL < detleft < _MIN_NORMAL and (
        -_MIN_NORMAL < detright < _MIN_NORMAL
    ):
        left_exact_zero = ax == cx or by == cy
        right_exact_zero = ay == cy or bx == cx
        if not (left_exact_zero and right_exact_zero) and (
            -_DENORMAL_SAFE_DET <= det <= _DENORMAL_SAFE_DET
        ):
            return _orientation_exact(ax, ay, bx, by, cx, cy)

    if detleft > 0.0:
        if detright <= 0.0:
            return det
        detsum = detleft + detright
    elif detleft < 0.0:
        if detright >= 0.0:
            return det
        detsum = -detleft - detright
    else:
        return det

    # The two products have the same sign and similar magnitude: the
    # subtraction may have cancelled catastrophically.  Check the error bound
    # and fall back to exact arithmetic when the float result is untrusted.
    if abs(det) >= _ORIENT_ERR_BOUND * detsum:
        return det
    return _orientation_exact(ax, ay, bx, by, cx, cy)


def orientation_value(a: Point, b: Point, c: Point) -> float:
    """Exactly-signed doubled area of triangle ``(a, b, c)``.

    Returns a float whose *sign* is guaranteed correct: positive if the
    points turn counter-clockwise, negative if clockwise, exactly ``0.0`` if
    collinear.  The magnitude is only approximate when the exact fallback is
    taken, but callers of this module only ever use the sign.
    """
    return orientation_sign(a.x, a.y, b.x, b.y, c.x, c.y)


def _orientation_exact(
    ax: float, ay: float, bx: float, by: float, cx: float, cy: float
) -> float:
    fax, fay = Fraction(ax), Fraction(ay)
    fbx, fby = Fraction(bx), Fraction(by)
    fcx, fcy = Fraction(cx), Fraction(cy)
    det = (fax - fcx) * (fby - fcy) - (fay - fcy) * (fbx - fcx)
    if det > 0:
        return 1.0
    if det < 0:
        return -1.0
    return 0.0


def orientation(a: Point, b: Point, c: Point) -> Orientation:
    """Robust orientation of the ordered triple ``(a, b, c)``."""
    value = orientation_value(a, b, c)
    if value > 0.0:
        return Orientation.COUNTERCLOCKWISE
    if value < 0.0:
        return Orientation.CLOCKWISE
    return Orientation.COLLINEAR


def signed_area_sign(ring) -> float:
    """Robust sign of the shoelace signed area of a vertex ring.

    Returns ``1.0`` for a counter-clockwise ring, ``-1.0`` for clockwise,
    and ``0.0`` for an exactly degenerate (zero-area) ring.  The naive
    float shoelace sum cancels catastrophically for thin rings — at
    extreme coordinate scales (hull areas around ``1e-146`` and below)
    even its *sign* is wrong, which silently reversed
    :class:`~repro.geometry.polygon.Polygon` rings built from valid
    counter-clockwise hulls.  As with :func:`orientation_value`, a fast
    float evaluation is trusted only outside a forward error bound;
    inside it the sum is re-evaluated in exact rational arithmetic.

    ``ring`` is a sequence of :class:`Point` (the closing edge implicit).
    """
    total = 0.0
    magnitude = 0.0
    n = len(ring)
    for i, p in enumerate(ring):
        q = ring[(i + 1) % n]
        left = p.x * q.y
        right = p.y * q.x
        total += left - right
        magnitude += abs(left) + abs(right)
    # One rounding per product plus one per addition: 3n + 2 ulps is a
    # comfortable over-estimate of the accumulated forward error.
    if abs(total) > (3.0 * n + 2.0) * _EPS * magnitude:
        return 1.0 if total > 0.0 else -1.0
    exact = Fraction(0)
    for i, p in enumerate(ring):
        q = ring[(i + 1) % n]
        exact += Fraction(p.x) * Fraction(q.y) - Fraction(p.y) * Fraction(q.x)
    if exact > 0:
        return 1.0
    if exact < 0:
        return -1.0
    return 0.0


def incircle(a: Point, b: Point, c: Point, d: Point) -> float:
    """Robustly-signed in-circle test.

    For a *counter-clockwise* triangle ``a, b, c``, the result is positive if
    ``d`` lies strictly inside the circumcircle, negative if strictly
    outside, and exactly ``0.0`` if the four points are cocircular.  (For a
    clockwise triangle the sign flips, as with the classical determinant.)
    """
    adx = a.x - d.x
    ady = a.y - d.y
    bdx = b.x - d.x
    bdy = b.y - d.y
    cdx = c.x - d.x
    cdy = c.y - d.y

    bdxcdy = bdx * cdy
    cdxbdy = cdx * bdy
    alift = adx * adx + ady * ady

    cdxady = cdx * ady
    adxcdy = adx * cdy
    blift = bdx * bdx + bdy * bdy

    adxbdy = adx * bdy
    bdxady = bdx * ady
    clift = cdx * cdx + cdy * cdy

    det = (
        alift * (bdxcdy - cdxbdy)
        + blift * (cdxady - adxcdy)
        + clift * (adxbdy - bdxady)
    )

    permanent = (
        (abs(bdxcdy) + abs(cdxbdy)) * alift
        + (abs(cdxady) + abs(adxcdy)) * blift
        + (abs(adxbdy) + abs(bdxady)) * clift
    )
    if abs(det) >= _INCIRCLE_ERR_BOUND * permanent:
        return det
    return _incircle_exact(a, b, c, d)


def _incircle_exact(a: Point, b: Point, c: Point, d: Point) -> float:
    ax, ay = Fraction(a.x), Fraction(a.y)
    bx, by = Fraction(b.x), Fraction(b.y)
    cx, cy = Fraction(c.x), Fraction(c.y)
    dx, dy = Fraction(d.x), Fraction(d.y)

    adx, ady = ax - dx, ay - dy
    bdx, bdy = bx - dx, by - dy
    cdx, cdy = cx - dx, cy - dy

    alift = adx * adx + ady * ady
    blift = bdx * bdx + bdy * bdy
    clift = cdx * cdx + cdy * cdy

    det = (
        alift * (bdx * cdy - cdx * bdy)
        + blift * (cdx * ady - adx * cdy)
        + clift * (adx * bdy - bdx * ady)
    )
    if det > 0:
        return 1.0
    if det < 0:
        return -1.0
    return 0.0


def circumcenter(a: Point, b: Point, c: Point) -> Point:
    """Circumcentre of the (non-degenerate) triangle ``a, b, c``.

    Raises :class:`ValueError` for collinear input, where no circumcircle
    exists.  Used by the Voronoi dual: a Voronoi vertex is the circumcentre
    of its Delaunay triangle.
    """
    d = 2.0 * ((a.x - c.x) * (b.y - c.y) - (a.y - c.y) * (b.x - c.x))
    if d == 0.0:
        raise ValueError("circumcenter of collinear points is undefined")
    a2 = a.squared_norm()
    b2 = b.squared_norm()
    c2 = c.squared_norm()
    ux = (
        (a2 - c2) * (b.y - c.y) - (b2 - c2) * (a.y - c.y)
    ) / d
    uy = (
        (b2 - c2) * (a.x - c.x) - (a2 - c2) * (b.x - c.x)
    ) / d
    return Point(ux, uy)


def circumradius(a: Point, b: Point, c: Point) -> float:
    """Radius of the circumcircle of triangle ``a, b, c``."""
    return circumcenter(a, b, c).distance_to(a)
