"""Axis-aligned rectangles (MBR algebra).

Every spatial index in :mod:`repro.index` stores and compares minimum
bounding rectangles; the traditional area-query baseline filters with the
query polygon's MBR.  :class:`Rect` is the shared currency for all of that.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.geometry.point import Point


@dataclass(frozen=True, slots=True)
class Rect:
    """A closed axis-aligned rectangle ``[min_x, max_x] x [min_y, max_y]``.

    Degenerate rectangles (zero width and/or height) are allowed — a point's
    MBR is a degenerate rectangle — but inverted bounds are rejected.
    """

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise ValueError(
                f"inverted rectangle bounds: ({self.min_x}, {self.min_y}, "
                f"{self.max_x}, {self.max_y})"
            )

    # -- constructors ------------------------------------------------------

    @staticmethod
    def from_points(points: Iterable[Point]) -> "Rect":
        """The minimum bounding rectangle of a non-empty point collection."""
        iterator = iter(points)
        try:
            first = next(iterator)
        except StopIteration:
            raise ValueError("MBR of an empty point collection is undefined")
        min_x = max_x = first.x
        min_y = max_y = first.y
        for p in iterator:
            if p.x < min_x:
                min_x = p.x
            elif p.x > max_x:
                max_x = p.x
            if p.y < min_y:
                min_y = p.y
            elif p.y > max_y:
                max_y = p.y
        return Rect(min_x, min_y, max_x, max_y)

    @staticmethod
    def from_point(p: Point) -> "Rect":
        """The degenerate MBR of a single point."""
        return Rect(p.x, p.y, p.x, p.y)

    @staticmethod
    def from_bounds(bounds: Sequence[float]) -> "Rect":
        """Build from a ``(min_x, min_y, max_x, max_y)`` sequence."""
        if len(bounds) != 4:
            raise ValueError(f"expected 4 bounds, got {len(bounds)}")
        return Rect(*map(float, bounds))

    # -- basic measures ----------------------------------------------------

    @property
    def width(self) -> float:
        """Extent along x."""
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        """Extent along y."""
        return self.max_y - self.min_y

    @property
    def area(self) -> float:
        """Width times height (0.0 for degenerate rectangles)."""
        return self.width * self.height

    @property
    def margin(self) -> float:
        """Half-perimeter, the R*-tree split criterion."""
        return self.width + self.height

    @property
    def perimeter(self) -> float:
        """Total boundary length (twice the margin)."""
        return 2.0 * (self.width + self.height)

    @property
    def mbr(self) -> "Rect":
        """The rectangle itself — it is its own minimum bounding rectangle.

        Lets a :class:`Rect` stand in wherever only MBR-plus-containment
        region behaviour is needed (window specs in the batch engine's
        shared-frontier machinery, Hilbert anchor computation).
        """
        return self

    @property
    def center(self) -> Point:
        """The rectangle's midpoint."""
        return Point(
            (self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0
        )

    def corners(self) -> Iterator[Point]:
        """The four corners in counter-clockwise order."""
        yield Point(self.min_x, self.min_y)
        yield Point(self.max_x, self.min_y)
        yield Point(self.max_x, self.max_y)
        yield Point(self.min_x, self.max_y)

    # -- relations ---------------------------------------------------------

    def contains_point(self, p: Point) -> bool:
        """True if ``p`` lies inside or on the boundary."""
        return (
            self.min_x <= p.x <= self.max_x
            and self.min_y <= p.y <= self.max_y
        )

    def contains_many(self, xs, ys, *, boundary: bool = True):
        """Vectorized :meth:`contains_point` over coordinate arrays.

        Returns a boolean array of closed-bounds membership, bitwise
        identical to the scalar test per element.  ``boundary`` is
        accepted for kernel-signature uniformity with the other query
        regions; a rectangle's scalar test is always closed, so the flag
        is ignored.
        """
        from repro.geometry.kernels import rect_contains_many

        return rect_contains_many(self, xs, ys)

    def contains_rect(self, other: "Rect") -> bool:
        """True if ``other`` lies entirely inside (or equals) this rectangle."""
        return (
            self.min_x <= other.min_x
            and self.min_y <= other.min_y
            and self.max_x >= other.max_x
            and self.max_y >= other.max_y
        )

    def intersects(self, other: "Rect") -> bool:
        """True if the two closed rectangles share at least one point."""
        return not (
            other.min_x > self.max_x
            or other.max_x < self.min_x
            or other.min_y > self.max_y
            or other.max_y < self.min_y
        )

    def intersection(self, other: "Rect") -> "Rect | None":
        """The overlapping rectangle, or ``None`` if disjoint."""
        if not self.intersects(other):
            return None
        return Rect(
            max(self.min_x, other.min_x),
            max(self.min_y, other.min_y),
            min(self.max_x, other.max_x),
            min(self.max_y, other.max_y),
        )

    def intersection_area(self, other: "Rect") -> float:
        """Area of overlap with ``other`` (0.0 when disjoint)."""
        overlap = self.intersection(other)
        return overlap.area if overlap is not None else 0.0

    def union(self, other: "Rect") -> "Rect":
        """The smallest rectangle covering both."""
        return Rect(
            min(self.min_x, other.min_x),
            min(self.min_y, other.min_y),
            max(self.max_x, other.max_x),
            max(self.max_y, other.max_y),
        )

    def union_point(self, p: Point) -> "Rect":
        """The smallest rectangle covering this one and ``p``."""
        return Rect(
            min(self.min_x, p.x),
            min(self.min_y, p.y),
            max(self.max_x, p.x),
            max(self.max_y, p.y),
        )

    def enlargement(self, other: "Rect") -> float:
        """Area increase needed to absorb ``other`` (Guttman's ChooseLeaf)."""
        return self.union(other).area - self.area

    def distance_to_point(self, p: Point) -> float:
        """Euclidean distance from ``p`` to the closest point of the rectangle.

        Zero when the point is inside.  This is ``MINDIST`` in the R-tree
        nearest-neighbour literature and drives the best-first NN search.
        """
        dx = max(self.min_x - p.x, 0.0, p.x - self.max_x)
        dy = max(self.min_y - p.y, 0.0, p.y - self.max_y)
        return math.hypot(dx, dy)

    def squared_distance_to_point(self, p: Point) -> float:
        """Squared ``MINDIST`` (avoids the sqrt in priority queues)."""
        dx = max(self.min_x - p.x, 0.0, p.x - self.max_x)
        dy = max(self.min_y - p.y, 0.0, p.y - self.max_y)
        return dx * dx + dy * dy

    def expanded(self, amount: float) -> "Rect":
        """A copy grown by ``amount`` on every side (shrunk if negative)."""
        return Rect(
            self.min_x - amount,
            self.min_y - amount,
            self.max_x + amount,
            self.max_y + amount,
        )

    def as_tuple(self) -> tuple[float, float, float, float]:
        """Return ``(min_x, min_y, max_x, max_y)``."""
        return (self.min_x, self.min_y, self.max_x, self.max_y)


def union_all(rects: Iterable[Rect]) -> Rect:
    """The smallest rectangle covering every rectangle in ``rects``."""
    iterator = iter(rects)
    try:
        result = next(iterator)
    except StopIteration:
        raise ValueError("union of an empty rectangle collection is undefined")
    for rect in iterator:
        result = result.union(rect)
    return result
