"""Spatial locality ordering for query batches.

The batch engine's two sharing tricks — a shared window-query frontier for
the traditional method and Voronoi seed reuse for the paper's method — only
pay off when *consecutive* queries in the batch are spatially close.  This
module provides that ordering: query regions are sorted by the Hilbert-curve
index of their MBR centre, so a batch of scattered regions becomes a tour
that visits each spatial neighbourhood once.

The Hilbert curve is preferred over a Z-order (Morton) curve because it has
no long jumps: consecutive curve positions are always adjacent grid cells,
which is exactly the property the seed-reuse greedy walk depends on (walk
length is proportional to the distance between consecutive seeds).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.geometry.rectangle import Rect, union_all
from repro.geometry.region import QueryRegion

#: Hilbert-grid refinement: 2**ORDER cells per axis (65_536 cells total at
#: the default 8 — far finer than any realistic query-size granularity).
DEFAULT_ORDER = 8


def hilbert_index(x: float, y: float, *, order: int = DEFAULT_ORDER) -> int:
    """Hilbert-curve position of the unit-square point ``(x, y)``.

    Coordinates are clamped into ``[0, 1]`` first, then snapped to a
    ``2**order`` by ``2**order`` grid; the returned index is in
    ``[0, 4**order)``.  The classic iterative bit-twiddling formulation
    (Warren, *Hacker's Delight*): per refinement level, fold the quadrant
    into the running distance and rotate/reflect the frame.
    """
    if order <= 0:
        raise ValueError(f"order must be positive, got {order}")
    side = 1 << order
    xi = min(side - 1, max(0, int(x * side)))
    yi = min(side - 1, max(0, int(y * side)))
    distance = 0
    s = side >> 1
    while s > 0:
        rx = 1 if xi & s else 0
        ry = 1 if yi & s else 0
        distance += s * s * ((3 * rx) ^ ry)
        # Rotate the lower-order bits into the sub-quadrant's frame.
        if ry == 0:
            if rx == 1:
                xi = s - 1 - xi
                yi = s - 1 - yi
            xi, yi = yi, xi
        s >>= 1
    return distance


def region_center_key(
    region: QueryRegion, space: Rect, *, order: int = DEFAULT_ORDER
) -> int:
    """Hilbert key of ``region``'s MBR centre, normalised to ``space``."""
    center = region.mbr.center
    width = space.width or 1.0
    height = space.height or 1.0
    return hilbert_index(
        (center.x - space.min_x) / width,
        (center.y - space.min_y) / height,
        order=order,
    )


def locality_order(
    regions: Sequence[QueryRegion],
    space: Optional[Rect] = None,
    *,
    order: int = DEFAULT_ORDER,
) -> List[int]:
    """Indices of ``regions`` sorted into Hilbert-tour order.

    ``space`` defaults to the MBR of all the regions' MBRs, so the ordering
    adapts to workloads concentrated in a sub-area.  The returned
    permutation is stable for equal keys (ties keep submission order),
    making the batch engine's output deterministic.
    """
    if not regions:
        return []
    if space is None:
        space = union_all(region.mbr for region in regions)
    keys = [region_center_key(r, space, order=order) for r in regions]
    return sorted(range(len(regions)), key=keys.__getitem__)
