"""LRU result cache keyed by query-spec objects.

Production query traffic repeats itself: hot map tiles, popular
geofences, dashboards re-issuing the same polygon every refresh.  The
batch engine therefore memoises :class:`~repro.core.stats.QueryResult`
records behind the *spec objects themselves*:
:meth:`repro.query.spec.Query.cache_key` returns the spec normalised for
caching (execution method and projection stripped — they never change
the result rows) or ``None`` for uncacheable specs (those carrying a
``predicate`` closure).  Specs are frozen, hashable dataclasses whose
equality delegates to their geometry's value equality
(:class:`~repro.geometry.polygon.Polygon` compares vertex rings,
:class:`~repro.geometry.circle.Circle` centre and radius), so equal keys
imply identical geometry and therefore identical results.  A custom
:class:`~repro.geometry.region.QueryRegion` without value hashing falls
back to identity semantics: only a query holding the *same object* can
hit its entry (mutating such an object in place after querying is
undefined, exactly as for any dict key).

Correctness guarantees:

* **Method-independence** — the paper's central theorem is that both query
  methods return the same id set for the same region, so a cached result
  may be served regardless of which method would have produced it (the
  cache key normalises the method away for precisely this reason).
* **Invalidation** — every entry is stamped with the database *version*
  (bumped by :meth:`~repro.core.database.SpatialDatabase.insert` /
  ``extend``); a stale stamp is treated as a miss and the entry dropped.
"""

from __future__ import annotations

import warnings
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Hashable, Optional, Tuple

from repro.core.stats import QueryResult

#: Default number of distinct specs remembered by the engine's cache.
#: Note the bound is an *entry count*, not bytes: each entry retains its
#: full result id list, so workloads whose queries return very large
#: results (e.g. 30 %-of-space queries over paper-scale databases) should
#: size ``BatchQueryEngine(cache_capacity=...)`` down accordingly.
DEFAULT_CAPACITY = 256


def region_fingerprint(region) -> Optional[Tuple]:
    """A hashable, exact identity for a query region's geometry.

    .. deprecated:: 1.1
        The engine now caches by the spec objects themselves
        (:meth:`repro.query.spec.Query.cache_key`); nothing in the
        library calls this any more.  Kept one release as a shim for
        external callers: polygons fingerprint as their vertex tuple,
        circles as centre and radius, anything else as ``None``
        (uncacheable), exactly as in 1.0.
    """
    warnings.warn(
        "region_fingerprint is deprecated; cache keys are now the spec "
        "objects themselves (Query.cache_key), see docs/QUERY_API.md",
        DeprecationWarning,
        stacklevel=2,
    )
    vertices = getattr(region, "vertices", None)
    if vertices is not None:
        return ("polygon", tuple((p.x, p.y) for p in vertices))
    center = getattr(region, "center", None)
    radius = getattr(region, "radius", None)
    if center is not None and radius is not None:
        return ("circle", center.x, center.y, radius)
    return None


@dataclass
class CacheStats:
    """Hit/miss accounting for one :class:`ResultCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: misses caused by a version-stamp mismatch (entry existed but the
    #: database had changed since it was stored)
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        """Total ``get`` calls served."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0


@dataclass
class _Entry:
    version: int
    result: QueryResult


@dataclass
class ResultCache:
    """A bounded LRU mapping region fingerprints to query results.

    Entries are stamped with the database version at store time;
    :meth:`get` treats a stamp mismatch as a miss (and drops the entry),
    which makes ``insert``-after-query correct without any explicit
    invalidation hook.  ``capacity <= 0`` disables caching entirely.
    """

    capacity: int = DEFAULT_CAPACITY
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self._entries: "OrderedDict[Hashable, _Entry]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable, version: int) -> Optional[QueryResult]:
        """The cached result for ``key`` at database ``version``, or None.

        A hit returns an independent copy (callers may mutate result ids
        freely) and refreshes the entry's recency.
        """
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        if entry.version != version:
            del self._entries[key]
            self.stats.invalidations += 1
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        result = entry.result
        return QueryResult(ids=list(result.ids), stats=result.stats.copy())

    def put(self, key: Hashable, version: int, result: QueryResult) -> None:
        """Store ``result`` for ``key`` at ``version`` (evicting LRU).

        The entry keeps its own snapshot (ids list + stats copied), so a
        caller of ``run_specs`` mutating the record it was handed cannot
        poison later cache hits.  The copy is cheap since
        :meth:`QueryStats.copy <repro.core.stats.QueryStats.copy>`
        replaced the generic ``dataclasses.replace`` here — the list
        copy is C-speed and the stats block is eight scalars.
        """
        if self.capacity <= 0:
            return
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = _Entry(
            version=version,
            result=QueryResult(
                ids=list(result.ids), stats=result.stats.copy()
            ),
        )
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        """Drop every entry (stats are preserved)."""
        self._entries.clear()
