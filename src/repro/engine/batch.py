"""The batch query engine: heterogeneous spec batches with sharing.

Serving queries one at a time repeats work that a batch can share:

1. **Index descent** — every traditional/window query descends the R-tree
   from the root.  Batched, specs are visited in Hilbert order
   (:mod:`repro.engine.order`) and *overlapping* windows are grouped: one
   window query over the group's union MBR feeds every member, which then
   only re-filters by its own MBR and refines.
2. **Voronoi seeding** — every Voronoi execution (area, window, or kNN)
   runs an index NN search for its seed.  Batched, the seed of the
   previous (spatially adjacent) query is *walked* to the new query's
   position over the Voronoi neighbour graph.  On a Delaunay graph the
   steepest-descent walk provably terminates at the true nearest
   neighbour — if a vertex ``v`` is not the NN of target ``q``, the
   neighbour ``u`` whose cell the segment ``v->q`` enters satisfies
   ``|uq| <= |ux| + |xq| = |vx| + |xq| = |vq|`` (``x`` the crossing
   point), with equality impossible for a distinct site — so the seed is
   exactly the one the index search would have produced, at the cost of a
   few graph hops instead of a root-to-leaf descent.
3. **The query itself** — repeated specs (hot tiles, dashboards) are
   served from an LRU :class:`~repro.engine.cache.ResultCache` keyed by
   the spec objects themselves (see :meth:`repro.query.spec.Query.cache_key`),
   and exact duplicates *within* one batch are computed once.

:meth:`BatchQueryEngine.run_specs` accepts any mix of
:class:`~repro.query.spec.AreaQuery`, :class:`~repro.query.spec.WindowQuery`,
:class:`~repro.query.spec.KnnQuery`, and
:class:`~repro.query.spec.NearestQuery`; specs are grouped by their
planner-resolved execution strategy *after* the Hilbert tour, so each
sharing mechanism sees a spatially coherent sub-tour.  Results are
returned in submission order and are id-identical to executing each spec
alone (both area methods return the same id sets — the paper's theorem —
so this holds for any mix of planned methods).

**Composite specs** (:class:`~repro.query.spec.UnionQuery` /
``Intersection`` / ``Difference``) are *decomposed*: their leaves join
the batch's executable job pool alongside the plain specs, so every
sharing mechanism above applies **across composite siblings** — four
near-coincident windows unioned into one spec share one index traversal,
Voronoi leaves chain seed walks, and a leaf repeated across composites
(or equal to a plain spec in the same batch) executes once.  After the
leaf jobs run, each composite's sorted leaf id lists merge with lazy set
semantics (:func:`repro.query.executor.merge_sorted_ids`) and the
composite's own options apply to the merged rows.
"""

from __future__ import annotations

import math
import time
from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.core.exceptions import EmptyDatabaseError, InvalidQueryAreaError
from repro.core.stats import QueryResult, QueryStats
from repro.core.voronoi_query import voronoi_area_query
from repro.engine.cache import DEFAULT_CAPACITY, ResultCache
from repro.engine.order import locality_order
from repro.engine.planner import QueryPlanner
from repro.geometry.polygon import Polygon
from repro.geometry.region import QueryRegion, interior_seed_position
from repro.query.executor import (
    execute_spec,
    finalize_record,
    merge_sorted_ids,
    resolve_method,
)
from repro.query.spec import (
    AreaQuery,
    CompositeQuery,
    DifferenceQuery,
    IntersectionQuery,
    KnnQuery,
    NearestQuery,
    Query,
    UnionQuery,
    WindowQuery,
)

import numpy as _np

from repro.geometry.kernels import rect_contains_many as _rect_mask

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.database import SpatialDatabase

#: Methods accepted by :meth:`BatchQueryEngine.batch_area_query`.
BATCH_METHODS = ("auto", "traditional", "voronoi")

#: Union-MBR slack for window grouping: a window joins a group only while
#: the union's area stays at or below this factor times the *largest*
#: member window's area.  Groups therefore only form around
#: near-coincident or nested windows (hot tiles, dashboard refreshes) and
#: can never snowball: under uniform density each member scans at most
#: ``slack`` times the largest member's own candidate count, however many
#: windows chain-overlap.  (Comparing against the *sum* of member areas
#: instead would double-count overlap and let a sliding chain of tiles
#: collapse into one unbounded group.)
DEFAULT_WINDOW_SLACK = 1.2


@dataclass
class BatchStats:
    """Work accounting for one :meth:`BatchQueryEngine.run_specs`."""

    total_queries: int = 0
    #: served from the cross-batch LRU result cache
    cache_hits: int = 0
    #: duplicates of an earlier spec in the *same* batch (computed once)
    duplicate_hits: int = 0
    #: specs actually executed against the database
    executed: int = 0
    #: executed specs per concrete method (planner decisions under ``auto``)
    method_counts: Dict[str, int] = field(default_factory=dict)
    #: executed specs per query kind (area/window/knn/nearest)
    kind_counts: Dict[str, int] = field(default_factory=dict)
    #: window groups of size >= 2 that shared one index traversal
    shared_window_groups: int = 0
    #: frontier-strategy specs served from a shared group traversal
    shared_window_queries: int = 0
    #: Voronoi seeds obtained by graph walk (index NN search skipped)
    seed_walk_reuses: int = 0
    #: Voronoi seeds that needed a full index NN search
    seed_index_lookups: int = 0
    #: composite specs answered by decomposition (not cache/dedup hits)
    composite_queries: int = 0
    #: leaf specs contributed to the job pool by composite decomposition
    composite_leaves: int = 0
    #: leaf jobs merged with an identical job already in the pool
    leaf_duplicate_hits: int = 0
    #: composite leaves served from the cross-batch LRU result cache
    leaf_cache_hits: int = 0
    #: wall-clock time of the whole batch in milliseconds
    time_ms: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        """A JSON-ready mapping of every counter (wire/stats frames)."""
        return dict(asdict(self))


@dataclass
class EngineTotals:
    """Lifetime job-pool accounting across every batch an engine ran.

    The per-batch :class:`BatchStats` is reset on every
    :meth:`BatchQueryEngine.run_specs` call; external admission layers —
    the query server's cross-client coalescer in
    :mod:`repro.server.coalescer` — need *cumulative* counters to report
    cache/dedup/sharing behaviour over a whole serving session, so the
    engine absorbs each batch's stats into this running total.
    """

    #: number of :meth:`BatchQueryEngine.run_specs` calls absorbed
    batches: int = 0
    #: total specs submitted across all batches
    total_queries: int = 0
    #: batches holding two or more specs (the ones that could share work)
    coalesced_batches: int = 0
    #: largest single batch absorbed
    max_batch_size: int = 0
    cache_hits: int = 0
    duplicate_hits: int = 0
    executed: int = 0
    shared_window_groups: int = 0
    shared_window_queries: int = 0
    seed_walk_reuses: int = 0
    seed_index_lookups: int = 0
    composite_queries: int = 0
    composite_leaves: int = 0
    leaf_duplicate_hits: int = 0
    leaf_cache_hits: int = 0
    #: summed wall-clock execution time of all batches, milliseconds
    time_ms: float = 0.0

    def absorb(self, stats: BatchStats) -> None:
        """Accumulate one finished batch's :class:`BatchStats`."""
        self.batches += 1
        self.total_queries += stats.total_queries
        if stats.total_queries >= 2:
            self.coalesced_batches += 1
        self.max_batch_size = max(self.max_batch_size, stats.total_queries)
        self.cache_hits += stats.cache_hits
        self.duplicate_hits += stats.duplicate_hits
        self.executed += stats.executed
        self.shared_window_groups += stats.shared_window_groups
        self.shared_window_queries += stats.shared_window_queries
        self.seed_walk_reuses += stats.seed_walk_reuses
        self.seed_index_lookups += stats.seed_index_lookups
        self.composite_queries += stats.composite_queries
        self.composite_leaves += stats.composite_leaves
        self.leaf_duplicate_hits += stats.leaf_duplicate_hits
        self.leaf_cache_hits += stats.leaf_cache_hits
        self.time_ms += stats.time_ms

    def as_dict(self) -> Dict[str, object]:
        """A JSON-ready mapping of every counter (the ``stats`` frame)."""
        data = asdict(self)
        data["time_ms"] = round(float(data["time_ms"]), 3)
        return data


@dataclass
class BatchResult(Sequence[QueryResult]):
    """Per-query records (submission order) plus batch-level accounting.

    Behaves as a sequence of :class:`~repro.core.stats.QueryResult`, so
    existing code written against ``[db.area_query(a) for a in areas]``
    works unchanged.  (:meth:`SpatialDatabase.query_batch
    <repro.core.database.SpatialDatabase.query_batch>` wraps these
    records into lazy handles instead.)
    """

    results: List[QueryResult]
    stats: BatchStats

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, item):
        return self.results[item]

    def __iter__(self):
        return iter(self.results)


def greedy_seed_walk(
    neighbor_table: List[Tuple[int, ...]],
    points,
    start: int,
    target_x: float,
    target_y: float,
    max_hops: int,
) -> Optional[int]:
    """Steepest-descent walk to the point nearest ``(target_x, target_y)``.

    From ``start``, repeatedly move to the neighbour closest to the target;
    stop when no neighbour improves.  On a Delaunay neighbour graph the
    stopping vertex is the global nearest neighbour of the target (see the
    module docstring for the argument).  Returns ``None`` if ``max_hops``
    is exhausted first (caller falls back to the index NN search).
    """
    current = start
    p = points[current]
    best = (p.x - target_x) ** 2 + (p.y - target_y) ** 2
    for _ in range(max_hops):
        next_id = -1
        for neighbor in neighbor_table[current]:
            q = points[neighbor]
            d = (q.x - target_x) ** 2 + (q.y - target_y) ** 2
            if d < best:
                best = d
                next_id = neighbor
        if next_id < 0:
            return current
        current = next_id
    return None


#: Seed walks beat a best-first index NN descent only while the walk is
#: short: each hop costs a handful of neighbour distance evaluations,
#: the descent a few dozen node inspections, so the breakeven sits
#: around this many expected hops.  Beyond it the engine descends the
#: index instead of walking — the walk's purpose is chaining *nearby*
#: queries (clustered tiles, composite siblings), not crossing the map.
_WALK_HOP_BUDGET = 24


def _walk_radius_sq(planner: QueryPlanner) -> float:
    """Squared distance within which a seed walk is expected to pay off.

    The steepest-descent walk advances roughly one site spacing per hop
    (``sqrt(space_area / n)`` under uniform density), so the profitable
    radius is the hop budget times that spacing.  The space extent comes
    from the planner's per-version cache (``index.bounds`` itself walks
    every entry); degenerate extents fall back to "always walk".
    """
    density = planner.density()
    if density <= 0.0:
        return float("inf")
    spacing_sq = 1.0 / density
    return _WALK_HOP_BUDGET * _WALK_HOP_BUDGET * spacing_sq


def _execution_region(spec: Query) -> QueryRegion:
    """The region a Voronoi expansion runs over for ``spec``.

    Area specs expand over their own region; window specs over the
    rectangle-as-polygon (a :class:`Rect` lacks the boundary-crossing
    operations Algorithm 1 needs).
    """
    if isinstance(spec, WindowQuery):
        return Polygon.from_rect(spec.rect)
    return spec.region  # type: ignore[attr-defined]


class BatchQueryEngine:
    """Executes batches of query specs with cross-query sharing.

    Parameters
    ----------
    database:
        The owning :class:`~repro.core.database.SpatialDatabase`.
    cache_capacity:
        LRU result-cache size in distinct specs (``0`` disables caching).
    planner:
        Cost-based planner used for ``method="auto"`` (default: a fresh
        :class:`~repro.engine.planner.QueryPlanner` over ``database``).
    window_slack:
        Union-MBR slack for shared window grouping
        (:data:`DEFAULT_WINDOW_SLACK`).
    """

    def __init__(
        self,
        database: "SpatialDatabase",
        *,
        cache_capacity: int = DEFAULT_CAPACITY,
        planner: Optional[QueryPlanner] = None,
        window_slack: float = DEFAULT_WINDOW_SLACK,
    ) -> None:
        self._db = database
        self.cache = ResultCache(capacity=cache_capacity)
        self.planner = planner or QueryPlanner(database)
        self.window_slack = window_slack
        #: stats of the most recent batch (None before the first one)
        self.last_batch_stats: Optional[BatchStats] = None
        #: lifetime accounting across every batch (admission layers report it)
        self.totals = EngineTotals()

    # -- public API --------------------------------------------------------

    def run_specs(
        self, specs: Sequence[Query], *, use_cache: bool = True
    ) -> BatchResult:
        """Answer every spec in ``specs``; records in submission order.

        Accepts a heterogeneous mix of query kinds.  Id lists are
        identical to executing each spec alone via
        :func:`repro.query.executor.execute_spec`.

        The returned records are **engine-owned and read-only**:
        duplicate submissions share one record object and cached entries
        are stored by reference, so consumers must copy before mutating
        (the lazy result surfaces do — ``.ids()`` returns a fresh list).
        The legacy :meth:`batch_area_query` shim isolates its records
        precisely because pre-spec callers predate that convention.
        """
        specs = list(specs)
        db = self._db
        for spec in specs:
            if not isinstance(spec, Query):
                raise TypeError(f"not a query spec: {spec!r}")
            self._validate_spec(spec)

        started = time.perf_counter()
        stats = BatchStats(total_queries=len(specs))
        results: List[Optional[QueryResult]] = [None] * len(specs)
        version = db.version

        # 1. Cache probe + intra-batch dedup, both keyed by the
        #    (method/projection-normalised) spec objects themselves.
        pending: List[int] = []
        aliases: Dict[int, List[int]] = {}
        first_seen: Dict[Query, int] = {}
        keys = [spec.cache_key() for spec in specs]
        for i, key in enumerate(keys):
            if key is None:  # uncacheable spec (predicate): always execute
                aliases[i] = []
                pending.append(i)
                continue
            if use_cache and self.cache.capacity > 0:
                cached = self.cache.get(key, version)
                if cached is not None:
                    results[i] = cached
                    stats.cache_hits += 1
                    continue
            owner = first_seen.get(key)
            if owner is not None:
                aliases[owner].append(i)
                stats.duplicate_hits += 1
                continue
            first_seen[key] = i
            aliases[i] = []
            pending.append(i)
        stats.executed = len(pending)

        # 2. Decompose composites into executable leaf *jobs*.  A plain
        #    spec is its own single job; a composite contributes its
        #    (recursively flattened) leaves, so siblings share the tour
        #    with everything else.  Identical jobs — a leaf repeated
        #    across composites, or equal to a plain pending spec — merge
        #    into one, and composite leaves may be served straight from
        #    the cross-batch result cache.
        jobs: List[Query] = []
        job_records: List[Optional[QueryResult]] = []
        job_cache_keys: List[Optional[Query]] = []
        seen_jobs: Dict[Query, int] = {}
        trees: Dict[int, object] = {}

        def add_job(leaf: Query, from_composite: bool) -> int:
            key = leaf.cache_key()
            if key is not None:
                existing = seen_jobs.get(key)
                if existing is not None:
                    stats.leaf_duplicate_hits += 1
                    return existing
            job = len(jobs)
            jobs.append(leaf)
            job_cache_keys.append(key)
            record = None
            if key is not None:
                seen_jobs[key] = job
                if from_composite and use_cache and self.cache.capacity > 0:
                    record = self.cache.get(key, version)
                    if record is not None:
                        stats.leaf_cache_hits += 1
            job_records.append(record)
            return job

        def expand(spec: Query, from_composite: bool):
            if isinstance(spec, CompositeQuery):
                if from_composite is False:
                    stats.composite_queries += 1
                return (
                    spec,
                    [expand(part, True) for part in spec.parts],
                )
            if from_composite:
                stats.composite_leaves += 1
            return add_job(spec, from_composite)

        for i in pending:
            trees[i] = expand(specs[i], False)

        # 3. Resolve the concrete method per executable job (planner on
        #    auto), then Hilbert-tour the jobs and split by execution
        #    strategy (each sharing mechanism gets a coherent sub-tour).
        exec_jobs = [j for j in range(len(jobs)) if job_records[j] is None]
        choices = {j: resolve_method(db, jobs[j]) for j in exec_jobs}
        for j in exec_jobs:
            choice = choices[j]
            stats.method_counts[choice] = (
                stats.method_counts.get(choice, 0) + 1
            )
        for i in pending:
            kind = specs[i].kind
            stats.kind_counts[kind] = stats.kind_counts.get(kind, 0) + 1

        anchors = [jobs[j].anchor() for j in exec_jobs]
        tour = [exec_jobs[t] for t in locality_order(anchors)]
        frontier_tour: List[int] = []
        voronoi_tour: List[int] = []
        point_tour: List[int] = []
        for j in tour:
            job = jobs[j]
            if isinstance(job, (KnnQuery, NearestQuery)):
                point_tour.append(j)
            elif choices[j] == "voronoi":
                voronoi_tour.append(j)
            else:  # area/traditional or window/index
                frontier_tour.append(j)

        self._run_window_frontier(
            jobs, frontier_tour, choices, job_records, stats
        )
        self._run_voronoi(jobs, voronoi_tour, job_records, stats)
        self._run_point_queries(
            jobs, point_tour, choices, job_records, stats
        )

        # 4. Assemble submitted specs from their jobs (set-merge for
        #    composites), fill duplicates, and populate the cache —
        #    composite leaves too, so later batches (or later composites)
        #    reuse them.  Every execution path above returns finalized
        #    records (spec options applied once per level).
        stored: set = set()
        for i in pending:
            record = self._assemble(trees[i], job_records)
            assert record is not None
            results[i] = record
            if use_cache and keys[i] is not None:
                self.cache.put(keys[i], version, record)
                stored.add(keys[i])
            for j in aliases[i]:
                # Duplicates share the owner's record by reference:
                # handed-out records are read-only by engine convention
                # (every consumer surface copies on materialisation; the
                # legacy shim isolates its callers).
                results[j] = record
        if use_cache and self.cache.capacity > 0:
            for j, key in enumerate(job_cache_keys):
                # A plain spec IS its own job: its key was already stored
                # above — skip the duplicate put (and its entry snapshot).
                if (
                    key is not None
                    and key not in stored
                    and job_records[j] is not None
                ):
                    self.cache.put(key, version, job_records[j])

        stats.time_ms = (time.perf_counter() - started) * 1000.0
        self.last_batch_stats = stats
        self.totals.absorb(stats)
        return BatchResult(results=list(results), stats=stats)  # type: ignore[arg-type]

    def validate_spec(self, spec: Query) -> None:
        """Raise if ``spec`` cannot be answered by this database.

        The same checks :meth:`run_specs` performs on every submission
        (type, region validity, recursing composites), exposed so
        admission layers — the query server's coalescer — can reject one
        bad request up front instead of poisoning the whole shared batch
        it would have joined.
        """
        if not isinstance(spec, Query):
            raise TypeError(f"not a query spec: {spec!r}")
        self._validate_spec(spec)

    def _validate_spec(self, spec: Query) -> None:
        """Reject specs the database cannot answer (recursing composites)."""
        if isinstance(spec, CompositeQuery):
            for part in spec.parts:
                self._validate_spec(part)
        elif isinstance(spec, AreaQuery):
            if not len(self._db):
                raise EmptyDatabaseError("area query on an empty database")
            if spec.region.area <= 0.0:
                raise InvalidQueryAreaError("query area has zero area")

    def _assemble(
        self, tree, job_records: List[Optional[QueryResult]]
    ) -> QueryResult:
        """Build one submitted spec's record from its executed jobs.

        A leaf tree node is a job index — its record is returned as-is
        (records are treated as immutable once finalized, so sharing one
        between a plain spec and a composite that also claimed it is
        safe).  A composite node merges its children's sorted id lists
        with the spec's set semantics — eager C-level set operations
        here, semantically identical to the lazy generators the
        streaming path uses (pinned by tests) — sums the children's work
        counters (a leaf claimed by several composites is reported by
        each, the same per-query accounting duplicate/cache hits get),
        and applies the composite's own ``predicate``/``limit``.
        """
        if isinstance(tree, int):
            record = job_records[tree]
            assert record is not None
            return record
        spec, children = tree
        child_records = [
            self._assemble(child, job_records) for child in children
        ]
        started = time.perf_counter()
        id_lists = [record.ids for record in child_records]
        if isinstance(spec, UnionQuery):
            ids = sorted(set().union(*id_lists))
        elif isinstance(spec, IntersectionQuery):
            ids = sorted(set(id_lists[0]).intersection(*id_lists[1:]))
        elif isinstance(spec, DifferenceQuery):
            ids = sorted(set(id_lists[0]).difference(*id_lists[1:]))
        else:  # pragma: no cover - trees only hold the three kinds
            ids = list(
                merge_sorted_ids(spec, [iter(lst) for lst in id_lists])
            )
        merged = QueryStats()
        for record in child_records:
            merged = merged.merge(record.stats)
        merged.method = "composite"
        merged.result_size = len(ids)
        merged.time_ms += (time.perf_counter() - started) * 1000.0
        return finalize_record(
            self._db, spec, QueryResult(ids=ids, stats=merged)
        )

    def batch_area_query(
        self,
        regions: Sequence[QueryRegion],
        method: str = "auto",
        *,
        use_cache: bool = True,
    ) -> BatchResult:
        """Answer many area queries at once (region-sequence convenience).

        The legacy surface of :meth:`run_specs`: wraps every region in an
        :class:`~repro.query.spec.AreaQuery` with the given ``method``
        (``"traditional"``, ``"voronoi"``, or ``"auto"``).  Result id
        lists are identical to running each region alone.
        """
        if method not in BATCH_METHODS:
            raise ValueError(
                f"unknown method {method!r}; choose from {BATCH_METHODS}"
            )
        regions = list(regions)
        if not len(self._db):
            raise EmptyDatabaseError("batch area query on an empty database")
        for region in regions:
            if region.area <= 0.0:
                raise InvalidQueryAreaError("query area has zero area")
        batch = self.run_specs(
            [AreaQuery(region, method=method) for region in regions],
            use_cache=use_cache,
        )
        # This legacy surface hands out raw records that pre-spec callers
        # may reasonably mutate (sort, clear, extend), while run_specs
        # shares finalized records with the result cache and between
        # duplicate submissions — so isolate them here, at the one
        # boundary where the read-only convention cannot be assumed.
        return BatchResult(
            results=[
                QueryResult(ids=list(r.ids), stats=r.stats.copy())
                for r in batch.results
            ],
            stats=batch.stats,
        )

    def explain(self, spec_or_region, *, execute: bool = False):
        """Forward to the planner's explain (spec or bare region)."""
        if isinstance(spec_or_region, Query):
            return self.planner.explain_spec(spec_or_region, execute=execute)
        return self.planner.explain(spec_or_region, execute=execute)

    # -- traditional/index: shared window frontier --------------------------

    def _run_window_frontier(
        self,
        specs: Sequence[Query],
        tour: List[int],
        choices: Dict[int, str],
        results: List[Optional[QueryResult]],
        stats: BatchStats,
    ) -> None:
        """Run ``tour`` (Hilbert-ordered indices) with grouped windows.

        Members are area specs executing traditionally (window = region
        MBR, refine = point-in-region) and window specs executing on the
        index (window = the rect itself, refine = rect containment).
        """
        group: List[int] = []
        union = None
        max_member_area = 0.0
        for i in tour:
            mbr = specs[i].anchor()
            if not group:
                group, union, max_member_area = [i], mbr, mbr.area
                continue
            candidate_union = union.union(mbr)
            if candidate_union.area <= self.window_slack * max(
                max_member_area, mbr.area
            ):
                group.append(i)
                union = candidate_union
                max_member_area = max(max_member_area, mbr.area)
            else:
                self._flush_window_group(
                    group, union, specs, choices, results, stats
                )
                group, union, max_member_area = [i], mbr, mbr.area
        if group:
            self._flush_window_group(
                group, union, specs, choices, results, stats
            )

    def _flush_window_group(
        self,
        group: List[int],
        union,
        specs: Sequence[Query],
        choices: Dict[int, str],
        results: List[Optional[QueryResult]],
        stats: BatchStats,
    ) -> None:
        """One index traversal for the whole group, then per-member refine.

        The shared descent's node accesses are attributed to the group's
        first member (splitting them would fabricate fractional counters).

        The shared frontier is columnar end-to-end: one bulk id probe
        (:meth:`~repro.index.base.SpatialIndex.window_ids_array`) over
        the union MBR, candidate coordinates gathered from the
        :class:`~repro.core.store.PointStore` columns by row id, and
        every member answered by array masks — window members' masks ARE
        their answers, area members additionally refine the masked
        candidates with one ``contains_many`` kernel call (PR 4
        vectorised only the pure-window masks; the refine loop was the
        remaining per-candidate Python).  The scalar loop below it is
        kept solely as the equivalence oracle
        (``SpatialDatabase(vectorized=False)``) and for regions without
        a vectorized kernel.
        """
        db = self._db
        if len(group) == 1:
            i = group[0]
            # execute_spec finalizes (applies predicate/limit) itself.
            results[i] = execute_spec(db, specs[i], method=choices[i])
            return
        stats.shared_window_groups += 1
        stats.shared_window_queries += len(group)
        index = db.index
        vectorized = db.vectorized
        kernels = {}
        if vectorized:
            for i in group:
                spec = specs[i]
                if isinstance(spec, AreaQuery):
                    kernel = getattr(spec.region, "contains_many", None)
                    if kernel is None:  # custom region: scalar fallback
                        vectorized = False
                        break
                    kernels[i] = kernel
        nodes_before = index.stats.node_accesses
        group_started = time.perf_counter()
        if vectorized:
            id_array = index.window_ids_array(union)
            store = db.store
            xs = store.xs[id_array]
            ys = store.ys[id_array]
            rows = None
        else:
            entries = index.window_query(union)
            rows = [(p.x, p.y, p, item_id) for p, item_id in entries]
        shared_nodes = index.stats.node_accesses - nodes_before
        shared_ms = (time.perf_counter() - group_started) * 1000.0
        for position, i in enumerate(group):
            spec = specs[i]
            if isinstance(spec, AreaQuery):
                mbr = spec.region.mbr
                refine = spec.region.contains_point
                member_stats = QueryStats(method="traditional")
            else:  # WindowQuery on the index: MBR filter is the query
                mbr = spec.rect
                refine = None
                member_stats = QueryStats(method="index")
            min_x, min_y = mbr.min_x, mbr.min_y
            max_x, max_y = mbr.max_x, mbr.max_y
            member_started = time.perf_counter()
            if vectorized:
                mask = _rect_mask(mbr, xs, ys)
                if refine is None:
                    member_ids = _np.sort(id_array[mask])
                    member_stats.candidates = int(member_ids.shape[0])
                    if spec.limit is not None and spec.predicate is None:
                        # Same ascending prefix finalize_record would
                        # keep — truncate before materialising ints.
                        member_ids = member_ids[: spec.limit]
                    ids = member_ids.tolist()
                else:
                    member_ids = id_array[mask]
                    inside = kernels[i](xs[mask], ys[mask])
                    ids = _np.sort(member_ids[inside]).tolist()
                    candidates = int(member_ids.shape[0])
                    member_stats.candidates = candidates
                    member_stats.validations = candidates
                    member_stats.redundant_validations = (
                        candidates - len(ids)
                    )
            elif refine is None:
                ids = [
                    item_id
                    for x, y, _, item_id in rows
                    if min_x <= x <= max_x and min_y <= y <= max_y
                ]
                ids.sort()
                member_stats.candidates = len(ids)
            else:
                ids = []
                append = ids.append
                candidates = 0
                redundant = 0
                for x, y, point, item_id in rows:
                    if min_x <= x <= max_x and min_y <= y <= max_y:
                        candidates += 1
                        if refine(point):
                            append(item_id)
                        else:
                            redundant += 1
                ids.sort()
                member_stats.candidates = candidates
                member_stats.validations = candidates
                member_stats.redundant_validations = redundant
            member_stats.time_ms = (
                time.perf_counter() - member_started
            ) * 1000.0
            if position == 0:
                member_stats.index_node_accesses = shared_nodes
                member_stats.time_ms += shared_ms
            member_stats.result_size = len(ids)
            results[i] = finalize_record(
                db, spec, QueryResult(ids=ids, stats=member_stats)
            )

    # -- voronoi regions: seed reuse along the tour -------------------------

    def _run_voronoi(
        self,
        specs: Sequence[Query],
        tour: List[int],
        results: List[Optional[QueryResult]],
        stats: BatchStats,
    ) -> None:
        """Run ``tour`` with the previous query's seed as the walk start."""
        if not tour:
            return
        db = self._db
        backend = db.backend
        points = db.store.rows()
        neighbor_table = backend.neighbor_table()
        max_hops = 64 + int(4.0 * math.sqrt(len(points)))
        walk_radius_sq = _walk_radius_sq(self.planner)
        previous_seed: Optional[int] = None
        for i in tour:
            region = _execution_region(specs[i])
            # Seeding work (walk or fallback NN descent) is charged to this
            # query's stats below, so batch and loop counters stay
            # comparable — same invariant _flush_window_group keeps for the
            # shared window descent.
            seeding_started = time.perf_counter()
            seeding_nodes_before = db.index.stats.node_accesses
            position = interior_seed_position(region)
            seed_id: Optional[int] = None
            if previous_seed is not None:
                anchor = points[previous_seed]
                dx = position.x - anchor.x
                dy = position.y - anchor.y
                if dx * dx + dy * dy <= walk_radius_sq:
                    seed_id = greedy_seed_walk(
                        neighbor_table,
                        points,
                        previous_seed,
                        position.x,
                        position.y,
                        max_hops,
                    )
                if seed_id is not None:
                    stats.seed_walk_reuses += 1
            if seed_id is None:
                entry = db.index.nearest_neighbor(position)
                stats.seed_index_lookups += 1
                if entry is None:  # pragma: no cover - guarded by len check
                    results[i] = QueryResult(
                        ids=[], stats=QueryStats(method="voronoi")
                    )
                    continue
                seed_id = entry[1]
            seeding_nodes = (
                db.index.stats.node_accesses - seeding_nodes_before
            )
            seeding_ms = (time.perf_counter() - seeding_started) * 1000.0
            result = voronoi_area_query(
                db.index,
                backend,
                points,
                region,
                seed_id=seed_id,
                store=db.store if db.vectorized else None,
                deleted=db.store.deleted_rows or None,
            )
            result.stats.index_node_accesses += seeding_nodes
            result.stats.time_ms += seeding_ms
            results[i] = finalize_record(db, specs[i], result)
            previous_seed = seed_id

    # -- point queries: kNN / nearest along the tour ------------------------

    def _run_point_queries(
        self,
        specs: Sequence[Query],
        tour: List[int],
        choices: Dict[int, str],
        results: List[Optional[QueryResult]],
        stats: BatchStats,
    ) -> None:
        """Run kNN/nearest specs; Voronoi kNN reuses seeds along the tour.

        Index-method point queries are a plain loop — a best-first descent
        has no frontier worth sharing — but Voronoi kNN executions chain
        exactly like area queries: the previous seed is walked to the next
        query position when the hop is short enough to beat a descent
        (:func:`_walk_radius_sq`), replacing the index NN lookup.
        """
        if not tour:
            return
        db = self._db
        previous_seed: Optional[int] = None
        neighbor_table = None
        max_hops = 0
        walk_radius_sq = _walk_radius_sq(self.planner)
        for i in tour:
            spec = specs[i]
            use_walk = (
                isinstance(spec, KnnQuery)
                and choices[i] == "voronoi"
                and len(db) > 0
                and (spec.k is None or spec.k > 0)  # None = unbounded
            )
            seed_id: Optional[int] = None
            if use_walk and previous_seed is not None:
                if neighbor_table is None:
                    neighbor_table = db.backend.neighbor_table()
                    max_hops = 64 + int(4.0 * math.sqrt(len(db)))
                rows = db.store.rows()
                anchor = rows[previous_seed]
                dx = spec.point.x - anchor.x
                dy = spec.point.y - anchor.y
                if dx * dx + dy * dy <= walk_radius_sq:
                    seed_id = greedy_seed_walk(
                        neighbor_table,
                        rows,
                        previous_seed,
                        spec.point.x,
                        spec.point.y,
                        max_hops,
                    )
                if seed_id is not None:
                    stats.seed_walk_reuses += 1
            if use_walk and seed_id is None:
                stats.seed_index_lookups += 1
            record = execute_spec(
                db, spec, method=choices[i], seed_id=seed_id
            )
            results[i] = record
            if use_walk:
                # The walk target is the spec's own query position, so the
                # stopping vertex (or the first result, which is the NN for
                # unfiltered kNN) anchors the next walk.
                previous_seed = (
                    seed_id
                    if seed_id is not None
                    else (record.ids[0] if record.ids else previous_seed)
                )
