"""Batch query engine and cost-based planner.

This package is the serving layer above :mod:`repro.core`: where ``core``
answers one query, ``engine`` answers *traffic*.

* :mod:`repro.engine.batch` — :class:`BatchQueryEngine`: Hilbert-ordered
  execution of heterogeneous spec batches (see :mod:`repro.query`), with
  a shared window-query frontier (traditional/index strategies), Voronoi
  seed reuse via greedy graph walks (area *and* kNN executions), and
  intra-batch deduplication.
* :mod:`repro.engine.planner` — :class:`QueryPlanner`: the paper's I/O
  cost model (validations as record fetches, node accesses as page reads)
  used to pick the cheapest execution method for **every** query kind,
  with ``explain_spec()`` exposing predicted vs measured costs.
* :mod:`repro.engine.cache` — :class:`ResultCache`: an LRU result cache
  keyed by the (hashable) spec objects themselves, version-stamped so
  inserts invalidate.
* :mod:`repro.engine.order` — Hilbert-curve locality ordering shared by
  all of the above.

The usual entry points are
:meth:`repro.core.database.SpatialDatabase.query` and
:meth:`~repro.core.database.SpatialDatabase.query_batch`, which construct
and reuse one engine per database.
"""

from repro.engine.batch import (
    BatchQueryEngine,
    BatchResult,
    BatchStats,
    greedy_seed_walk,
)
from repro.engine.cache import (
    CacheStats,
    ResultCache,
    region_fingerprint,
)
from repro.engine.order import hilbert_index, locality_order
from repro.engine.planner import (
    CostEstimate,
    CostModel,
    PlanExplanation,
    QueryPlanner,
)

__all__ = [
    "BatchQueryEngine",
    "BatchResult",
    "BatchStats",
    "greedy_seed_walk",
    "ResultCache",
    "CacheStats",
    "region_fingerprint",
    "hilbert_index",
    "locality_order",
    "QueryPlanner",
    "CostModel",
    "CostEstimate",
    "PlanExplanation",
]
