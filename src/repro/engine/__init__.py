"""Batch query engine and cost-based planner.

This package is the serving layer above :mod:`repro.core`: where ``core``
answers one area query, ``engine`` answers *traffic*.

* :mod:`repro.engine.batch` — :class:`BatchQueryEngine`: Hilbert-ordered
  batch execution with a shared window-query frontier (traditional
  method), Voronoi seed reuse via greedy graph walks (paper's method), and
  intra-batch deduplication.
* :mod:`repro.engine.planner` — :class:`QueryPlanner`: the paper's I/O
  cost model (validations as record fetches, node accesses as page reads)
  used to pick ``traditional`` vs ``voronoi`` per query, with an
  ``explain()`` API exposing predicted vs measured costs.
* :mod:`repro.engine.cache` — :class:`ResultCache`: an LRU result cache
  keyed by exact region fingerprint, version-stamped so inserts
  invalidate.
* :mod:`repro.engine.order` — Hilbert-curve locality ordering shared by
  all of the above.

The usual entry points are
:meth:`repro.core.database.SpatialDatabase.batch_area_query` and
:meth:`~repro.core.database.SpatialDatabase.explain`, which construct and
reuse one engine per database.
"""

from repro.engine.batch import (
    BatchQueryEngine,
    BatchResult,
    BatchStats,
    greedy_seed_walk,
)
from repro.engine.cache import (
    CacheStats,
    ResultCache,
    region_fingerprint,
)
from repro.engine.order import hilbert_index, locality_order
from repro.engine.planner import (
    CostEstimate,
    CostModel,
    PlanExplanation,
    QueryPlanner,
)

__all__ = [
    "BatchQueryEngine",
    "BatchResult",
    "BatchStats",
    "greedy_seed_walk",
    "ResultCache",
    "CacheStats",
    "region_fingerprint",
    "hilbert_index",
    "locality_order",
    "QueryPlanner",
    "CostModel",
    "CostEstimate",
    "PlanExplanation",
]
