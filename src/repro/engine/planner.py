"""Cost-based query planning: choose the cheaper area-query method per query.

The paper's two methods have complementary cost profiles (its Section IV,
and our ``benchmarks/bench_ablation_iocost.py``):

* the **traditional** filter–refine baseline pays one index *window* query
  plus one refinement per point in the query MBR — cost grows with
  ``density * area(MBR)``, i.e. it is punished by irregular polygons whose
  MBR is much larger than the polygon;
* the **Voronoi** expansion pays one index *NN* descent plus one refinement
  per internal point and per shell cell — cost grows with
  ``density * area(polygon) + perimeter * sqrt(density)``, i.e. it is
  punished by skinny high-perimeter polygons over sparse data, where the
  boundary shell dwarfs the interior.

:class:`QueryPlanner` turns those formulas into per-query I/O estimates
(validations as record fetches, index node accesses as page reads — the
counters of :mod:`repro.core.stats`), weighs them with a
:class:`CostModel`, and picks the cheaper method.  ``method="auto"`` on
:meth:`SpatialDatabase.area_query <repro.core.database.SpatialDatabase.area_query>`
and the batch engine route through it, and :meth:`QueryPlanner.explain`
exposes the whole decision — predicted and, optionally, measured costs —
for inspection.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.core.stats import QueryStats
from repro.geometry.rectangle import Rect
from repro.geometry.region import QueryRegion

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.database import SpatialDatabase

#: The two executable methods, in the order estimates are reported.
PLANNABLE_METHODS = ("traditional", "voronoi")


@dataclass(frozen=True)
class CostModel:
    """Weights converting :class:`QueryStats` counters into one cost number.

    The unit is arbitrary (only ratios matter for planning); calibration
    rescales the weights so the unit becomes approximately one millisecond
    on the measured database.  Defaults reflect the in-memory relative
    costs observed on the seed benchmarks: a refinement (10-vertex
    point-in-polygon test) is the unit, an index node visit costs about a
    third of it, a segment-crossing test about a quarter.
    """

    #: cost of one exact refinement test (the paper's record validation)
    validation_cost: float = 1.0
    #: cost of one index node access (page read in the paper's setting)
    node_access_cost: float = 0.35
    #: cost of one segment-vs-boundary test (Voronoi expansion only)
    segment_test_cost: float = 0.25
    #: expected boundary-shell cells per unit of ``perimeter * sqrt(density)``
    shell_width_factor: float = 1.0

    def cost_of(self, stats: QueryStats) -> float:
        """Apply the weights to *measured* counters of one query."""
        return (
            self.validation_cost * stats.validations
            + self.node_access_cost * stats.index_node_accesses
            + self.segment_test_cost * stats.segment_tests
        )


@dataclass(frozen=True)
class CostEstimate:
    """Predicted work for running one region with one method."""

    method: str
    validations: float
    node_accesses: float
    segment_tests: float
    #: scalar cost under the planner's :class:`CostModel`
    cost: float


@dataclass
class PlanExplanation:
    """The planner's full decision record for one region.

    ``estimates`` always holds both methods' predictions; ``actual`` is
    populated only by :meth:`QueryPlanner.explain` with ``execute=True``,
    in which case ``prediction_correct`` says whether the predicted winner
    also won under measured counters.
    """

    chosen: str
    estimates: Dict[str, CostEstimate]
    actual: Dict[str, QueryStats] = field(default_factory=dict)
    actual_costs: Dict[str, float] = field(default_factory=dict)

    @property
    def predicted_cost(self) -> float:
        """Cost predicted for the chosen method."""
        return self.estimates[self.chosen].cost

    @property
    def prediction_correct(self) -> Optional[bool]:
        """Did the predicted winner measure cheapest?  None before execute."""
        if not self.actual_costs:
            return None
        measured_winner = min(self.actual_costs, key=self.actual_costs.get)
        return measured_winner == self.chosen

    def render(self) -> str:
        """A small aligned table (used by ``python -m repro batch``)."""
        lines = [
            f"{'method':>12} | {'est. valid.':>11} {'est. nodes':>10} "
            f"{'est. cost':>10}"
            + ("" if not self.actual_costs else f" | {'meas. cost':>10}")
        ]
        for method in PLANNABLE_METHODS:
            estimate = self.estimates[method]
            marker = "*" if method == self.chosen else " "
            line = (
                f"{marker}{method:>11} | {estimate.validations:>11.1f} "
                f"{estimate.node_accesses:>10.1f} {estimate.cost:>10.2f}"
            )
            if self.actual_costs:
                line += f" | {self.actual_costs[method]:>10.2f}"
            lines.append(line)
        return "\n".join(lines)


class QueryPlanner:
    """Predicts per-method costs for a database and picks the cheaper one.

    Parameters
    ----------
    database:
        The :class:`~repro.core.database.SpatialDatabase` whose size,
        extent, and index fanout parameterise the estimates.
    model:
        Initial :class:`CostModel`; replaced by :meth:`calibrate`.
    """

    def __init__(
        self,
        database: "SpatialDatabase",
        model: Optional[CostModel] = None,
    ) -> None:
        self._db = database
        self.model = model or CostModel()
        self._space_cache: Optional[tuple] = None

    # -- database summary --------------------------------------------------

    def _space(self) -> Rect:
        # index.bounds walks every stored entry, so cache it per version.
        version = self._db.version
        if self._space_cache is not None and self._space_cache[0] == version:
            return self._space_cache[1]
        bounds = self._db.index.bounds
        if bounds is None or bounds.area <= 0.0:
            bounds = Rect(0.0, 0.0, 1.0, 1.0)
        self._space_cache = (version, bounds)
        return bounds

    def density(self) -> float:
        """Points per unit of space area (the estimates' scale factor)."""
        space = self._space()
        return len(self._db) / space.area if space.area else float(len(self._db))

    def _fanout(self) -> int:
        return max(2, int(getattr(self._db.index, "max_entries", 16)))

    def _depth(self) -> float:
        n = max(2, len(self._db))
        return max(1.0, math.log(n, self._fanout()))

    # -- estimation --------------------------------------------------------

    def estimate(self, region: QueryRegion) -> Dict[str, CostEstimate]:
        """Predicted :class:`CostEstimate` for both methods on ``region``."""
        n = len(self._db)
        density = self.density()
        fanout = self._fanout()
        depth = self._depth()
        mbr_area = min(region.mbr.area, self._space().area)
        region_area = min(region.area, mbr_area)
        perimeter = float(getattr(region, "perimeter", 4.0 * math.sqrt(mbr_area)))

        # Traditional: one window descent + every MBR resident refined.
        candidates = min(float(n), density * mbr_area)
        window_leaves = candidates / fanout
        traditional_nodes = depth + 2.0 * window_leaves
        traditional = CostEstimate(
            method="traditional",
            validations=candidates,
            node_accesses=traditional_nodes,
            segment_tests=0.0,
            cost=(
                self.model.validation_cost * candidates
                + self.model.node_access_cost * traditional_nodes
            ),
        )

        # Voronoi: one NN descent + internal points + a one-cell-thick
        # boundary shell (mean Voronoi cell diameter ~ 1/sqrt(density)).
        internal = min(float(n), density * region_area)
        shell = (
            self.model.shell_width_factor * perimeter * math.sqrt(density)
            if density > 0
            else 0.0
        )
        shell = min(float(n), shell)
        validations = min(float(n), internal + shell)
        segment_tests = 4.0 * shell  # ~6 neighbours/cell, some pre-visited
        voronoi_nodes = depth + 3.0
        voronoi = CostEstimate(
            method="voronoi",
            validations=validations,
            node_accesses=voronoi_nodes,
            segment_tests=segment_tests,
            cost=(
                self.model.validation_cost * validations
                + self.model.node_access_cost * voronoi_nodes
                + self.model.segment_test_cost * segment_tests
            ),
        )
        return {"traditional": traditional, "voronoi": voronoi}

    def choose(self, region: QueryRegion) -> str:
        """The predicted-cheaper method for ``region`` (ties: voronoi)."""
        estimates = self.estimate(region)
        if estimates["traditional"].cost < estimates["voronoi"].cost:
            return "traditional"
        return "voronoi"

    def explain(
        self, region: QueryRegion, *, execute: bool = False
    ) -> PlanExplanation:
        """The decision record for ``region``.

        With ``execute=True`` both methods are actually run and their
        measured stats/costs recorded next to the predictions — the
        ``EXPLAIN ANALYZE`` of this engine.
        """
        estimates = self.estimate(region)
        explanation = PlanExplanation(
            chosen=self.choose(region), estimates=estimates
        )
        if execute:
            for method in PLANNABLE_METHODS:
                result = self._db.area_query(region, method=method)
                explanation.actual[method] = result.stats
                explanation.actual_costs[method] = self.model.cost_of(
                    result.stats
                )
        return explanation

    # -- calibration -------------------------------------------------------

    def calibrate(
        self, probe_regions: Sequence[QueryRegion]
    ) -> CostModel:
        """Fit the cost weights to measured wall time on this database.

        Runs both methods over ``probe_regions``, then solves the 2x2
        least-squares system ``time ~ v * (validations + r * segment_tests)
        + a * node_accesses`` for the per-validation cost ``v`` and
        per-node cost ``a`` (``r`` is the fixed segment/validation cost
        ratio of the current model).  Falls back to the current model if
        the system is degenerate (e.g. all-zero counters or near-collinear
        probes).  The fitted model is installed on the planner and
        returned; its cost unit is then milliseconds.
        """
        ratio = (
            self.model.segment_test_cost / self.model.validation_cost
            if self.model.validation_cost
            else 0.25
        )
        samples: List[QueryStats] = []
        for region in probe_regions:
            for method in PLANNABLE_METHODS:
                samples.append(self._db.area_query(region, method=method).stats)
        # Least squares over features (weighted validations, node accesses).
        s_ff = s_fg = s_gg = s_ft = s_gt = 0.0
        for stats in samples:
            f = stats.validations + ratio * stats.segment_tests
            g = float(stats.index_node_accesses)
            t = stats.time_ms
            s_ff += f * f
            s_fg += f * g
            s_gg += g * g
            s_ft += f * t
            s_gt += g * t
        determinant = s_ff * s_gg - s_fg * s_fg
        if determinant <= 1e-12:
            return self.model
        v = (s_ft * s_gg - s_gt * s_fg) / determinant
        a = (s_gt * s_ff - s_ft * s_fg) / determinant
        if v <= 0.0:
            return self.model
        a = max(0.0, a)
        self.model = CostModel(
            validation_cost=v,
            node_access_cost=a,
            segment_test_cost=ratio * v,
            shell_width_factor=self.model.shell_width_factor,
        )
        return self.model
