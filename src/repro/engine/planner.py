"""Cost-based query planning for every query kind.

The paper's two area-query methods have complementary cost profiles (its
Section IV, and our ``benchmarks/bench_ablation_iocost.py``):

* the **traditional** filter–refine baseline pays one index *window* query
  plus one refinement per point in the query MBR — cost grows with
  ``density * area(MBR)``, i.e. it is punished by irregular polygons whose
  MBR is much larger than the polygon;
* the **Voronoi** expansion pays one index *NN* descent plus one refinement
  per internal point and per shell cell — cost grows with
  ``density * area(polygon) + perimeter * sqrt(density)``, i.e. it is
  punished by skinny high-perimeter polygons over sparse data, where the
  boundary shell dwarfs the interior.

The same trade-off recurs for the other query kinds: a **window** query
can run natively on the index or as a Voronoi expansion over the
rectangle-as-polygon, and a **kNN** query can descend the index
best-first or expand incrementally over the Voronoi neighbour graph
(cost ~``6k`` neighbour inspections, independent of the database size).

:class:`QueryPlanner` turns those formulas into per-query I/O estimates
(validations as record fetches, index node accesses as page reads — the
counters of :mod:`repro.core.stats`), weighs them with a
:class:`CostModel`, and picks the cheapest method.  Every
``method="auto"`` spec routes through :meth:`QueryPlanner.plan`, and
:meth:`QueryPlanner.explain_spec` (or ``.explain()`` on a lazy
:class:`~repro.query.result.QueryResult`) exposes the whole decision —
predicted and, optionally, measured costs.

Composite specs (:mod:`repro.query.spec` union/intersection/difference)
are planned by **recursion**: each part is estimated with the method the
planner would run it with, the counters sum, and the explanation nests
one :class:`PlanExplanation` per part — mirroring exactly how the batch
engine decomposes the composite into a heterogeneous leaf batch.
:meth:`QueryPlanner.calibrate` fits the cost weights from measured probe
queries of **every** kind (area, window, and kNN — composite routing
leans on the window/kNN estimates, so they are no longer extrapolated
from area-only fits).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.core.stats import QueryStats
from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.geometry.region import QueryRegion
from repro.query.spec import (
    AreaQuery,
    CompositeQuery,
    KnnQuery,
    NearestQuery,
    Query,
    WindowQuery,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.database import SpatialDatabase

#: The two executable area-query methods, in the order estimates are
#: reported (window and kNN kinds report ``"index"``/``"voronoi"``).
PLANNABLE_METHODS = ("traditional", "voronoi")


@dataclass(frozen=True)
class CostModel:
    """Weights converting :class:`QueryStats` counters into one cost number.

    The unit is arbitrary (only ratios matter for planning); calibration
    rescales the weights so the unit becomes approximately one millisecond
    on the measured database.  Defaults reflect the in-memory relative
    costs observed on the seed benchmarks: a refinement (10-vertex
    point-in-polygon test) is the unit, an index node visit costs about a
    third of it, a segment-crossing test about a quarter.
    """

    #: cost of one exact refinement test (the paper's record validation)
    validation_cost: float = 1.0
    #: cost of one index node access (page read in the paper's setting)
    node_access_cost: float = 0.35
    #: cost of one segment-vs-boundary test (Voronoi expansion only)
    segment_test_cost: float = 0.25
    #: expected boundary-shell cells per unit of ``perimeter * sqrt(density)``
    shell_width_factor: float = 1.0
    #: distance evaluations per confirmed Voronoi-kNN result (~ the mean
    #: Voronoi degree; :meth:`QueryPlanner.calibrate` fits it from
    #: measured kNN probes)
    knn_expansion_factor: float = 6.0

    def cost_of(self, stats: QueryStats) -> float:
        """Apply the weights to *measured* counters of one query."""
        return (
            self.validation_cost * stats.validations
            + self.node_access_cost * stats.index_node_accesses
            + self.segment_test_cost * stats.segment_tests
        )


@dataclass(frozen=True)
class CostEstimate:
    """Predicted work for running one region with one method."""

    method: str
    validations: float
    node_accesses: float
    segment_tests: float
    #: scalar cost under the planner's :class:`CostModel`
    cost: float


@dataclass
class PlanExplanation:
    """The planner's full decision record for one region.

    ``estimates`` always holds both methods' predictions; ``actual`` is
    populated only by :meth:`QueryPlanner.explain` with ``execute=True``,
    in which case ``prediction_correct`` says whether the predicted winner
    also won under measured counters.  For a composite spec, ``chosen``
    is ``"composite"`` (execution is always decomposition), the single
    estimate is the sum over the parts' planned leaf estimates, and
    ``parts`` holds one nested explanation per part — the full recursive
    decomposition the executor will run.
    """

    chosen: str
    estimates: Dict[str, CostEstimate]
    actual: Dict[str, QueryStats] = field(default_factory=dict)
    actual_costs: Dict[str, float] = field(default_factory=dict)
    #: nested per-part explanations (composite specs only)
    parts: List["PlanExplanation"] = field(default_factory=list)

    @property
    def predicted_cost(self) -> float:
        """Cost predicted for the chosen method."""
        return self.estimates[self.chosen].cost

    @property
    def prediction_correct(self) -> Optional[bool]:
        """Did the predicted winner measure cheapest?  None before execute."""
        if not self.actual_costs:
            return None
        measured_winner = min(self.actual_costs, key=self.actual_costs.get)
        return measured_winner == self.chosen

    def render(self) -> str:
        """A small aligned table (used by ``python -m repro batch``).

        Rows come from whatever methods the spec's kind can execute
        (``traditional``/``voronoi`` for areas, ``index``/``voronoi``
        for windows and kNN, ``index`` alone for 1-NN); measured columns
        appear for the methods that have actually run.
        """
        lines = [
            f"{'method':>12} | {'est. valid.':>11} {'est. nodes':>10} "
            f"{'est. cost':>10}"
            + ("" if not self.actual_costs else f" | {'meas. cost':>10}")
        ]
        for method, estimate in self.estimates.items():
            marker = "*" if method == self.chosen else " "
            line = (
                f"{marker}{method:>11} | {estimate.validations:>11.1f} "
                f"{estimate.node_accesses:>10.1f} {estimate.cost:>10.2f}"
            )
            if self.actual_costs:
                measured = self.actual_costs.get(method)
                line += (
                    f" | {measured:>10.2f}"
                    if measured is not None
                    else f" | {'-':>10}"
                )
            lines.append(line)
        for position, part in enumerate(self.parts):
            lines.append(f"  part {position}:")
            lines.extend(
                "  " + part_line for part_line in part.render().splitlines()
            )
        return "\n".join(lines)


class QueryPlanner:
    """Predicts per-method costs for a database and picks the cheaper one.

    Parameters
    ----------
    database:
        The :class:`~repro.core.database.SpatialDatabase` whose size,
        extent, and index fanout parameterise the estimates.
    model:
        Initial :class:`CostModel`; replaced by :meth:`calibrate`.
    """

    def __init__(
        self,
        database: "SpatialDatabase",
        model: Optional[CostModel] = None,
    ) -> None:
        self._db = database
        # Plan memo: (cache_key, db version) -> chosen method.  A plan
        # depends only on the spec's geometry/kind, the database summary
        # statistics (keyed by version), and the cost model (assigning a
        # new model — calibrate() — clears the memo via the setter), so
        # repeated specs — hot tiles, every batch round of a benchmark,
        # the server's coalesced traffic — skip re-estimating.  Bounded.
        self._plan_memo: Dict[object, str] = {}
        self.model = model or CostModel()
        self._space_cache: Optional[tuple] = None

    @property
    def model(self) -> CostModel:
        """The active :class:`CostModel` (assignment clears the plan memo)."""
        return self._model

    @model.setter
    def model(self, value: CostModel) -> None:
        self._model = value
        self._plan_memo.clear()

    # -- database summary --------------------------------------------------

    def _space(self) -> Rect:
        # index.bounds walks every stored entry, so cache it per version.
        version = self._db.version
        if self._space_cache is not None and self._space_cache[0] == version:
            return self._space_cache[1]
        bounds = self._db.index.bounds
        if bounds is None or bounds.area <= 0.0:
            bounds = Rect(0.0, 0.0, 1.0, 1.0)
        self._space_cache = (version, bounds)
        return bounds

    def density(self) -> float:
        """Points per unit of space area (the estimates' scale factor)."""
        space = self._space()
        return len(self._db) / space.area if space.area else float(len(self._db))

    def _fanout(self) -> int:
        return max(2, int(getattr(self._db.index, "max_entries", 16)))

    def _depth(self) -> float:
        n = max(2, len(self._db))
        return max(1.0, math.log(n, self._fanout()))

    # -- estimation --------------------------------------------------------

    def estimate(self, region: QueryRegion) -> Dict[str, CostEstimate]:
        """Predicted :class:`CostEstimate` for both methods on ``region``."""
        n = len(self._db)
        density = self.density()
        fanout = self._fanout()
        depth = self._depth()
        mbr_area = min(region.mbr.area, self._space().area)
        region_area = min(region.area, mbr_area)
        perimeter = float(getattr(region, "perimeter", 4.0 * math.sqrt(mbr_area)))

        # Traditional: one window descent + every MBR resident refined.
        candidates = min(float(n), density * mbr_area)
        window_leaves = candidates / fanout
        traditional_nodes = depth + 2.0 * window_leaves
        traditional = CostEstimate(
            method="traditional",
            validations=candidates,
            node_accesses=traditional_nodes,
            segment_tests=0.0,
            cost=(
                self.model.validation_cost * candidates
                + self.model.node_access_cost * traditional_nodes
            ),
        )

        # Voronoi: one NN descent + internal points + a one-cell-thick
        # boundary shell (mean Voronoi cell diameter ~ 1/sqrt(density)).
        internal = min(float(n), density * region_area)
        shell = (
            self.model.shell_width_factor * perimeter * math.sqrt(density)
            if density > 0
            else 0.0
        )
        shell = min(float(n), shell)
        validations = min(float(n), internal + shell)
        segment_tests = 4.0 * shell  # ~6 neighbours/cell, some pre-visited
        voronoi_nodes = depth + 3.0
        voronoi = CostEstimate(
            method="voronoi",
            validations=validations,
            node_accesses=voronoi_nodes,
            segment_tests=segment_tests,
            cost=(
                self.model.validation_cost * validations
                + self.model.node_access_cost * voronoi_nodes
                + self.model.segment_test_cost * segment_tests
            ),
        )
        return {"traditional": traditional, "voronoi": voronoi}

    def choose(self, region: QueryRegion) -> str:
        """The predicted-cheaper method for ``region`` (ties: voronoi)."""
        estimates = self.estimate(region)
        if estimates["traditional"].cost < estimates["voronoi"].cost:
            return "traditional"
        return "voronoi"

    def explain(
        self, region: QueryRegion, *, execute: bool = False
    ) -> PlanExplanation:
        """The decision record for ``region``.

        With ``execute=True`` both methods are actually run and their
        measured stats/costs recorded next to the predictions — the
        ``EXPLAIN ANALYZE`` of this engine.  Equivalent to
        :meth:`explain_spec` on ``AreaQuery(region)``.
        """
        return self.explain_spec(AreaQuery(region), execute=execute)

    # -- spec-level planning (all query kinds) ------------------------------

    def estimate_spec(self, spec: Query) -> Dict[str, CostEstimate]:
        """Predicted :class:`CostEstimate` per executable method of ``spec``.

        Keys are the concrete methods of the spec's kind (``"auto"`` never
        appears); insertion order is the reporting order of
        :meth:`PlanExplanation.render` and the tie-break order of
        :meth:`plan`.
        """
        if isinstance(spec, AreaQuery):
            return self.estimate(spec.region)
        if isinstance(spec, WindowQuery):
            return self._estimate_window(spec.rect)
        if isinstance(spec, KnnQuery):
            return self._estimate_knn(spec)
        if isinstance(spec, NearestQuery):
            return {"index": self._estimate_point_descent("index", 1.0)}
        if isinstance(spec, CompositeQuery):
            return {"composite": self._estimate_composite(spec)}
        raise TypeError(f"not a query spec: {spec!r}")

    def _estimate_composite(self, spec: CompositeQuery) -> CostEstimate:
        """Predicted cost of decomposing ``spec`` into leaf plans.

        Recurses into every part, takes the estimate of the method the
        planner would actually run it with (:meth:`plan` — explicit part
        methods are honoured), and sums the counters.  The batch engine's
        cross-sibling sharing (one frontier per window group, walked
        seeds) makes this an upper bound; it is what composite routing
        decisions and ``explain`` report.
        """
        validations = node_accesses = segment_tests = cost = 0.0
        for part in spec.parts:
            chosen = self.estimate_spec(part)[self.plan(part)]
            validations += chosen.validations
            node_accesses += chosen.node_accesses
            segment_tests += chosen.segment_tests
            cost += chosen.cost
        return CostEstimate(
            method="composite",
            validations=validations,
            node_accesses=node_accesses,
            segment_tests=segment_tests,
            cost=cost,
        )

    def _estimate_window(self, window: Rect) -> Dict[str, CostEstimate]:
        """Window estimates: native index query vs Voronoi expansion.

        Reuses :meth:`estimate` — a :class:`Rect` exposes the same
        ``mbr``/``area``/``perimeter`` surface the area formulas read, and
        for a rectangle the MBR *is* the region, so the traditional
        estimate degenerates to the native index path with *free*
        refinement (rectangle containment is two comparisons, not a
        point-in-polygon walk) and the Voronoi estimate is exactly the
        expansion over the rectangle-as-polygon.
        """
        base = self.estimate(window)
        traditional = base["traditional"]
        index = CostEstimate(
            method="index",
            validations=0.0,
            node_accesses=traditional.node_accesses,
            segment_tests=0.0,
            cost=self.model.node_access_cost * traditional.node_accesses,
        )
        return {"index": index, "voronoi": base["voronoi"]}

    def _estimate_point_descent(
        self, method: str, k: float
    ) -> CostEstimate:
        """Cost of a best-first index descent returning ``k`` entries."""
        fanout = self._fanout()
        depth = self._depth()
        # One root-to-leaf descent plus ~2 extra leaves per fanout-full
        # page of results; each visited leaf scores its entries.
        nodes = depth + 2.0 * (k / fanout)
        validations = fanout * depth + k
        return CostEstimate(
            method=method,
            validations=validations,
            node_accesses=nodes,
            segment_tests=0.0,
            cost=(
                self.model.validation_cost * validations
                + self.model.node_access_cost * nodes
            ),
        )

    def _estimate_knn(self, spec: KnnQuery) -> Dict[str, CostEstimate]:
        """kNN estimates: best-first index descent vs Voronoi expansion.

        The Voronoi expansion pays one index NN descent for the seed and
        then ``knn_expansion_factor`` (~6, calibratable) neighbour
        distance evaluations per confirmed result, independent of the
        database size — it wins for small ``k``; the index path
        amortises better as ``k`` approaches a leaf-page multiple.  An
        unbounded spec (``k=None``) is costed at its ``limit`` if set,
        else at the full database size (the eager materialisation cost —
        streaming consumption stops wherever the consumer does).
        """
        if spec.k is None:
            k = float(
                spec.limit
                if spec.limit is not None
                else max(1, len(self._db))
            )
        else:
            k = float(max(0, spec.k))
        index = self._estimate_point_descent("index", k)
        depth = self._depth()
        validations = 1.0 + self.model.knn_expansion_factor * k
        voronoi_nodes = depth + 1.0
        voronoi = CostEstimate(
            method="voronoi",
            validations=validations,
            node_accesses=voronoi_nodes,
            segment_tests=0.0,
            cost=(
                self.model.validation_cost * validations
                + self.model.node_access_cost * voronoi_nodes
            ),
        )
        return {"index": index, "voronoi": voronoi}

    def plan(self, spec: Query) -> str:
        """The concrete execution method for ``spec``.

        Explicit spec methods are honoured as-is; ``"auto"`` picks the
        cheapest estimate.  Guard rails where the cost model has no say:
        an empty database and degenerate (zero-area) windows always route
        point/window kinds to the index, which handles both gracefully;
        area kinds keep the legacy tie-break (voronoi).
        """
        if spec.method != "auto":
            return spec.method
        if isinstance(spec, CompositeQuery):
            return "composite"  # always decomposition; parts plan per leaf
        key = spec.cache_key()
        memo_key = None
        if key is not None:
            memo_key = (key, self._db.version)
            cached = self._plan_memo.get(memo_key)
            if cached is not None:
                return cached
        choice = self._plan_uncached(spec)
        if memo_key is not None:
            if len(self._plan_memo) >= 1024:
                self._plan_memo.clear()
            self._plan_memo[memo_key] = choice
        return choice

    def _plan_uncached(self, spec: Query) -> str:
        """The actual decision behind :meth:`plan`'s memo."""
        if isinstance(spec, AreaQuery):
            return self.choose(spec.region)
        if isinstance(spec, NearestQuery):
            return "index"
        if len(self._db) == 0:
            return "index"
        if isinstance(spec, WindowQuery) and spec.rect.area <= 0.0:
            return "index"
        estimates = self.estimate_spec(spec)
        return min(estimates, key=lambda method: estimates[method].cost)

    def explain_spec(
        self, spec: Query, *, execute: bool = False
    ) -> PlanExplanation:
        """The decision record for ``spec`` (any query kind).

        With ``execute=True`` every executable method of the kind is run
        and its measured stats/costs recorded next to the predictions —
        the ``EXPLAIN ANALYZE`` of this engine.  Methods that the spec's
        current state cannot execute (a Voronoi expansion over a
        degenerate window, any method on a spec the database rejects) are
        skipped rather than raised: their row simply shows no measured
        cost, matching the guard rails :meth:`plan` applies when routing.
        """
        estimates = self.estimate_spec(spec)
        explanation = PlanExplanation(
            chosen=self.plan(spec), estimates=estimates
        )
        if isinstance(spec, CompositeQuery):
            explanation.parts = [
                self.explain_spec(part, execute=execute)
                for part in spec.parts
            ]
        if execute:
            from repro.core.exceptions import (
                EmptyDatabaseError,
                InvalidQueryAreaError,
            )
            from repro.query.executor import execute_spec

            for method in estimates:
                try:
                    result = execute_spec(self._db, spec, method=method)
                except (EmptyDatabaseError, InvalidQueryAreaError):
                    continue  # not executable in this state: no measurement
                explanation.actual[method] = result.stats
                explanation.actual_costs[method] = self.model.cost_of(
                    result.stats
                )
        return explanation

    # -- calibration -------------------------------------------------------

    def calibrate(
        self,
        probe_regions: Sequence[QueryRegion],
        *,
        probe_windows: Optional[Sequence[Rect]] = None,
        probe_points: Optional[Sequence[Tuple[Point, int]]] = None,
    ) -> CostModel:
        """Fit the cost weights to measured wall time on this database.

        Probes every executable method of every kind — area
        (``probe_regions``, both paper methods), window
        (``probe_windows``, index and Voronoi), and kNN
        (``probe_points`` as ``(position, k)`` pairs, index and Voronoi)
        — then solves the 2x2 least-squares system ``time ~ v * f +
        a * node_accesses`` jointly over all samples, where the
        per-record feature ``f = max(validations, candidates) + r *
        segment_tests`` (``candidates`` stands in for the point-kind and
        native-window executions, which count their per-record work —
        distance evaluations, rectangle scans — there rather than as
        refinements; ``r`` is the fixed segment/validation cost ratio of
        the current model).  So the window and kNN cost formulas are now
        fitted on their own measurements, not just reused area weights.

        ``probe_windows`` / ``probe_points`` default to probes *derived*
        from the regions (their MBRs; MBR centres with alternating small
        ``k``), so any existing region-only call fits every kind; pass
        explicit empty sequences to restrict the fit.

        The measured Voronoi-kNN expansion additionally fits
        :attr:`CostModel.knn_expansion_factor` — the mean number of
        distance evaluations per confirmed neighbour that the kNN
        formula multiplies by ``k``.

        Falls back to the current model if the system is degenerate
        (e.g. no probes, all-zero counters, or near-collinear samples).
        The fitted model is installed on the planner and returned; its
        cost unit is then milliseconds.
        """
        ratio = (
            self.model.segment_test_cost / self.model.validation_cost
            if self.model.validation_cost
            else 0.25
        )
        from repro.query.executor import execute_spec

        probe_regions = list(probe_regions)
        if probe_windows is None:
            probe_windows = [region.mbr for region in probe_regions]
        if probe_points is None:
            probe_points = [
                (
                    Point(
                        (region.mbr.min_x + region.mbr.max_x) / 2.0,
                        (region.mbr.min_y + region.mbr.max_y) / 2.0,
                    ),
                    4 if position % 2 == 0 else 16,
                )
                for position, region in enumerate(probe_regions)
            ]

        samples: List[QueryStats] = []
        expansion_ratios: List[float] = []
        for region in probe_regions:
            for method in PLANNABLE_METHODS:
                samples.append(
                    execute_spec(
                        self._db, AreaQuery(region), method=method
                    ).stats
                )
        for window in probe_windows:
            for method in ("index", "voronoi"):
                if method == "voronoi" and window.area <= 0.0:
                    continue  # degenerate windows route to the index
                samples.append(
                    execute_spec(
                        self._db, WindowQuery(window), method=method
                    ).stats
                )
        for position, k in probe_points:
            if k <= 0:
                continue
            for method in ("index", "voronoi"):
                stats = execute_spec(
                    self._db, KnnQuery(position, k), method=method
                ).stats
                samples.append(stats)
                if method == "voronoi" and stats.result_size:
                    expansion_ratios.append(
                        stats.candidates / stats.result_size
                    )

        # Joint least squares over features (per-record work, node accesses).
        s_ff = s_fg = s_gg = s_ft = s_gt = 0.0
        for stats in samples:
            f = (
                float(max(stats.validations, stats.candidates))
                + ratio * stats.segment_tests
            )
            g = float(stats.index_node_accesses)
            t = stats.time_ms
            s_ff += f * f
            s_fg += f * g
            s_gg += g * g
            s_ft += f * t
            s_gt += g * t
        determinant = s_ff * s_gg - s_fg * s_fg
        knn_factor = (
            sum(expansion_ratios) / len(expansion_ratios)
            if expansion_ratios
            else self.model.knn_expansion_factor
        )
        if determinant <= 1e-12:
            return self.model
        v = (s_ft * s_gg - s_gt * s_fg) / determinant
        a = (s_gt * s_ff - s_ft * s_fg) / determinant
        if v <= 0.0:
            return self.model
        a = max(0.0, a)
        self.model = CostModel(
            validation_cost=v,
            node_access_cost=a,
            segment_test_cost=ratio * v,
            shell_width_factor=self.model.shell_width_factor,
            knn_expansion_factor=knn_factor,
        )
        return self.model
