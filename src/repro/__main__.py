"""Command-line entry point: ``python -m repro <command>``.

Commands
--------
``demo``
    One-shot demonstration: build a database, run one area spec with both
    methods, print the work-counter comparison.
``query``
    Declarative query runner: load specs from a JSON file
    (``--spec-file``, format of :mod:`repro.query.serialize` — leaf
    kinds, ``union``/``intersection``/``difference`` composites, and
    unbounded ``knn`` specs without a ``k``), answer them as one
    heterogeneous batch, print per-spec summaries and, optionally, the
    planner's ``--explain`` tables.  ``--first N`` instead *streams* the
    first ``N`` rows of each spec lazily (composites and unbounded kNN
    never materialise their full result).  ``--remote HOST:PORT`` sends
    the specs to a running ``serve`` instance over the NDJSON protocol
    instead of building a local database (``--first`` then uses the
    chunked wire stream).
``batch``
    Batch-engine demonstration: serve a repeated-spec trace through
    :meth:`SpatialDatabase.query_batch`, print the planner's ``explain``
    for a sample spec and the loop-vs-batch throughput table.
``serve``
    Start the concurrent NDJSON query server (:mod:`repro.server`) over a
    generated database or a persisted snapshot (``--load``), with
    cross-client batch coalescing, chunked result streaming, and
    write frames (``insert``/``extend``/``delete``); see
    ``docs/SERVER.md``.
``mutate``
    Send write frames to a running ``serve`` instance: repeatable
    ``--insert X,Y`` and ``--delete ROW`` options (inserts apply first,
    then deletes), each acknowledged with its assigned row ids and the
    post-write database version.  ``--from-file OPS.ndjson`` bulk-applies
    newline-delimited JSON operations (``{"op": "insert", "x": ..., "y":
    ...}``, ``{"op": "extend", "points": [[x, y], ...]}``, ``{"op":
    "delete", "row": ...}``) in file order before any flag-driven writes
    — the shape a moving-objects trace serialises to.
``subscribe``
    Register standing queries against a running ``serve`` instance
    (repeatable ``--window X1,Y1,X2,Y2`` and ``--knn X,Y,K``), print
    each initial result, then stream the server's pushed ``notify``
    deltas until ``--count`` notifications arrived or ``--duration``
    seconds elapsed.
``snapshot``
    Persist a generated database to a ``.npz`` snapshot
    (:mod:`repro.io.persist`) for later ``serve --load``.
``experiments``
    Forwarders to :mod:`repro.workloads.experiments` (tables/figures of the
    paper); everything after ``experiments`` is passed through, e.g.
    ``python -m repro experiments table2 --paper-scale``.
``figures``
    Render the paper's Fig. 2 and Fig. 3 as SVG files.
``info``
    Version, package inventory, and the experiment index.
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import Optional, Sequence


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro import AreaQuery, SpatialDatabase, random_query_polygon
    from repro.workloads.generators import uniform_points

    n = args.points
    print(f"Building a database of {n:,} uniform points...")
    db = SpatialDatabase.from_points(
        uniform_points(n, seed=args.seed), backend_kind="scipy"
    ).prepare()
    area = random_query_polygon(
        args.query_size, rng=random.Random(args.seed + 1)
    )
    voronoi = db.query(AreaQuery(area, method="voronoi"))
    traditional = db.query(AreaQuery(area, method="traditional"))
    assert voronoi.ids() == traditional.ids()
    print(
        f"query size {args.query_size:.0%}: {len(voronoi)} results\n"
        f"  voronoi:     {voronoi.stats.candidates:>7,} candidates  "
        f"{voronoi.stats.time_ms:8.2f} ms\n"
        f"  traditional: {traditional.stats.candidates:>7,} candidates  "
        f"{traditional.stats.time_ms:8.2f} ms\n"
        f"  candidates saved: "
        f"{1 - voronoi.stats.candidates / traditional.stats.candidates:.0%}"
    )
    return 0


def _parse_address(text: str) -> tuple:
    """Split a ``HOST:PORT`` argument (IPv6 hosts may be bracketed)."""
    host, separator, port = text.rpartition(":")
    if not separator or not port.isdigit():
        raise SystemExit(
            f"--remote expects HOST:PORT, got {text!r}"
        )
    return host.strip("[]") or "127.0.0.1", int(port)


def _cmd_query_remote(args: argparse.Namespace, specs) -> int:
    """Answer the spec file against a running server (``--remote``)."""
    from repro.server import QueryClient

    host, port = _parse_address(args.remote)
    with QueryClient(host, port, timeout=args.timeout) as client:
        print(
            f"Connected to {host}:{port} "
            f"({client.hello['server']}, {client.hello['points']:,} points)"
        )
        if args.first is not None:
            header = f"{'#':>3}  {'spec':<52} first {args.first} rows"
            print(header)
            print("-" * len(header))
            for i, spec in enumerate(specs):
                with client.stream(
                    spec, chunk_size=max(1, args.first)
                ) as stream:
                    rows = []
                    for row in stream:
                        rows.append(row)
                        if len(rows) >= args.first:
                            break
                description = spec.describe()
                if len(description) > 52:
                    description = description[:49] + "..."
                print(f"{i:>3}  {description:<52} {rows}")
            return 0
        header = (
            f"{'#':>3}  {'spec':<52} {'method':>11} {'rows':>7} {'ms':>8}"
        )
        print(header)
        print("-" * len(header))
        for i, spec in enumerate(specs):
            result = client.query(spec, explain=args.explain)
            description = spec.describe()
            if len(description) > 52:
                description = description[:49] + "..."
            print(
                f"{i:>3}  {description:<52} "
                f"{result.stats.get('method', '?'):>11} "
                f"{len(result.ids):>7,} "
                f"{result.stats.get('time_ms', 0.0):>8.2f}"
            )
            if result.degraded:
                print(
                    f"     !! DEGRADED RESULT: shard(s) "
                    f"{result.shards_failed or '?'} unreachable — "
                    f"rows from those shards are missing"
                )
            if args.explain and result.explain:
                print(result.explain)
        stats = client.stats()
        coalescer = stats["coalescer"]
        print(
            f"\nserver answered {coalescer['requests']} requests in "
            f"{coalescer['batches']} coalesced batches "
            f"(engine cache hits: {stats['engine']['cache_hits']})"
        )
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    import pathlib

    from repro import SpatialDatabase, load_specs
    from repro.workloads.generators import uniform_points

    text = pathlib.Path(args.spec_file).read_text(encoding="utf-8")
    specs = load_specs(text)
    if not specs:
        print("spec file holds no specs", file=sys.stderr)
        return 1

    if args.remote is not None:
        return _cmd_query_remote(args, specs)

    print(f"Building a database of {args.points:,} uniform points...")
    db = SpatialDatabase.from_points(
        uniform_points(args.points, seed=args.seed), backend_kind="scipy"
    ).prepare()

    if args.first is not None:
        header = f"{'#':>3}  {'spec':<52} first {args.first} rows"
        print(header)
        print("-" * len(header))
        for i, spec in enumerate(specs):
            rows = db.query(spec).first(args.first)
            description = spec.describe()
            if len(description) > 52:
                description = description[:49] + "..."
            print(f"{i:>3}  {description:<52} {rows}")
        return 0

    batch = db.query_batch(specs)
    header = f"{'#':>3}  {'spec':<52} {'method':>11} {'rows':>7} {'ms':>8}"
    print(header)
    print("-" * len(header))
    for i, result in enumerate(batch):
        stats = result.stats
        description = result.spec.describe()
        if len(description) > 52:
            description = description[:49] + "..."
        print(
            f"{i:>3}  {description:<52} {stats.method:>11} "
            f"{stats.result_size:>7,} {stats.time_ms:>8.2f}"
        )
    stats = batch.stats
    print(
        f"\n{stats.total_queries} specs: {stats.executed} executed, "
        f"{stats.cache_hits} cache hits, {stats.duplicate_hits} batch "
        f"duplicates, {stats.time_ms:.1f} ms total"
    )
    if args.explain:
        for i, result in enumerate(batch):
            print(f"\nexplain #{i}: {result.spec.describe()}")
            print(result.explain().render())
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    from repro import SpatialDatabase
    from repro.workloads.experiments import (
        ExperimentConfig,
        make_query_trace,
        render_batch_table,
        run_batch_throughput_experiment,
    )
    from repro.workloads.generators import uniform_points

    print(f"Building a database of {args.points:,} uniform points...")
    db = SpatialDatabase.from_points(
        uniform_points(args.points, seed=args.seed), backend_kind="scipy"
    ).prepare()

    probes = make_query_trace(args.query_size, 4, 1, seed=args.seed + 17)
    model = db.engine.planner.calibrate([spec.region for spec in probes])
    print(
        f"Calibrated cost model: validation {model.validation_cost:.4f} ms, "
        f"node access {model.node_access_cost:.4f} ms, "
        f"kNN expansion x{model.knn_expansion_factor:.1f} "
        "(area + window + kNN probes)"
    )

    sample = probes[0]
    print("\nPlanner decision for a sample spec (predicted vs measured):")
    print(db.explain(sample, execute=True).render())

    def progress(message: str) -> None:
        print(f"  [{message}]", file=sys.stderr)

    rows = run_batch_throughput_experiment(
        ExperimentConfig(seed=args.seed),
        distinct=args.queries,
        repeat=args.repeat,
        query_size=args.query_size,
        database=db,
        progress=progress,
    )
    print(
        f"\nThroughput over {args.queries * args.repeat} requests "
        f"({args.queries} distinct regions x {args.repeat} hits):"
    )
    print(render_batch_table(rows))
    return 0


def _build_or_load_database(args: argparse.Namespace):
    """The served database: a ``--load`` snapshot or generated points."""
    from repro import SpatialDatabase
    from repro.workloads.generators import uniform_points

    if getattr(args, "load", None):
        from repro.io.persist import load_database

        print(f"Loading database snapshot {args.load} ...")
        db = load_database(args.load, prepare=True)
        print(f"  {len(db):,} points restored (row ids preserved)")
        return db
    print(f"Building a database of {args.points:,} uniform points...")
    db = SpatialDatabase.from_points(
        uniform_points(args.points, seed=args.seed), backend_kind="scipy"
    )
    if len(db):
        db.prepare()
    else:
        # ``--points 0`` starts an empty, write-first server (the shape
        # cluster workers boot in); the Voronoi backend builds lazily
        # once the first rows arrive.
        print("  starting empty; awaiting writes")
    return db


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.server import QueryServer

    db = _build_or_load_database(args)

    async def run() -> None:
        server = QueryServer(
            db,
            host=args.host,
            port=args.port,
            window_ms=args.window_ms,
            max_batch=args.max_batch,
            max_queue=args.max_queue,
            chunk_size=args.chunk_size,
        )
        host, port = await server.start()
        print(
            f"Serving {len(db):,} points on {host}:{port} "
            f"(coalescing window {args.window_ms:g} ms, "
            f"max batch {args.max_batch}, "
            f"max queue {server.coalescer.max_queue}, "
            f"chunk size {args.chunk_size})"
        )
        print("Press Ctrl-C to stop.")
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await server.stop()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        print("\nstopped")
    return 0


def _load_mutation_file(path: str) -> list:
    """Parse a ``--from-file`` NDJSON operations file.

    Each non-blank line is one JSON object with an ``op`` key:
    ``{"op": "insert", "x": ..., "y": ...}``, ``{"op": "extend",
    "points": [[x, y], ...]}``, or ``{"op": "delete", "row": ...}``.
    Malformed lines abort with a line-numbered error before anything is
    sent — a bulk file applies entirely or not at all locally.
    """
    import json
    import pathlib

    operations = []
    text = pathlib.Path(path).read_text(encoding="utf-8")
    for number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
            op = record["op"]
            if op == "insert":
                operations.append(
                    ("insert", (float(record["x"]), float(record["y"])))
                )
            elif op == "extend":
                operations.append(
                    (
                        "extend",
                        [(float(x), float(y)) for x, y in record["points"]],
                    )
                )
            elif op == "delete":
                operations.append(("delete", int(record["row"])))
            else:
                raise ValueError(f"unknown op {op!r}")
        except (ValueError, KeyError, TypeError) as exc:
            raise SystemExit(f"{path}:{number}: bad operation line: {exc}")
    return operations


def _cmd_mutate(args: argparse.Namespace) -> int:
    from repro.server import QueryClient

    host, port = _parse_address(args.remote)
    operations = []
    if args.from_file:
        operations.extend(_load_mutation_file(args.from_file))
    for value in args.insert or []:
        try:
            x_text, y_text = value.split(",")
            operations.append(("insert", (float(x_text), float(y_text))))
        except ValueError:
            raise SystemExit(f"--insert expects X,Y, got {value!r}")
    for row in args.delete or []:
        operations.append(("delete", row))
    if not operations:
        print(
            "nothing to do: pass --insert X,Y, --delete ROW, "
            "and/or --from-file OPS.ndjson"
        )
        return 1
    with QueryClient(host, port, timeout=args.timeout) as client:
        print(
            f"Connected to {host}:{port} "
            f"({client.hello['server']}, {client.hello['points']:,} points)"
        )
        ack = None
        for op, payload in operations:
            if op == "insert":
                ack = client.insert(*payload)
                print(
                    f"  insert ({payload[0]:g}, {payload[1]:g}) -> "
                    f"row {ack.rows[0]} (version {ack.version})"
                )
            elif op == "extend":
                ack = client.extend(payload)
                print(
                    f"  extend {len(payload)} points -> rows "
                    f"{ack.rows[0]}..{ack.rows[-1]} (version {ack.version})"
                )
            else:
                ack = client.delete(payload)
                print(
                    f"  delete row {payload} (version {ack.version})"
                )
        print(f"{ack.points:,} live points after {len(operations)} writes")
    return 0


def _cmd_subscribe(args: argparse.Namespace) -> int:
    import time as time_module

    from repro.query.spec import KnnQuery, WindowQuery
    from repro.server import QueryClient

    host, port = _parse_address(args.remote)
    specs = []
    for value in args.window or []:
        try:
            bounds = tuple(float(part) for part in value.split(","))
            if len(bounds) != 4:
                raise ValueError("expected 4 coordinates")
            specs.append(WindowQuery(bounds))
        except ValueError:
            raise SystemExit(f"--window expects X1,Y1,X2,Y2, got {value!r}")
    for value in args.knn or []:
        try:
            x_text, y_text, k_text = value.split(",")
            specs.append(
                KnnQuery((float(x_text), float(y_text)), int(k_text))
            )
        except ValueError:
            raise SystemExit(f"--knn expects X,Y,K, got {value!r}")
    if not specs:
        print("nothing to do: pass --window X1,Y1,X2,Y2 and/or --knn X,Y,K")
        return 1
    with QueryClient(host, port) as client:
        print(
            f"Connected to {host}:{port} "
            f"({client.hello['server']}, {client.hello['points']:,} points)"
        )
        subscriptions = {}
        for spec in specs:
            subscription = client.subscribe(spec)
            subscriptions[subscription.id] = spec
            print(
                f"  #{subscription.id} {spec.describe()}: "
                f"{len(subscription.ids)} rows at version "
                f"{subscription.version}"
            )
        print(
            f"streaming notifications (count <= {args.count}, "
            f"duration <= {args.duration:g} s) ..."
        )
        received = 0
        deadline = time_module.monotonic() + args.duration
        while received < args.count:
            remaining = deadline - time_module.monotonic()
            if remaining <= 0:
                break
            batch = client.notifications(
                timeout=min(remaining, 0.25),
                max_count=args.count - received,
            )
            for note in batch:
                received += 1
                print(
                    f"  #{note.subscription_id} v{note.version}: "
                    f"+{note.added} -{note.removed}"
                )
        print(f"{received} notifications received")
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    import time as time_module

    from repro.cluster.launcher import start_cluster

    snapshot_state = None
    points = None
    if args.load:
        from repro.cluster.persist import load_cluster_state

        print(f"Loading cluster snapshot {args.load} ...")
        snapshot_state = load_cluster_state(args.load)
        if int(snapshot_state["workers"]) != args.workers:
            raise SystemExit(
                f"snapshot was taken with {snapshot_state['workers']} "
                f"workers, --workers says {args.workers}"
            )
        print(
            f"  {len(snapshot_state['rows']):,} points across "
            f"{snapshot_state['workers']} shards (row ids preserved)"
        )
    else:
        from repro.workloads.generators import uniform_points

        print(f"Building {args.points:,} uniform points...")
        points = [
            (p.x, p.y) for p in uniform_points(args.points, seed=args.seed)
        ]
    print(
        f"Spawning {args.workers} worker(s)"
        + (
            f" + {args.workers} replica(s)"
            if args.replicas
            else ""
        )
        + " on ephemeral ports..."
    )
    cluster = start_cluster(
        args.workers,
        points=points,
        snapshot_state=snapshot_state,
        host=args.host,
        port=args.port,
        window_ms=args.window_ms,
        replicas=args.replicas,
        supervise=args.supervise,
        health_interval=args.health_interval,
    )
    try:
        coordinator = cluster.coordinator
        for shard_range in coordinator.shard_map.ranges:
            worker = cluster.workers[shard_range.worker]
            line = (
                f"  worker {shard_range.worker} on "
                f"{worker.host}:{worker.port} serves Hilbert keys "
                f"[{shard_range.lo}, {shard_range.hi})"
            )
            if shard_range.replica is not None and cluster.replica_workers:
                replica = cluster.replica_workers[shard_range.replica]
                line += (
                    f" (replica on {replica.host}:{replica.port})"
                )
            print(line)
        print(
            f"Cluster of {args.workers} workers serving "
            f"{coordinator.total_live:,} points on "
            f"{cluster.host}:{cluster.port} (protocol v1; point your "
            f"clients at the router)"
        )
        if args.replicas:
            print(
                "Writes mirror synchronously to replicas; reads fail "
                "over when a primary is down."
            )
        if args.supervise:
            print(
                "Supervision on: dead workers respawn and reload "
                "automatically."
            )
        print("Press Ctrl-C to stop.")
        while True:
            time_module.sleep(3600)
    except KeyboardInterrupt:
        print("\nstopped")
    finally:
        if args.save_on_exit:
            from repro.cluster.persist import save_cluster

            written = save_cluster(args.save_on_exit, cluster.coordinator)
            print(
                f"wrote cluster snapshot {written} (reload it with "
                f"`python -m repro cluster --workers {args.workers} "
                f"--load {written}`)"
            )
        cluster.close()
    return 0


def _render_histogram_rows(rows) -> None:
    """Print aligned ``name count mean p50 p95 p99 max`` latency rows."""
    header = ("", "count", "mean", "p50", "p95", "p99", "max")
    table = [header]
    for name, histogram in rows:
        table.append(
            (
                name,
                f"{histogram.get('count', 0):,}",
                *(
                    f"{float(histogram.get(field, 0.0)):.3f}"
                    for field in (
                        "mean_ms",
                        "p50_ms",
                        "p95_ms",
                        "p99_ms",
                        "max_ms",
                    )
                ),
            )
        )
    widths = [
        max(len(row[column]) for row in table)
        for column in range(len(header))
    ]
    for row in table:
        print(
            "    "
            + row[0].ljust(widths[0])
            + "".join(
                value.rjust(width + 2)
                for value, width in zip(row[1:], widths[1:])
            )
        )


def _render_stats_frame(frame: dict) -> None:
    """Human-readable rendering of a ``stats`` frame (any server)."""
    for section in ("server", "coalescer", "engine", "subscriptions"):
        counters = frame.get(section)
        if counters is None:
            continue
        print(f"{section}:")
        for key in sorted(counters):
            value = counters[key]
            if isinstance(value, dict):
                continue  # nested histograms render in the latency table
            print(f"    {key} = {value:,}" if isinstance(value, int)
                  else f"    {key} = {value}")
    latency = frame.get("latency")
    if latency:
        print("latency (ms):")
        rows = [("admission_wait", latency.get("admission_wait", {}))]
        rows += sorted(latency.get("kinds", {}).items())
        _render_histogram_rows(rows)
    cluster = frame.get("cluster")
    if cluster:
        print("cluster:")
        print(
            f"    {cluster['workers']} workers, "
            f"{cluster['points']:,} live points, "
            f"version {cluster['version']}, "
            f"{cluster['rebalances']} rebalance(s)"
        )
        live = cluster.get("live", [])
        health = cluster.get("health") or {}
        primary_health = health.get("primaries", [])
        replica_health = health.get("replicas", [])
        dirty = cluster.get("replica_dirty", [])
        for shard_range in cluster.get("ranges", []):
            worker = shard_range["worker"]
            count = live[worker] if worker < len(live) else "?"
            line = (
                f"    shard [{shard_range['lo']}, {shard_range['hi']}) "
                f"-> worker {worker} ({count:,} live"
            )
            if worker < len(primary_health):
                line += f", {primary_health[worker]}"
            line += ")"
            slot = shard_range.get("replica")
            if slot is not None and slot < len(replica_health):
                state = replica_health[slot]
                if slot < len(dirty) and dirty[slot]:
                    state += " DIRTY"
                line += f" replica {slot} ({state})"
            print(line)
        if cluster.get("replicas"):
            print(
                f"    fault tolerance: {cluster['replicas']} replica(s), "
                f"{cluster.get('failovers', 0)} failover read(s), "
                f"{cluster.get('degraded_results', 0)} degraded "
                f"result(s), {cluster.get('mirror_failures', 0)} mirror "
                f"failure(s), {cluster.get('recoveries', 0)} recover(ies)"
            )
        router = cluster.get("router")
        if router:
            print(
                "    router: "
                + "  ".join(
                    f"{key}={router[key]:,}" for key in sorted(router)
                )
            )


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.server import QueryClient

    host, port = _parse_address(args.remote)
    with QueryClient(host, port, timeout=args.timeout) as client:
        print(
            f"Connected to {host}:{port} "
            f"({client.hello['server']}, {client.hello['points']:,} points)"
        )
        frame = client.stats()
    _render_stats_frame(frame)
    return 0


def _cmd_snapshot(args: argparse.Namespace) -> int:
    from repro import SpatialDatabase
    from repro.io.persist import save_database
    from repro.workloads.generators import uniform_points

    print(f"Building a database of {args.points:,} uniform points...")
    db = SpatialDatabase.from_points(
        uniform_points(args.points, seed=args.seed), backend_kind="scipy"
    )
    written = save_database(args.out, db)
    print(
        f"wrote {written} ({len(db):,} points; serve it with "
        f"`python -m repro serve --load {written}`)"
    )
    return 0


def _cmd_experiments(argv: Sequence[str]) -> int:
    from repro.workloads.experiments import main as experiments_main

    return experiments_main(list(argv))


def _cmd_figures(args: argparse.Namespace) -> int:
    import pathlib

    from repro import SpatialDatabase, random_query_polygon
    from repro.viz.figures import (
        render_candidate_comparison,
        render_voronoi_delaunay,
    )
    from repro.workloads.generators import uniform_points

    out_dir = pathlib.Path(args.output)
    out_dir.mkdir(parents=True, exist_ok=True)
    db = SpatialDatabase.from_points(
        uniform_points(4000, seed=2), backend_kind="scipy"
    ).prepare()
    area = random_query_polygon(0.12, rng=random.Random(5))
    (out_dir / "fig2.svg").write_text(
        render_candidate_comparison(db, area), encoding="utf-8"
    )
    (out_dir / "fig3.svg").write_text(
        render_voronoi_delaunay(uniform_points(60, seed=9)),
        encoding="utf-8",
    )
    print(f"wrote {out_dir / 'fig2.svg'} and {out_dir / 'fig3.svg'}")
    return 0


def _cmd_info() -> int:
    import repro

    print(f"repro {repro.__version__} — Voronoi-diagram-based area queries")
    print("reproduction of Li, 'Area Queries Based on Voronoi Diagrams', ICDE 2020")
    print()
    print("packages: repro.geometry  repro.index  repro.delaunay  repro.core")
    print("          repro.query     repro.engine  repro.workloads")
    print("          repro.io        repro.viz     repro.server")
    print()
    print("query API: db.query(AreaQuery | WindowQuery | KnnQuery | NearestQuery)")
    print("           db.query(UnionQuery | IntersectionQuery | DifferenceQuery)")
    print("           db.query(KnnQuery(p, k=None)).first(n)  (streaming)")
    print("           db.query_batch([...])  (see docs/QUERY_API.md)")
    print()
    print("experiment index (see DESIGN.md / EXPERIMENTS.md):")
    for artefact, command in [
        ("Table I ", "experiments table1"),
        ("Table II", "experiments table2"),
        ("Fig. 4  ", "experiments fig4"),
        ("Fig. 5  ", "experiments fig5"),
        ("Fig. 6  ", "experiments fig6"),
        ("Fig. 7  ", "experiments fig7"),
        ("Fig. 2/3", "figures"),
        ("Batch   ", "batch"),
        ("Mixed   ", "experiments mixed"),
        ("Composite", "experiments composite"),
        ("Specs   ", "query --spec-file specs.json"),
        ("Serve   ", "serve --points 20000"),
        ("Remote  ", "query --spec-file specs.json --remote 127.0.0.1:7711"),
        ("Live    ", "subscribe --remote 127.0.0.1:7711 --knn 0.5,0.5,8"),
        ("Served  ", "experiments serve"),
    ]:
        print(f"  {artefact}  python -m repro {command}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Parse ``argv`` (default ``sys.argv``) and dispatch a subcommand."""
    argv = list(sys.argv[1:] if argv is None else argv)

    # `experiments` forwards its tail verbatim (it has its own parser).
    if argv and argv[0] == "experiments":
        return _cmd_experiments(argv[1:])

    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Voronoi-diagram-based area queries (ICDE 2020 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    demo = subparsers.add_parser("demo", help="one-shot method comparison")
    demo.add_argument("--points", type=int, default=50_000)
    demo.add_argument("--query-size", type=float, default=0.01)
    demo.add_argument("--seed", type=int, default=0)

    query = subparsers.add_parser(
        "query", help="run declarative specs from a JSON file"
    )
    query.add_argument(
        "--spec-file",
        required=True,
        help="JSON array of query specs (see repro.query.serialize)",
    )
    query.add_argument("--points", type=int, default=10_000)
    query.add_argument("--seed", type=int, default=0)
    query.add_argument(
        "--explain",
        action="store_true",
        help="print the planner's explain table per spec",
    )
    query.add_argument(
        "--first",
        type=int,
        default=None,
        metavar="N",
        help="stream the first N rows of each spec lazily instead of "
        "executing the batch (composites and unbounded kNN never "
        "materialise their full result)",
    )
    query.add_argument(
        "--remote",
        default=None,
        metavar="HOST:PORT",
        help="send the specs to a running `python -m repro serve` "
        "instance instead of building a local database",
    )
    query.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="socket timeout for --remote connects and response reads",
    )

    serve = subparsers.add_parser(
        "serve",
        help="concurrent NDJSON query server (see docs/SERVER.md)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7711)
    serve.add_argument(
        "--points",
        type=int,
        default=10_000,
        help="generate this many uniform points (ignored with --load)",
    )
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--load",
        default=None,
        metavar="PATH",
        help="serve a database snapshot written by `python -m repro "
        "snapshot` (repro.io.persist.save_database)",
    )
    serve.add_argument(
        "--window-ms",
        type=float,
        default=2.0,
        help="cross-client coalescing admission window, milliseconds "
        "(0 disables coalescing)",
    )
    serve.add_argument(
        "--max-batch",
        type=int,
        default=64,
        help="queued specs that force an immediate flush",
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=None,
        help="admission-queue bound before arrivals are shed with "
        "'overloaded' errors (default: 8x max batch)",
    )
    serve.add_argument(
        "--chunk-size",
        type=int,
        default=256,
        help="default rows per streamed chunk frame",
    )

    mutate = subparsers.add_parser(
        "mutate",
        help="send insert/delete write frames to a running server",
    )
    mutate.add_argument(
        "--remote",
        required=True,
        metavar="HOST:PORT",
        help="address of a running `python -m repro serve` instance",
    )
    mutate.add_argument(
        "--insert",
        action="append",
        metavar="X,Y",
        help="insert one point (repeatable; inserts apply before deletes)",
    )
    mutate.add_argument(
        "--delete",
        action="append",
        type=int,
        metavar="ROW",
        help="tombstone one row id (repeatable)",
    )
    mutate.add_argument(
        "--from-file",
        default=None,
        metavar="OPS.ndjson",
        help="bulk-apply newline-delimited JSON operations "
        '({"op": "insert"|"extend"|"delete", ...}) in file order, '
        "before any --insert/--delete flags",
    )
    mutate.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="socket timeout for connects and response reads",
    )

    cluster = subparsers.add_parser(
        "cluster",
        help="Hilbert-sharded multi-worker cluster (see docs/CLUSTER.md)",
    )
    cluster.add_argument(
        "--workers",
        type=int,
        default=4,
        help="worker replicas to spawn (one `serve` process each)",
    )
    cluster.add_argument("--host", default="127.0.0.1")
    cluster.add_argument(
        "--port",
        type=int,
        default=0,
        help="router listen port (0 picks an ephemeral port)",
    )
    cluster.add_argument(
        "--points",
        type=int,
        default=10_000,
        help="generate this many uniform points (ignored with --load)",
    )
    cluster.add_argument("--seed", type=int, default=0)
    cluster.add_argument(
        "--load",
        default=None,
        metavar="DIR",
        help="restore a cluster snapshot directory written by "
        "--save-on-exit (repro.cluster.persist)",
    )
    cluster.add_argument(
        "--save-on-exit",
        default=None,
        metavar="DIR",
        help="write a shard-aware snapshot directory on shutdown",
    )
    cluster.add_argument(
        "--window-ms",
        type=float,
        default=2.0,
        help="per-worker coalescing admission window, milliseconds",
    )
    cluster.add_argument(
        "--replicas",
        type=int,
        default=0,
        choices=(0, 1),
        help="standby workers per primary (1 mirrors writes "
        "synchronously and serves failover reads; see docs/CLUSTER.md)",
    )
    cluster.add_argument(
        "--supervise",
        action="store_true",
        help="respawn dead workers and reload their shards from the "
        "coordinator catalog (and replica) automatically",
    )
    cluster.add_argument(
        "--health-interval",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="background health-probe period (0 disables probing; "
        "failures on the hot path still mark shards down)",
    )

    stats = subparsers.add_parser(
        "stats",
        help="render a running server's stats frame (counters + latency)",
    )
    stats.add_argument(
        "--remote",
        required=True,
        metavar="HOST:PORT",
        help="address of a running serve instance or cluster router "
        "(a router answers the merged cluster-wide view)",
    )
    stats.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="socket timeout for connects and response reads",
    )

    subscribe = subparsers.add_parser(
        "subscribe",
        help="register standing queries and stream pushed deltas",
    )
    subscribe.add_argument(
        "--remote",
        required=True,
        metavar="HOST:PORT",
        help="address of a running `python -m repro serve` instance",
    )
    subscribe.add_argument(
        "--window",
        action="append",
        metavar="X1,Y1,X2,Y2",
        help="subscribe to a window query (repeatable)",
    )
    subscribe.add_argument(
        "--knn",
        action="append",
        metavar="X,Y,K",
        help="subscribe to a k-nearest-neighbours query (repeatable)",
    )
    subscribe.add_argument(
        "--count",
        type=int,
        default=10,
        help="stop after this many notifications (default 10)",
    )
    subscribe.add_argument(
        "--duration",
        type=float,
        default=30.0,
        help="stop after this many seconds (default 30)",
    )

    snapshot = subparsers.add_parser(
        "snapshot", help="persist a generated database for serve --load"
    )
    snapshot.add_argument("--points", type=int, default=10_000)
    snapshot.add_argument("--seed", type=int, default=0)
    snapshot.add_argument(
        "--out", default="snapshot.npz", help="output .npz path"
    )

    batch = subparsers.add_parser(
        "batch", help="batch engine: planner explain + throughput table"
    )
    batch.add_argument("--points", type=int, default=10_000)
    batch.add_argument(
        "--queries", type=int, default=30, help="distinct regions in the trace"
    )
    batch.add_argument(
        "--repeat", type=int, default=3, help="hits per distinct region"
    )
    batch.add_argument("--query-size", type=float, default=0.01)
    batch.add_argument("--seed", type=int, default=0)

    subparsers.add_parser(
        "experiments", help="regenerate the paper's tables/figures"
    )

    figures = subparsers.add_parser(
        "figures", help="render the paper's Figs. 2-3 as SVG"
    )
    figures.add_argument("--output", default=".")

    subparsers.add_parser("info", help="version and experiment index")

    args = parser.parse_args(argv)
    if args.command == "demo":
        return _cmd_demo(args)
    if args.command == "query":
        return _cmd_query(args)
    if args.command == "batch":
        return _cmd_batch(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "mutate":
        return _cmd_mutate(args)
    if args.command == "cluster":
        return _cmd_cluster(args)
    if args.command == "stats":
        return _cmd_stats(args)
    if args.command == "subscribe":
        return _cmd_subscribe(args)
    if args.command == "snapshot":
        return _cmd_snapshot(args)
    if args.command == "figures":
        return _cmd_figures(args)
    if args.command == "info":
        return _cmd_info()
    parser.error(f"unhandled command {args.command!r}")
    return 2


if __name__ == "__main__":
    raise SystemExit(main())
