"""The concurrent query server: NDJSON protocol over asyncio TCP.

The network surface of the library, layered on the existing declarative
query stack (:mod:`repro.query`) and batch engine (:mod:`repro.engine`):

``repro.server.protocol``
    The versioned newline-delimited-JSON wire format: request /
    response / chunk / error / stats frames, with query specs carried in
    the exact :mod:`repro.query.serialize` form.
``repro.server.coalescer``
    Cross-client batch coalescing: specs arriving from *different*
    connections within a short admission window execute as **one**
    :meth:`~repro.engine.batch.BatchQueryEngine.run_specs` job pool, so
    concurrent clients share window frontiers, Voronoi seed walks, batch
    dedup, and the LRU result cache.
``repro.server.app``
    The :class:`QueryServer` itself (``asyncio.start_server``), chunked
    result streaming with client-driven continuation (``next`` /
    ``cancel``), per-connection limits, and the ``stats`` frame; plus
    :class:`ServerThread`, the run-in-a-background-thread harness used
    by tests, benchmarks, and the experiment workload.
``repro.server.client``
    :class:`QueryClient`, a small blocking client for tests, benchmarks,
    and the ``python -m repro query --remote`` CLI path — including the
    live-query surface (:meth:`~repro.server.client.QueryClient.subscribe`
    / :meth:`~repro.server.client.QueryClient.notifications`).

The server also hosts the **live query** subsystem (:mod:`repro.live`):
clients register standing subscriptions over the same socket and the
write path pushes incremental ``notify`` deltas to every subscription a
write's dirty tiles touch.

Start a server with ``python -m repro serve`` (``--load`` serves a
persisted snapshot); see ``docs/SERVER.md`` for the protocol spec and
coalescing semantics.
"""

from repro.server.app import QueryServer, ServerThread
from repro.server.client import (
    ConnectionLost,
    Notification,
    QueryClient,
    RemoteError,
    RemoteResult,
    RemoteSubscription,
)
from repro.server.coalescer import (
    BatchCoalescer,
    CoalescerOverloaded,
    CoalescerStats,
)
from repro.server.metrics import LatencyHistogram, LatencyPanel
from repro.server.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decode_frame,
    encode_frame,
)

__all__ = [
    "QueryServer",
    "ServerThread",
    "QueryClient",
    "ConnectionLost",
    "RemoteResult",
    "RemoteError",
    "RemoteSubscription",
    "Notification",
    "BatchCoalescer",
    "CoalescerOverloaded",
    "CoalescerStats",
    "LatencyHistogram",
    "LatencyPanel",
    "ProtocolError",
    "PROTOCOL_VERSION",
    "encode_frame",
    "decode_frame",
]
