"""Latency observability: compact log2 histograms and per-kind panels.

Production serving is judged by its *tail*, not its mean: one slow
query in a hundred is what a dashboard user actually feels, and a mean
hides it completely.  This module gives the server a recording path
cheap enough to sit on every request — one integer increment per
observation — while still answering p50/p95/p99 questions and shipping
over the ``stats`` wire frame as a few dozen JSON numbers.

:class:`LatencyHistogram` uses **fixed log2 buckets**: an observation of
``t`` milliseconds lands in the bucket whose upper edge is the smallest
power-of-two number of *microseconds* at or above ``t``.  Bucket ``i``
therefore covers ``(2^(i-1), 2^i]`` microseconds — about 40 buckets span
1 microsecond to several days, resolution is a constant factor of 2
everywhere on the scale (exactly what latency distributions need: you
care whether p99 is 4 ms or 8 ms, never whether it is 4.0 or 4.1), and
the whole histogram is a short integer array that never allocates after
construction.  Quantiles are read back as the upper edge of the bucket
holding the requested rank — a deterministic, conservative (never
under-reporting) estimate.

:class:`LatencyPanel` keys histograms by *query kind* (``window``,
``area``, ``knn``, ``stream``, ``write``, …) so the server can expose
per-kind tails: a p99 blowup in ``knn`` stays visible instead of being
averaged away under a flood of cheap window hits.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

__all__ = ["LatencyHistogram", "LatencyPanel"]

#: Number of log2 buckets: covers 1 us (bucket 0) up to ``2**39`` us
#: (~6.4 days) in the last regular bucket; anything beyond clamps there.
BUCKET_COUNT = 40


class LatencyHistogram:
    """Fixed-bucket log2 latency histogram with O(1) recording.

    Records observations in milliseconds; internally buckets by the
    ``bit_length`` of the integer microsecond value, so ``record_ms`` is
    a handful of integer operations with no allocation.  Exact ``count``,
    ``sum`` and ``max`` ride alongside the buckets, so the mean and the
    true maximum are not quantized.
    """

    __slots__ = ("_buckets", "count", "sum_ms", "max_ms")

    def __init__(self) -> None:
        self._buckets: List[int] = [0] * BUCKET_COUNT
        #: observations recorded
        self.count: int = 0
        #: exact sum of recorded milliseconds (for the mean)
        self.sum_ms: float = 0.0
        #: exact largest observation in milliseconds
        self.max_ms: float = 0.0

    @staticmethod
    def bucket_index(ms: float) -> int:
        """Bucket index for an observation of ``ms`` milliseconds."""
        us = int(ms * 1000.0)
        if us <= 0:
            return 0
        return min(us.bit_length(), BUCKET_COUNT - 1)

    @staticmethod
    def bucket_upper_ms(index: int) -> float:
        """Upper edge (inclusive) of bucket ``index``, in milliseconds."""
        return (1 << index) / 1000.0

    def record_ms(self, ms: float) -> None:
        """Record one observation of ``ms`` milliseconds."""
        self._buckets[self.bucket_index(ms)] += 1
        self.count += 1
        self.sum_ms += ms
        if ms > self.max_ms:
            self.max_ms = ms

    @property
    def mean_ms(self) -> float:
        """Exact mean of recorded observations (0.0 when empty)."""
        if not self.count:
            return 0.0
        return self.sum_ms / self.count

    def percentile_ms(self, q: float) -> float:
        """Upper-bound estimate of the ``q`` quantile in milliseconds.

        Walks the cumulative bucket counts to the first bucket whose
        cumulative share reaches ``q`` and returns that bucket's upper
        edge — so the estimate errs high by at most a factor of 2, never
        low.  ``q`` is a fraction in ``[0, 1]``; an empty histogram
        reports ``0.0``.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        if not self.count:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self._buckets):
            cumulative += bucket_count
            if cumulative >= rank and cumulative > 0:
                return min(self.bucket_upper_ms(index), self.max_ms)
        return self.max_ms  # pragma: no cover - rank <= count always hits

    @property
    def p50_ms(self) -> float:
        """Median latency upper-bound estimate."""
        return self.percentile_ms(0.50)

    @property
    def p95_ms(self) -> float:
        """95th-percentile latency upper-bound estimate."""
        return self.percentile_ms(0.95)

    @property
    def p99_ms(self) -> float:
        """99th-percentile latency upper-bound estimate."""
        return self.percentile_ms(0.99)

    def nonzero_buckets(self) -> List[Tuple[float, int]]:
        """``(upper_edge_ms, count)`` for every non-empty bucket."""
        return [
            (self.bucket_upper_ms(index), count)
            for index, count in enumerate(self._buckets)
            if count
        ]

    def as_dict(self) -> Dict[str, object]:
        """A JSON-ready summary for the ``stats`` wire frame.

        ``buckets`` maps each non-empty bucket's upper edge (str
        milliseconds, the JSON key) to its count — compact on the wire
        because an idle kind serializes to a handful of fields.
        """
        return {
            "count": self.count,
            "mean_ms": round(self.mean_ms, 3),
            "p50_ms": round(self.p50_ms, 3),
            "p95_ms": round(self.p95_ms, 3),
            "p99_ms": round(self.p99_ms, 3),
            "max_ms": round(self.max_ms, 3),
            "buckets": {
                f"{upper:g}": count
                for upper, count in self.nonzero_buckets()
            },
        }


class LatencyPanel:
    """A family of :class:`LatencyHistogram` keyed by query kind.

    Kinds materialize lazily on first record, so the panel never needs
    a registry of spec kinds and composite kinds show up automatically.
    """

    __slots__ = ("_kinds",)

    def __init__(self) -> None:
        self._kinds: Dict[str, LatencyHistogram] = {}

    def histogram(self, kind: str) -> LatencyHistogram:
        """The histogram for ``kind``, created empty on first use."""
        hist = self._kinds.get(kind)
        if hist is None:
            hist = self._kinds[kind] = LatencyHistogram()
        return hist

    def record_ms(self, kind: str, ms: float) -> None:
        """Record one ``ms`` observation under ``kind``."""
        self.histogram(kind).record_ms(ms)

    @property
    def kinds(self) -> Tuple[str, ...]:
        """Kinds recorded so far, sorted."""
        return tuple(sorted(self._kinds))

    def as_dict(self) -> Dict[str, Dict[str, object]]:
        """Kind -> histogram summary, for the ``stats`` wire frame."""
        return {
            kind: self._kinds[kind].as_dict()
            for kind in sorted(self._kinds)
        }
