"""Cross-client batch coalescing: the server's admission queue.

One client rarely batches its own requests — but *many* concurrent
clients do it for free, if the server holds arriving specs for a short
admission window and executes everything that accumulated as **one**
:meth:`~repro.engine.batch.BatchQueryEngine.run_specs` job pool.  Every
sharing mechanism the engine has then applies *across connections*:
near-coincident windows from different dashboards share one index
traversal, spatially adjacent Voronoi queries chain seed walks, a spec
two clients both ask for executes once (batch dedup), and the LRU result
cache serves repeats from earlier windows.  Per-request results are
de-multiplexed back to each submitter's future in submission order.

The window trades a small admission latency (``window_ms``, default 2
milliseconds) for shared execution — but it is a *fallback*, not a tax:
the queue also flushes immediately once it is **full** (``max_batch``)
or **complete** (group commit: every client the ``ready_hint`` callable
counts — for the server, every open connection — has a request
pending, so nothing more can arrive until results go out).  A lone
sequential client therefore never waits out the window (its own request
always completes the group), while a burst from N concurrent clients
coalesces the moment the N-th request lands.  Setting ``window_ms=0``
degenerates to one-batch-per-request regardless of the hint.

The coalescer is single-loop asyncio: submissions come from connection
handler tasks, the flush runs synchronously on the event loop (the
engine is not thread-safe, and a blocking flush simply lets the next
window's arrivals queue up behind it — they form the next batch).

**Writes** serialize against the same admission queue:
:meth:`BatchCoalescer.apply_write` first flushes whatever reads are
pending — they execute against the pre-write version, so a mutation can
never poison a coalesced read batch or split it across versions — and
then applies the mutation synchronously on the loop.  Reads admitted
after the write land in a fresh batch and see the new version
(read-your-writes for every connection, since admission order is
arrival order).

**Backpressure.**  Flush triggers *schedule a drain* on the next
event-loop turn rather than executing inline, and each drain takes at
most ``max_batch`` requests off the front of the queue.  Between
drains the loop keeps reading sockets, so under sustained overload the
admission queue genuinely grows — and is bounded: once ``max_queue``
specs are waiting, :meth:`BatchCoalescer.enqueue` sheds the arrival
with :class:`CoalescerOverloaded`, which carries a retry-after hint
derived from the current backlog and a moving estimate of per-request
service time.  Shedding at admission (instead of queueing without
bound) is what keeps the latency of *admitted* requests bounded: a
request that gets a future will wait at most ``max_queue /
max_batch`` drains, no matter how hard clients push.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from time import perf_counter
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.core.stats import QueryResult as QueryRecord
from repro.query.spec import Query
from repro.server.metrics import LatencyHistogram

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.database import SpatialDatabase


class CoalescerOverloaded(RuntimeError):
    """Admission refused: the bounded queue is full.

    Raised synchronously by :meth:`BatchCoalescer.enqueue` when
    ``max_queue`` specs are already waiting.  ``retry_after_ms`` is the
    server's estimate of when the backlog will have drained — the hint
    the wire layer forwards to clients in the ``overloaded`` error
    frame.
    """

    def __init__(self, pending: int, retry_after_ms: int) -> None:
        super().__init__(
            f"admission queue full ({pending} pending); "
            f"retry in ~{retry_after_ms} ms"
        )
        #: queue depth observed at the moment of rejection
        self.pending = pending
        #: estimated milliseconds until the backlog drains
        self.retry_after_ms = retry_after_ms


@dataclass
class CoalescerStats:
    """Admission accounting across the coalescer's lifetime."""

    #: specs accepted by :meth:`BatchCoalescer.submit`
    requests: int = 0
    #: flushes executed (each one engine ``run_specs`` call)
    batches: int = 0
    #: batches that coalesced two or more requests
    coalesced_batches: int = 0
    #: batches whose requests came from two or more distinct clients
    multi_client_batches: int = 0
    #: largest batch flushed so far
    max_batch_size: int = 0
    #: histogram of flushed batch sizes (size -> count)
    batch_sizes: Dict[int, int] = field(default_factory=dict)
    #: flushes forced early by a full queue (``max_batch`` reached)
    full_flushes: int = 0
    #: group-commit flushes (every hinted client had a request pending)
    complete_flushes: int = 0
    #: flushes fired by the admission-window timer expiring
    window_flushes: int = 0
    #: mutations applied through :meth:`BatchCoalescer.apply_write`
    writes: int = 0
    #: flushes forced by a write arriving while reads were pending
    write_flushes: int = 0
    #: arrivals rejected at admission because the queue was full
    shed_requests: int = 0
    #: deepest the admission queue has ever been
    queue_peak: int = 0
    #: standing subscriptions active after the most recent write
    #: fan-out (mirrored from the live-query registry by the server)
    subscriptions: int = 0
    #: notify deltas produced across all writes (delivered frames)
    notifications: int = 0
    #: dirty-tile fanout: subscriptions evaluated, summed over writes
    #: (``subscription_fanout / writes`` is the per-write mean — the
    #: observable proof the inverted index prunes)
    subscription_fanout: int = 0

    @property
    def mean_batch_size(self) -> float:
        """Average flushed batch size (0.0 before the first flush)."""
        if not self.batches:
            return 0.0
        return self.requests_flushed / self.batches

    @property
    def requests_flushed(self) -> int:
        """Total requests across all flushed batches."""
        return sum(
            size * count for size, count in self.batch_sizes.items()
        )

    def as_dict(self) -> Dict[str, object]:
        """A JSON-ready mapping for the ``stats`` frame."""
        return {
            "requests": self.requests,
            "batches": self.batches,
            "coalesced_batches": self.coalesced_batches,
            "multi_client_batches": self.multi_client_batches,
            "max_batch_size": self.max_batch_size,
            "mean_batch_size": round(self.mean_batch_size, 3),
            "batch_sizes": {
                str(size): count
                for size, count in sorted(self.batch_sizes.items())
            },
            "full_flushes": self.full_flushes,
            "complete_flushes": self.complete_flushes,
            "window_flushes": self.window_flushes,
            "writes": self.writes,
            "write_flushes": self.write_flushes,
            "shed_requests": self.shed_requests,
            "queue_peak": self.queue_peak,
            "subscriptions": self.subscriptions,
            "notifications": self.notifications,
            "subscription_fanout": self.subscription_fanout,
        }


class BatchCoalescer:
    """Collects concurrent query specs and executes them as one batch.

    Parameters
    ----------
    database:
        The served :class:`~repro.core.database.SpatialDatabase`; its
        engine (and thus its planner and LRU result cache) answers every
        flushed batch.
    window_ms:
        Admission window in milliseconds: the first spec entering an
        empty queue arms a flush timer this far in the future, and
        everything submitted before it fires joins the same batch.
        ``0`` flushes on the next event-loop turn (per-request batches —
        no cross-client sharing, no added latency).
    max_batch:
        Largest batch one flush will execute: reaching this many
        pending specs schedules a drain without waiting out the window,
        and every drain takes at most this many off the queue —
        bounding both the per-batch memory and how long one flush can
        hold the event loop.
    max_queue:
        Bound on the admission queue.  An arrival finding this many
        specs already pending is shed with :class:`CoalescerOverloaded`
        instead of queued.  Defaults to ``8 * max_batch`` — deep enough
        that normal bursts never touch it, shallow enough that the
        queueing delay of admitted requests stays within a few batch
        lifetimes.
    ready_hint:
        Optional zero-argument callable returning how many distinct
        clients could currently be submitting (the server passes its
        open-connection count).  When every one of them has a request
        pending, the queue is *complete* and flushes without waiting
        out the window — the group-commit fast path.  ``None`` disables
        the heuristic (timer and ``max_batch`` only).
    """

    def __init__(
        self,
        database: "SpatialDatabase",
        *,
        window_ms: float = 2.0,
        max_batch: int = 64,
        max_queue: Optional[int] = None,
        ready_hint: Optional[Callable[[], int]] = None,
    ) -> None:
        if window_ms < 0:
            raise ValueError(f"window_ms must be >= 0, got {window_ms!r}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch!r}")
        if max_queue is None:
            max_queue = 8 * int(max_batch)
        if max_queue < max_batch:
            raise ValueError(
                f"max_queue must be >= max_batch, got {max_queue!r}"
            )
        self._db = database
        self.window_ms = float(window_ms)
        self.max_batch = int(max_batch)
        self.max_queue = int(max_queue)
        self.ready_hint = ready_hint
        #: admission accounting over this coalescer's lifetime
        self.stats = CoalescerStats()
        #: admission-queue wait (enqueue -> flush start) per request
        self.admission_wait = LatencyHistogram()
        self._pending: List[
            Tuple[Query, asyncio.Future, object, float]
        ] = []
        self._pending_clients: set = set()
        self._timer: Optional[asyncio.TimerHandle] = None
        self._drain_scheduled = False
        #: EWMA of per-request execution time, feeds the retry hint
        self._service_ewma_ms: Optional[float] = None

    @property
    def pending(self) -> int:
        """Specs currently queued for the next flush."""
        return len(self._pending)

    def enqueue(
        self, spec: Query, *, client: object = None
    ) -> "asyncio.Future[QueryRecord]":
        """Admit ``spec`` *synchronously*; returns the future of its record.

        This is the admission point: the spec joins the current batch
        window the moment this returns, so a caller that enqueues inline
        (the server's connection read loop does) gets strict
        arrival-order serialization against :meth:`apply_write` — a read
        admitted before a write executes on the pre-write version, one
        admitted after sees the mutation.  Invalid specs raise
        immediately (:meth:`~repro.engine.batch.BatchQueryEngine.validate_spec`)
        without poisoning the shared batch; execution errors inside a
        flush land on every future of that batch.

        Raises :class:`CoalescerOverloaded` (before creating a future)
        when ``max_queue`` specs are already pending — the load-shedding
        admission bound.
        """
        self._db.engine.validate_spec(spec)
        if len(self._pending) >= self.max_queue:
            self.stats.shed_requests += 1
            raise CoalescerOverloaded(
                len(self._pending), self.retry_after_ms()
            )
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._pending.append((spec, future, client, perf_counter()))
        self._pending_clients.add(client)
        self.stats.requests += 1
        if len(self._pending) > self.stats.queue_peak:
            self.stats.queue_peak = len(self._pending)
        if self._drain_scheduled:
            return future  # joins the already-scheduled drain's backlog
        if len(self._pending) >= self.max_batch:
            self.stats.full_flushes += 1
            self._schedule_drain()
        elif self._group_complete():
            self.stats.complete_flushes += 1
            self._schedule_drain()
        elif self._timer is None:
            self._timer = loop.call_later(
                self.window_ms / 1000.0, self._window_flush
            )
        return future

    def retry_after_ms(self) -> int:
        """Estimated milliseconds until the current backlog drains.

        The backlog divided by the service rate: queue depth times the
        EWMA of observed per-request execution time, plus one admission
        window.  Before the first flush (no EWMA yet) the estimate
        assumes 1 ms per request — pessimistic enough to spread the
        first retry wave.
        """
        per_request_ms = self._service_ewma_ms or 1.0
        backlog_ms = len(self._pending) * per_request_ms
        return max(1, int(backlog_ms + self.window_ms))

    async def submit(
        self, spec: Query, *, client: object = None
    ) -> QueryRecord:
        """Queue ``spec`` and wait for its batch to flush; returns its record.

        ``client`` is an opaque identity tag (the server passes the
        connection object) used only for the ``multi_client_batches``
        counter — the observable proof that coalescing crossed
        connection boundaries.  The awaiting convenience wrapper over
        :meth:`enqueue`.
        """
        return await self.enqueue(spec, client=client)

    def apply_write(self, mutate: Callable[[], object]) -> object:
        """Serialize a mutation against the batch window and apply it.

        Flushes any pending reads first — they were admitted before the
        write, so they execute against the pre-write version as one
        clean batch — then runs ``mutate()`` synchronously on the event
        loop and returns its result.  Reads admitted afterwards start a
        fresh batch over the new version.  A ``mutate`` that raises
        leaves the queue state consistent (the flush has already
        happened) and propagates to the caller.
        """
        if self._pending:
            self.stats.write_flushes += 1
            while self._pending:
                self._flush(limit=self.max_batch)
        result = mutate()
        self.stats.writes += 1
        return result

    def _group_complete(self) -> bool:
        """Group commit: has every hinted client submitted already?

        With one open connection this is true on every submit (a lone
        sequential client never pays the admission window); with N it
        becomes true the moment the N-th distinct client's request
        lands.  A connection that is connected but not querying (a
        monitor, an idle dashboard) keeps the group incomplete — those
        batches fall back to the window timer.
        """
        if self.ready_hint is None or self.window_ms == 0.0:
            return False
        return len(self._pending_clients) >= max(1, self.ready_hint())

    def flush_now(self) -> None:
        """Flush the whole queue immediately (tests and shutdown paths)."""
        while self._pending:
            self._flush(limit=self.max_batch)

    def _schedule_drain(self) -> None:
        """Arm a drain callback for the next event-loop turn.

        Deferring by one turn (instead of flushing inline) is what
        makes backpressure observable: the loop gets a chance to read
        more sockets first, so coincident arrivals join this batch and
        sustained overload accumulates in the bounded queue instead of
        being hidden inside ever-larger inline flushes.
        """
        if self._drain_scheduled:
            return
        self._drain_scheduled = True
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        asyncio.get_running_loop().call_soon(self._drain)

    def _drain(self) -> None:
        """Drain callback: flush one batch, then re-trigger as needed.

        Takes at most ``max_batch`` off the queue, then looks at the
        leftover exactly as :meth:`enqueue` would have: still full —
        schedule the next drain (interleaving with socket reads rather
        than monopolizing the loop); group complete — same; otherwise
        the remainder waits out a fresh admission window.
        """
        self._drain_scheduled = False
        if not self._pending:
            return
        self._flush(limit=self.max_batch)
        if not self._pending:
            return
        if len(self._pending) >= self.max_batch:
            self.stats.full_flushes += 1
            self._schedule_drain()
        elif self._group_complete():
            self.stats.complete_flushes += 1
            self._schedule_drain()
        elif self._timer is None:
            self._timer = asyncio.get_running_loop().call_later(
                self.window_ms / 1000.0, self._window_flush
            )

    def _window_flush(self) -> None:
        """Timer callback: the admission window expired."""
        self.stats.window_flushes += 1
        self._flush(limit=self.max_batch)

    def _flush(self, limit: Optional[int] = None) -> None:
        """Execute one queued batch as one engine job pool; settle futures.

        Takes the oldest ``limit`` entries (everything when ``None``) —
        FIFO, so admission order is execution order and the admission
        wait recorded per request is the true queueing delay.
        """
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if limit is None or limit >= len(self._pending):
            batch, self._pending = self._pending, []
            self._pending_clients = set()
        else:
            batch = self._pending[:limit]
            self._pending = self._pending[limit:]
            self._pending_clients = {
                client for _, _, client, _ in self._pending
            }
        if not batch:  # pragma: no cover - timer vs full-flush race guard
            return
        now = perf_counter()
        for _, _, _, admitted_at in batch:
            self.admission_wait.record_ms((now - admitted_at) * 1000.0)
        stats = self.stats
        stats.batches += 1
        size = len(batch)
        stats.max_batch_size = max(stats.max_batch_size, size)
        stats.batch_sizes[size] = stats.batch_sizes.get(size, 0) + 1
        if size >= 2:
            stats.coalesced_batches += 1
        clients = {
            client for _, _, client, _ in batch if client is not None
        }
        if len(clients) >= 2:
            stats.multi_client_batches += 1
        specs = [spec for spec, _, _, _ in batch]
        try:
            records = self._db.engine.run_specs(specs).results
        except Exception as exc:  # engine failure poisons this batch only
            for _, future, _, _ in batch:
                if not future.done():
                    future.set_exception(exc)
            return
        exec_ms = (perf_counter() - now) * 1000.0
        per_request_ms = exec_ms / size
        if self._service_ewma_ms is None:
            self._service_ewma_ms = per_request_ms
        else:
            self._service_ewma_ms = (
                0.8 * self._service_ewma_ms + 0.2 * per_request_ms
            )
        for (_, future, _, _), record in zip(batch, records):
            if not future.done():  # submitter may have disconnected
                future.set_result(record)
