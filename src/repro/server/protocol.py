"""The versioned NDJSON wire format of the query server.

One frame per line: a single JSON object terminated by ``\\n``, UTF-8
encoded, no intra-frame newlines.  Every frame carries a ``type`` tag;
query specs travel in the exact JSON form of
:mod:`repro.query.serialize`, so anything expressible to
:meth:`SpatialDatabase.query <repro.core.database.SpatialDatabase.query>`
— leaf kinds, nested composites, unbounded streaming kNN — is
expressible over the wire (specs with a ``predicate`` are the one
exception; a closure has no wire form).

Client-to-server frames::

    {"type": "query",  "id": 7, "spec": {...}, "packed": true,
     "explain": false, "stream": false, "chunk_size": 256}
    {"type": "next",   "id": 7}
    {"type": "cancel", "id": 7}
    {"type": "stats"}
    {"type": "insert", "id": 8, "x": 0.25, "y": 0.75}
    {"type": "extend", "id": 9, "points": [[0.1, 0.2], [0.3, 0.4]]}
    {"type": "delete", "id": 10, "row": 42}
    {"type": "subscribe", "id": 11, "spec": {...}, "packed": true}
    {"type": "unsubscribe", "id": 11}

Server-to-client frames::

    {"type": "hello",  "protocol": 1, "server": "repro/x.y.z", "points": N}
    {"type": "result", "id": 7, "ids": [...], "stats": {...},
     "explain": "..."}
    {"type": "result", "id": 7, "ids_packed": "<base64>", "stats": {...}}
    {"type": "result", "id": 7, "ids": [...], "stats": {...},
     "degraded": true, "shards_failed": [2]}
    {"type": "chunk",  "id": 7, "seq": 0, "rows": [...], "done": false,
     "examined": 256, "cancelled": false}
    {"type": "chunk",  "id": 7, "seq": 3, "rows": [...], "done": true,
     "degraded": true, "shards_failed": [0]}
    {"type": "error",  "id": 7, "code": "bad-spec", "message": "..."}
    {"type": "stats",  "server": {...}, "coalescer": {...}, "engine": {...}}
    {"type": "write",  "id": 8, "op": "insert", "rows": [1200],
     "version": 1201, "points": 1201}
    {"type": "subscribed",   "id": 11, "version": 1201, "ids": [...]}
    {"type": "notify", "id": 11, "version": 1202, "added": [1201],
     "removed": [42]}
    {"type": "unsubscribed", "id": 11, "notifications": 3}

**Subscription frames (live queries).**  ``subscribe`` registers its
``spec`` as a *standing query* (see :mod:`repro.live`): the server
answers with a ``subscribed`` frame carrying the initial result ids and
the data version they reflect, and from then on *pushes* a ``notify``
frame — without any request — whenever a write changes that result.
``notify`` carries the exact ``added``/``removed`` row-id deltas and the
post-write ``version`` that produced them; per subscription, versions
are strictly increasing and frames arrive in version order (delivery is
at-least-once per version: a delta is never skipped, re-reads after a
reconnect re-subscribe from scratch).  ``added``/``removed`` (and the
``subscribed`` frame's ``ids``) use the packed id transport when the
``subscribe`` frame set ``"packed": true`` — the fields then travel as
``added_packed``/``removed_packed``/``ids_packed``.  The subscription
holds its ``id`` until ``unsubscribe``, acknowledged by an
``unsubscribed`` frame (with the subscription's lifetime notify count)
that is ordered *after* every notify for that id.  Subscribable specs
are leaf region kinds and bounded kNN; composites, predicates, limits,
projections, and unbounded kNN answer ``bad-spec``.  All subscription
frames are additive — clients that never subscribe see a byte-identical
protocol, so the version stays 1.

**Write frames.**  ``insert``/``extend``/``delete`` mutate the served
database and are acknowledged by a ``write`` frame echoing the ``op``,
the affected row ids (``rows``), and the post-write data ``version`` and
live point count.  Coordinates must be *finite* JSON numbers — Python's
permissive parser would otherwise admit ``NaN``/``Infinity`` literals —
and an ``extend`` carries at most :data:`MAX_WRITE_POINTS` pairs
(rejected with code ``bad-request``; a structurally malformed write is
``bad-frame``, and either rejection provably leaves the store version
and index untouched).  Writes apply synchronously at admission, in
arrival order, serialized against the read coalescer's batch window:
pending reads flush (and execute against the pre-write version) before
the write lands, so coalesced read batches are never poisoned, and
chunked streams admitted earlier keep their MVCC snapshot (see
:meth:`repro.core.store.PointStore.snapshot`).  A write's ack can
overtake the ``result`` of a still-executing pipelined read — correlate
by ``id``, not by arrival order.

``id`` is a client-chosen non-negative integer correlating responses to
requests; it must be unique among the connection's *in-flight* requests
(pending batch queries and open streams) and is free for reuse after the
``result`` frame, the ``done`` chunk, or an ``error`` frame for that id.
``hello`` is pushed by the server on connect; a client whose
``protocol`` differs must disconnect.  A ``query`` with
``"stream": true`` is answered by ``chunk`` frames — the first is pushed
immediately, every further one only in response to ``next`` (client-
driven continuation), and ``cancel`` tears the stream down server-side
(acknowledged by a final ``done`` chunk with ``"cancelled": true``).
``rows`` follow the spec's ``select`` projection: row ids (integers),
points (``[x, y]`` pairs), or distances (floats).  ``examined`` counts
the candidates the underlying iterator examined so far — for an
unbounded kNN the first chunk reports exactly ``chunk_size``, the
observable proof that streaming never ranks the rest of the database.

**Packed id transport.**  A ``query`` with ``"packed": true`` asks the
server to deliver the result ids as ``ids_packed`` — the little-endian
int64 id array, base64-encoded (:func:`pack_ids`/:func:`unpack_ids`) —
instead of the ``ids`` JSON list.  Result frames carry exactly one of
the two fields.  This is the columnar store's wire edge: for a
result of thousands of rows, packing/unpacking one array is an order of
magnitude cheaper on both sides than (de)serialising one JSON number
per row, which otherwise dominates a fast query's round-trip.  Frames
without the flag are byte-identical to before, so the protocol version
stays 1 and mixed clients interoperate.

**Degraded results (cluster serving).**  A clustered router that loses
a shard from both its primary *and* replica mid-query never returns a
silent partial answer: the ``result`` frame (or the final ``done``
chunk of a stream) carries ``"degraded": true`` plus ``shards_failed``,
the worker indices that could not contribute.  Both fields are
additive and optional — single-process servers and healthy clusters
omit them, so the protocol version stays 1.  Clients decide whether a
partial answer is acceptable; the CLI prints a loud warning.

:func:`decode_frame` rejects malformed input with
:class:`ProtocolError`, whose ``code`` is stable for programmatic
handling: ``bad-frame`` (not JSON / not an object / unknown or missing
type / wrong field shape), ``bad-spec`` (spec body that
:func:`repro.query.serialize.spec_from_dict` rejects, raised by
:func:`parse_query_spec`), plus the server-emitted ``bad-request``,
``too-many-requests``, ``unavailable`` (a clustered write whose owning
shard is unreachable — the write did *not* apply), and
``server-error``.
"""

from __future__ import annotations

import json
import math
from typing import Dict, Iterable, List, Optional

from repro.query.serialize import spec_from_dict
from repro.query.spec import Query

#: Wire-format version; bumped on any incompatible frame change.  The
#: server states it in the ``hello`` frame and clients must disconnect
#: on mismatch rather than guess.
PROTOCOL_VERSION = 1

#: Hard cap on one encoded frame line, bytes (newline included).  The
#: server passes this as the asyncio stream limit, so an oversized
#: request fails fast instead of buffering without bound.
MAX_LINE_BYTES = 1 << 20

#: Default and maximum rows per ``chunk`` frame.
DEFAULT_CHUNK_SIZE = 256
MAX_CHUNK_SIZE = 65_536

#: Hard cap on coordinate pairs in one ``extend`` frame: keeps both the
#: encoded ack and the synchronous apply bounded (larger loads batch
#: client-side across frames).
MAX_WRITE_POINTS = 65_536

#: Frame type tags, by direction.
CLIENT_FRAME_TYPES = (
    "query",
    "next",
    "cancel",
    "stats",
    "insert",
    "extend",
    "delete",
    "subscribe",
    "unsubscribe",
)
SERVER_FRAME_TYPES = (
    "hello",
    "result",
    "chunk",
    "error",
    "stats",
    "write",
    "subscribed",
    "notify",
    "unsubscribed",
)

#: The mutation operations a ``write`` ack can echo.
WRITE_OPS = ("insert", "extend", "delete")

#: Stable error codes carried by ``error`` frames.
ERROR_CODES = (
    "bad-frame",
    "bad-spec",
    "bad-request",
    "too-many-requests",
    "overloaded",
    "unavailable",
    "server-error",
)


class ProtocolError(ValueError):
    """A frame violated the wire format (or a spec its schema).

    ``code`` is one of :data:`ERROR_CODES`; the server converts this
    exception into an ``error`` frame with the same code and message.
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        #: stable machine-readable error class (see :data:`ERROR_CODES`)
        self.code = code
        #: human-readable detail
        self.message = message


def _require(condition: bool, message: str) -> None:
    """Raise a ``bad-frame`` :class:`ProtocolError` unless ``condition``."""
    if not condition:
        raise ProtocolError("bad-frame", message)


def _check_id(frame: Dict) -> None:
    """Validate the correlation ``id`` field (non-negative int)."""
    request_id = frame.get("id")
    _require(
        isinstance(request_id, int)
        and not isinstance(request_id, bool)
        and request_id >= 0,
        f"'id' must be a non-negative integer, got {request_id!r}",
    )


def _validate_query(frame: Dict) -> None:
    _check_id(frame)
    _require(
        isinstance(frame.get("spec"), dict),
        "'spec' must be a JSON object (see repro.query.serialize)",
    )
    for flag in ("explain", "stream", "packed"):
        if flag in frame:
            _require(
                isinstance(frame[flag], bool),
                f"{flag!r} must be a boolean, got {frame[flag]!r}",
            )
    if "chunk_size" in frame:
        size = frame["chunk_size"]
        _require(
            isinstance(size, int)
            and not isinstance(size, bool)
            and 1 <= size <= MAX_CHUNK_SIZE,
            f"'chunk_size' must be an int in [1, {MAX_CHUNK_SIZE}], "
            f"got {size!r}",
        )
        _require(
            frame.get("stream") is True,
            "'chunk_size' is only meaningful with \"stream\": true",
        )


def _check_degraded(frame: Dict) -> None:
    """Validate the optional cluster-degradation fields.

    ``degraded``/``shards_failed`` are additive: absent on healthy
    answers, both meaningful only together (a degraded frame names the
    shards that failed; naming failed shards implies degradation).
    """
    if "degraded" in frame:
        _require(
            isinstance(frame["degraded"], bool),
            "'degraded' must be a boolean",
        )
    if "shards_failed" in frame:
        shards = frame["shards_failed"]
        _require(
            isinstance(shards, list)
            and all(
                isinstance(s, int) and not isinstance(s, bool) and s >= 0
                for s in shards
            ),
            "'shards_failed' must be a list of worker indices",
        )


def _validate_result(frame: Dict) -> None:
    _check_id(frame)
    _check_degraded(frame)
    packed = frame.get("ids_packed")
    if packed is not None:
        _require(
            "ids" not in frame,
            "a result frame carries 'ids' or 'ids_packed', not both",
        )
        _require(
            isinstance(packed, str),
            "'ids_packed' must be a base64 string",
        )
    else:
        ids = frame.get("ids")
        _require(isinstance(ids, list), "'ids' must be a list")
        # One C-speed pass instead of a Python-level loop: result frames
        # carry thousands of ids, and this validator runs on both sides
        # of every response.  ``type`` (not ``isinstance``) also rejects
        # bools.
        _require(
            not ids or set(map(type, ids)) == {int},
            "result ids must all be integers",
        )
    _require(
        isinstance(frame.get("stats"), dict), "'stats' must be an object"
    )
    if "explain" in frame:
        _require(
            isinstance(frame["explain"], str),
            "'explain' must be the rendered plan text",
        )


def _validate_chunk(frame: Dict) -> None:
    _check_id(frame)
    _check_degraded(frame)
    seq = frame.get("seq")
    _require(
        isinstance(seq, int) and not isinstance(seq, bool) and seq >= 0,
        f"'seq' must be a non-negative integer, got {seq!r}",
    )
    _require(isinstance(frame.get("rows"), list), "'rows' must be a list")
    _require(
        isinstance(frame.get("done"), bool), "'done' must be a boolean"
    )
    if "examined" in frame:
        examined = frame["examined"]
        _require(
            isinstance(examined, int)
            and not isinstance(examined, bool)
            and examined >= 0,
            f"'examined' must be a non-negative integer, got {examined!r}",
        )
    if "cancelled" in frame:
        _require(
            isinstance(frame["cancelled"], bool),
            "'cancelled' must be a boolean",
        )


def _validate_error(frame: Dict) -> None:
    request_id = frame.get("id")
    if request_id is not None:
        _check_id(frame)
    _require(
        frame.get("code") in ERROR_CODES,
        f"'code' must be one of {ERROR_CODES}, got {frame.get('code')!r}",
    )
    _require(
        isinstance(frame.get("message"), str), "'message' must be a string"
    )
    if "retry_after_ms" in frame:
        # Load-shedding hint: only 'overloaded' errors carry it today,
        # but any error is allowed to (additive, like unknown fields).
        retry = frame["retry_after_ms"]
        _require(
            isinstance(retry, (int, float))
            and not isinstance(retry, bool)
            and retry >= 0,
            f"'retry_after_ms' must be a non-negative number, "
            f"got {retry!r}",
        )


def _validate_hello(frame: Dict) -> None:
    protocol = frame.get("protocol")
    _require(
        isinstance(protocol, int)
        and not isinstance(protocol, bool)
        and protocol >= 1,
        f"'protocol' must be a positive integer, got {protocol!r}",
    )
    _require(
        isinstance(frame.get("server"), str), "'server' must be a string"
    )
    points = frame.get("points")
    _require(
        isinstance(points, int)
        and not isinstance(points, bool)
        and points >= 0,
        f"'points' must be a non-negative integer, got {points!r}",
    )


def _finite_number(value) -> bool:
    """Whether ``value`` is a finite JSON number (bools excluded).

    Python's ``json.loads`` accepts the non-standard ``NaN`` /
    ``Infinity`` literals by default, so finiteness must be enforced
    here — a non-finite coordinate would corrupt every distance and
    containment computation downstream.
    """
    return isinstance(value, (int, float)) and not isinstance(
        value, bool
    ) and math.isfinite(value)


def _validate_insert(frame: Dict) -> None:
    _check_id(frame)
    for key in ("x", "y"):
        value = frame.get(key)
        _require(
            _finite_number(value),
            f"{key!r} must be a finite number, got {value!r}",
        )


def _validate_extend(frame: Dict) -> None:
    _check_id(frame)
    points = frame.get("points")
    _require(
        isinstance(points, list) and len(points) >= 1,
        "'points' must be a non-empty list of [x, y] pairs",
    )
    if len(points) > MAX_WRITE_POINTS:
        # Well-formed but over the server's apply budget: a resource
        # rejection (``bad-request``), not a malformed frame.
        raise ProtocolError(
            "bad-request",
            f"'points' carries {len(points)} pairs, over the "
            f"{MAX_WRITE_POINTS}-pair extend limit; split the load "
            "across frames",
        )
    for pair in points:
        _require(
            isinstance(pair, (list, tuple))
            and len(pair) == 2
            and _finite_number(pair[0])
            and _finite_number(pair[1]),
            f"every extend point must be a finite [x, y] pair, got {pair!r}",
        )


def _validate_delete(frame: Dict) -> None:
    _check_id(frame)
    row = frame.get("row")
    _require(
        isinstance(row, int) and not isinstance(row, bool) and row >= 0,
        f"'row' must be a non-negative integer row id, got {row!r}",
    )


def _validate_write(frame: Dict) -> None:
    _check_id(frame)
    _require(
        frame.get("op") in WRITE_OPS,
        f"'op' must be one of {WRITE_OPS}, got {frame.get('op')!r}",
    )
    rows = frame.get("rows")
    _require(
        isinstance(rows, list) and (not rows or set(map(type, rows)) == {int}),
        "'rows' must be a list of integer row ids",
    )
    for key in ("version", "points"):
        value = frame.get(key)
        _require(
            isinstance(value, int)
            and not isinstance(value, bool)
            and value >= 0,
            f"{key!r} must be a non-negative integer, got {value!r}",
        )


def _validate_stats(frame: Dict) -> None:
    # The request form is bare {"type": "stats"}; the response form adds
    # the three payload objects.  Either all three are present or none;
    # the 'subscriptions' section rides along additively (servers
    # without live queries simply omit it).
    sections = [key for key in ("server", "coalescer", "engine") if key in frame]
    if sections:
        _require(
            len(sections) == 3,
            "a stats response carries 'server', 'coalescer', and 'engine'",
        )
        for key in sections:
            _require(
                isinstance(frame[key], dict),
                f"{key!r} must be an object",
            )
    for extra in ("subscriptions", "latency"):
        # Additive sections: 'subscriptions' (live queries, PR 7) and
        # 'latency' (per-kind histograms + admission wait) ride on a
        # full response only; servers without the feature omit them.
        if extra in frame:
            _require(
                len(sections) == 3,
                f"{extra!r} only rides on a full stats response",
            )
            _require(
                isinstance(frame[extra], dict),
                f"{extra!r} must be an object",
            )


def _check_version(frame: Dict) -> None:
    """Validate the data ``version`` field (non-negative int)."""
    version = frame.get("version")
    _require(
        isinstance(version, int)
        and not isinstance(version, bool)
        and version >= 0,
        f"'version' must be a non-negative integer, got {version!r}",
    )


def _check_id_transport(frame: Dict, key: str) -> None:
    """Validate a row-id field in either transport: ``key``/``key_packed``."""
    packed = frame.get(f"{key}_packed")
    if packed is not None:
        _require(
            key not in frame,
            f"a frame carries {key!r} or '{key}_packed', not both",
        )
        _require(
            isinstance(packed, str),
            f"'{key}_packed' must be a base64 string",
        )
        return
    ids = frame.get(key)
    _require(isinstance(ids, list), f"{key!r} must be a list")
    _require(
        not ids or set(map(type, ids)) == {int},
        f"{key!r} ids must all be integers",
    )


def _validate_subscribe(frame: Dict) -> None:
    _check_id(frame)
    _require(
        isinstance(frame.get("spec"), dict),
        "'spec' must be a JSON object (see repro.query.serialize)",
    )
    if "packed" in frame:
        _require(
            isinstance(frame["packed"], bool),
            f"'packed' must be a boolean, got {frame['packed']!r}",
        )


def _validate_subscribed(frame: Dict) -> None:
    _check_id(frame)
    _check_version(frame)
    _check_id_transport(frame, "ids")


def _validate_notify(frame: Dict) -> None:
    _check_id(frame)
    _check_version(frame)
    _check_id_transport(frame, "added")
    _check_id_transport(frame, "removed")


def _validate_unsubscribed(frame: Dict) -> None:
    _check_id(frame)
    notifications = frame.get("notifications")
    _require(
        isinstance(notifications, int)
        and not isinstance(notifications, bool)
        and notifications >= 0,
        "'notifications' must be a non-negative integer, "
        f"got {notifications!r}",
    )


_VALIDATORS = {
    "query": _validate_query,
    "next": _check_id,
    "cancel": _check_id,
    "stats": _validate_stats,
    "insert": _validate_insert,
    "extend": _validate_extend,
    "delete": _validate_delete,
    "hello": _validate_hello,
    "result": _validate_result,
    "chunk": _validate_chunk,
    "error": _validate_error,
    "write": _validate_write,
    "subscribe": _validate_subscribe,
    "unsubscribe": _check_id,
    "subscribed": _validate_subscribed,
    "notify": _validate_notify,
    "unsubscribed": _validate_unsubscribed,
}


def validate_frame(frame: Dict) -> Dict:
    """Structurally validate ``frame``; returns it unchanged.

    Raises :class:`ProtocolError` (code ``bad-frame``) on a missing or
    unknown ``type`` or any field of the wrong shape.  Unknown *extra*
    fields are tolerated (minor-version forward compatibility).
    """
    _require(isinstance(frame, dict), "a frame must be a JSON object")
    frame_type = frame.get("type")
    validator = _VALIDATORS.get(frame_type)
    _require(
        validator is not None,
        f"unknown frame type {frame_type!r}; expected one of "
        f"{tuple(sorted(_VALIDATORS))}",
    )
    validator(frame)
    return frame


def encode_frame(frame: Dict) -> bytes:
    """Validate and serialise ``frame`` as one UTF-8 NDJSON line.

    The output ends with exactly one ``\\n`` and contains no other
    newline (``json.dumps`` never emits raw control characters), so
    frames can be framed by ``readline`` on the receiving side.  Frames
    over :data:`MAX_LINE_BYTES` raise :class:`ProtocolError`.
    """
    validate_frame(frame)
    try:
        line = json.dumps(
            frame, separators=(",", ":"), allow_nan=False
        ).encode("utf-8") + b"\n"
    except (TypeError, ValueError) as exc:
        raise ProtocolError(
            "bad-frame", f"frame is not JSON-serialisable: {exc}"
        ) from exc
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(
            "bad-frame",
            f"frame of {len(line)} bytes exceeds the "
            f"{MAX_LINE_BYTES}-byte line limit",
        )
    return line


def decode_frame(line: bytes | str) -> Dict:
    """Parse and validate one NDJSON line into a frame dict.

    Accepts the raw line with or without its trailing newline.  Raises
    :class:`ProtocolError` (code ``bad-frame``) on oversized input,
    undecodable bytes, non-JSON, a non-object payload, or any schema
    violation :func:`validate_frame` detects.
    """
    if isinstance(line, (bytes, bytearray)):
        if len(line) > MAX_LINE_BYTES:
            raise ProtocolError(
                "bad-frame",
                f"line of {len(line)} bytes exceeds the "
                f"{MAX_LINE_BYTES}-byte limit",
            )
        try:
            text = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(
                "bad-frame", f"line is not valid UTF-8: {exc}"
            ) from exc
    else:
        text = line
    try:
        frame = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ProtocolError(
            "bad-frame", f"line is not valid JSON: {exc}"
        ) from exc
    return validate_frame(frame)


def parse_query_spec(frame: Dict) -> Query:
    """Rebuild the :class:`~repro.query.spec.Query` of a ``query`` frame.

    Wraps :func:`repro.query.serialize.spec_from_dict`, converting its
    :class:`ValueError`/:class:`KeyError`/:class:`TypeError` into a
    :class:`ProtocolError` with code ``bad-spec`` so the server can
    answer with a per-request ``error`` frame instead of dropping the
    connection.
    """
    try:
        return spec_from_dict(frame["spec"])
    except ProtocolError:
        raise
    except (ValueError, KeyError, TypeError) as exc:
        raise ProtocolError("bad-spec", f"unusable query spec: {exc}") from exc


def pack_ids(ids) -> str:
    """Encode result row ids as one base64 string (``ids_packed``).

    ``ids`` (any int sequence or integer ndarray) is packed as a
    little-endian int64 array and base64-encoded — one C-speed pass per
    side instead of one JSON number parse per row.  (Standard base64,
    not base85: CPython's ``b85encode`` is a pure-Python loop, which
    would put a Python-per-chunk cost right back on the hot path.)  The
    inverse is :func:`unpack_ids`.
    """
    import base64

    import numpy as np

    array = np.ascontiguousarray(ids, dtype="<i8")
    return base64.b64encode(array.tobytes()).decode("ascii")


def unpack_ids(packed: str) -> List[int]:
    """Decode an ``ids_packed`` field back to the row-id list.

    Raises :class:`ProtocolError` (``bad-frame``) on anything that is
    not a well-formed base64 int64 array — the receiving side's
    validation of packed frames lives here, where the bytes are decoded
    anyway.
    """
    import base64
    import binascii

    import numpy as np

    try:
        raw = base64.b64decode(packed.encode("ascii"), validate=True)
    except (ValueError, UnicodeEncodeError, binascii.Error) as exc:
        raise ProtocolError(
            "bad-frame", f"'ids_packed' is not valid base64: {exc}"
        ) from exc
    if len(raw) % 8:
        raise ProtocolError(
            "bad-frame",
            f"'ids_packed' decodes to {len(raw)} bytes, "
            "not a whole number of int64 ids",
        )
    return np.frombuffer(raw, dtype="<i8").tolist()


def result_ids(frame: Dict) -> List[int]:
    """The row ids of a validated ``result`` frame, either transport.

    Unpacks ``ids_packed`` when present, otherwise returns the plain
    ``ids`` list — the one accessor response consumers need.
    """
    packed = frame.get("ids_packed")
    if packed is not None:
        return unpack_ids(packed)
    return frame["ids"]


def delta_ids(frame: Dict, key: str) -> List[int]:
    """A notify/subscribed frame's id field, in either transport.

    ``key`` is the plain field name (``"ids"``, ``"added"``,
    ``"removed"``); the packed variant ``{key}_packed`` is unpacked when
    present.  The subscription-frame sibling of :func:`result_ids`.
    """
    packed = frame.get(f"{key}_packed")
    if packed is not None:
        return unpack_ids(packed)
    return frame[key]


def rows_to_wire(rows: Iterable) -> List:
    """Project result rows into their JSON wire form.

    Row ids and distances are already JSON scalars;
    :class:`~repro.geometry.point.Point` rows (``select="points"``)
    become ``[x, y]`` pairs.
    """
    wire: List = []
    for row in rows:
        x = getattr(row, "x", None)
        if x is not None:
            wire.append([x, row.y])
        else:
            wire.append(row)
    return wire


def error_frame(
    request_id: Optional[int],
    code: str,
    message: str,
    *,
    retry_after_ms: Optional[int] = None,
) -> Dict:
    """Build an ``error`` frame (``request_id`` may be None).

    ``retry_after_ms`` attaches the load-shedding hint carried by
    ``overloaded`` errors: how long the client should back off before
    resubmitting.
    """
    frame: Dict = {"type": "error", "code": code, "message": message}
    if request_id is not None:
        frame["id"] = request_id
    if retry_after_ms is not None:
        frame["retry_after_ms"] = retry_after_ms
    return frame
