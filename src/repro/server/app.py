"""The asyncio NDJSON query server.

:class:`QueryServer` listens on TCP (``asyncio.start_server``), speaks
the frame protocol of :mod:`repro.server.protocol`, and answers queries
against one shared :class:`~repro.core.database.SpatialDatabase`:

* **Batch queries** (the default) go through the cross-client
  :class:`~repro.server.coalescer.BatchCoalescer`: specs from all
  connections arriving within the admission window execute as one
  engine job pool and each result is de-multiplexed back to its
  requester as a ``result`` frame (optionally with the planner's
  rendered ``explain`` attached).
* **Streaming queries** (``"stream": true`` — unbounded
  ``KnnQuery(k=None)``, composites, or any spec the client prefers
  chunked) are served as bounded ``chunk`` frames with *client-driven
  continuation*: the first chunk is pushed immediately, each further
  chunk only on a ``next`` frame, and ``cancel`` (or the client
  disconnecting) closes the underlying lazy iterator so abandoned
  streams never finish ranking the database.
* **Writes** (``insert``/``extend``/``delete`` frames) mutate the shared
  database with snapshot isolation: each mutation serialises through
  :meth:`~repro.server.coalescer.BatchCoalescer.apply_write` (pending
  read batches flush first, against the pre-write version), open chunked
  streams keep answering from their admission-time
  :class:`~repro.core.store.StoreSnapshot`, and every query admitted
  after the ``write`` acknowledgement sees the mutation.
* **Live queries** (``subscribe``/``unsubscribe`` frames) register
  standing queries with the :class:`~repro.live.registry.SubscriptionRegistry`
  and push ``notify`` frames with incremental ``added``/``removed``
  deltas after every write.  Fan-out happens synchronously on the write
  path (the registry's dirty-tile index evaluates only affected
  subscriptions), but *delivery* goes through a per-connection queue
  drained by its own task — one slow subscriber backlogs only its own
  queue, never the write path or other subscribers.  Within a
  subscription, frames are delivered in version order: the
  ``subscribed`` ack, every ``notify``, and the ``unsubscribed`` ack all
  ride the same queue.  Disconnect tears every subscription of the
  connection down and frees its queue.
* **Introspection**: a ``stats`` request returns server counters,
  coalescer admission stats, the engine's lifetime job-pool totals
  (:class:`~repro.engine.batch.EngineTotals`), and — when live queries
  are in play — the subscription registry's mechanism counters.

Per-connection limits keep one client from starving the rest: at most
``max_inflight`` outstanding requests (pending batch queries plus open
streams) and frames over the protocol line limit close the connection.

The event loop is single-threaded and the engine runs *on* it (the
engine is not thread-safe); a flush blocks the loop for one batch
execution, during which arriving requests simply queue into the next
admission window.  :class:`ServerThread` hosts the loop in a background
thread for tests, benchmarks, and the experiment harness.
"""

from __future__ import annotations

import asyncio
import threading
from time import perf_counter
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Set

from repro.core.exceptions import ReproError
from repro.live.registry import Subscription, SubscriptionRegistry
from repro.server.coalescer import BatchCoalescer, CoalescerOverloaded
from repro.server.metrics import LatencyPanel
from repro.server.protocol import (
    DEFAULT_CHUNK_SIZE,
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_frame,
    encode_frame,
    error_frame,
    pack_ids,
    parse_query_spec,
    rows_to_wire,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.database import SpatialDatabase


class _Stream:
    """Server-side state of one open chunked stream."""

    __slots__ = (
        "request_id",
        "chunks",
        "seq",
        "examined",
        "closed",
        "opened",
    )

    def __init__(self, request_id: int, chunks: Iterator[List]) -> None:
        self.request_id = request_id
        #: the lazy chunk iterator (``QueryResult.chunks``)
        self.chunks = chunks
        self.seq = 0
        #: candidates examined so far (counting-predicate observable)
        self.examined = 0
        self.closed = False
        #: server-wide open-order stamp (oldest-first shed victim pick)
        self.opened = 0

    def close(self) -> None:
        """Tear down the underlying iterator (idempotent)."""
        if not self.closed:
            self.closed = True
            self.chunks.close()


class _Connection:
    """Per-connection bookkeeping: writer, in-flight ids, open streams."""

    __slots__ = (
        "writer",
        "lock",
        "inflight",
        "streams",
        "tasks",
        "subscriptions",
        "queue",
        "notifier",
    )

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self.writer = writer
        #: serialises concurrent frame writes from handler tasks
        self.lock = asyncio.Lock()
        #: request ids with an outstanding response (batch or stream)
        self.inflight: Set[int] = set()
        #: open streams by request id
        self.streams: Dict[int, _Stream] = {}
        #: in-flight batch-query tasks (strong refs; they self-discard)
        self.tasks: Set[asyncio.Task] = set()
        #: standing subscriptions by their client-chosen request id
        self.subscriptions: Dict[int, Subscription] = {}
        #: delivery queue for subscribed/notify/unsubscribed frames
        #: (created lazily on the first subscribe)
        self.queue: Optional[asyncio.Queue] = None
        #: the task draining :attr:`queue` into the socket
        self.notifier: Optional[asyncio.Task] = None


class QueryServer:
    """Concurrent NDJSON query server over one spatial database.

    Parameters
    ----------
    database:
        The served database.  Built (and optionally
        :meth:`~repro.core.database.SpatialDatabase.prepare`-d) by the
        caller; the server mutates it only on behalf of client write
        frames.
    host, port:
        Listen address.  ``port=0`` picks a free port — read the bound
        address from :attr:`address` after :meth:`start`.
    window_ms, max_batch:
        Admission-window parameters of the
        :class:`~repro.server.coalescer.BatchCoalescer`.
    chunk_size:
        Default rows per ``chunk`` frame (clients may override per
        query, capped by the protocol maximum).
    max_inflight:
        Per-connection cap on outstanding requests; beyond it the
        server answers ``too-many-requests`` errors.
    max_queue:
        Server-wide bound on the coalescer's admission queue (see
        :class:`~repro.server.coalescer.BatchCoalescer`).  An arrival
        finding the queue full is shed with an ``overloaded`` error
        carrying a ``retry_after_ms`` backoff hint; under sustained
        overload the server additionally sheds the oldest open chunked
        stream to release its pinned snapshot.  ``None`` keeps the
        coalescer default (``8 * max_batch``).
    max_subscriptions:
        Per-connection cap on standing subscriptions (a separate budget
        from ``max_inflight`` — subscriptions are long-lived by design,
        and a dashboard holding thousands must not starve its own
        reads).
    """

    def __init__(
        self,
        database: "SpatialDatabase",
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        window_ms: float = 2.0,
        max_batch: int = 64,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        max_inflight: int = 32,
        max_queue: Optional[int] = None,
        max_subscriptions: int = 10_000,
    ) -> None:
        self._db = database
        self._host = host
        self._port = port
        self.chunk_size = int(chunk_size)
        self.max_inflight = int(max_inflight)
        self.max_subscriptions = int(max_subscriptions)
        #: the live-query registry: standing specs + dirty-tile index
        self.registry = SubscriptionRegistry(database)
        #: routes one registry subscription back to its wire identity:
        #: sid -> (connection, client request id, packed transport?)
        self._routes: Dict[int, tuple] = {}
        #: the cross-client admission queue; the ready hint makes the
        #: window a fallback — the queue group-commits as soon as every
        #: open connection has a request pending
        self.coalescer = BatchCoalescer(
            database,
            window_ms=window_ms,
            max_batch=max_batch,
            max_queue=max_queue,
            ready_hint=lambda: self.active_connections,
        )
        #: per-query-kind service-latency histograms (stats ``latency``)
        self.latency = LatencyPanel()
        #: monotonic stamp source for stream open order (shed policy)
        self._stream_clock = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: Set[_Connection] = set()
        #: lifetime server counters (the ``server`` stats section)
        self.metrics: Dict[str, int] = {
            "connections_total": 0,
            "requests_total": 0,
            "streams_opened": 0,
            "streams_completed": 0,
            "streams_cancelled": 0,
            "errors_sent": 0,
            "writes_total": 0,
            "subscriptions_opened": 0,
            "subscriptions_closed": 0,
            "notifications_sent": 0,
            "queries_shed": 0,
            "streams_shed": 0,
        }

    # -- lifecycle ---------------------------------------------------------

    @property
    def address(self) -> tuple:
        """The bound ``(host, port)`` (valid after :meth:`start`)."""
        if self._server is None:
            raise RuntimeError("server is not started")
        return self._server.sockets[0].getsockname()[:2]

    @property
    def active_connections(self) -> int:
        """Connections currently open."""
        return len(self._connections)

    @property
    def active_streams(self) -> int:
        """Streams currently open across all connections."""
        return sum(len(c.streams) for c in self._connections)

    @property
    def active_subscriptions(self) -> int:
        """Standing subscriptions currently registered."""
        return self.registry.active

    async def start(self) -> tuple:
        """Bind and start accepting; returns the bound ``(host, port)``."""
        if self._server is not None:
            raise RuntimeError("server is already started")
        self._server = await asyncio.start_server(
            self._handle_connection,
            self._host,
            self._port,
            limit=MAX_LINE_BYTES,
        )
        return self.address

    async def stop(self) -> None:
        """Stop accepting, close every connection, tear down streams."""
        if self._server is None:
            return
        self._server.close()
        await self._server.wait_closed()
        self._server = None
        for connection in list(self._connections):
            self._teardown(connection)
            connection.writer.close()
        self.coalescer.flush_now()

    async def serve_forever(self) -> None:
        """:meth:`start` (if needed) and serve until cancelled."""
        if self._server is None:
            await self.start()
        await self._server.serve_forever()

    # -- connection handling -----------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One client session: hello, then a frame loop until EOF."""
        connection = _Connection(writer)
        self._connections.add(connection)
        self.metrics["connections_total"] += 1
        try:
            await self._send(
                connection,
                {
                    "type": "hello",
                    "protocol": PROTOCOL_VERSION,
                    "server": f"repro/{_server_version()}",
                    "points": len(self._db),
                },
            )
            while True:
                try:
                    line = await reader.readline()
                except (
                    asyncio.LimitOverrunError,
                    ValueError,
                ):  # line exceeded the stream limit
                    await self._send_error(
                        connection,
                        None,
                        "bad-frame",
                        f"frame exceeds the {MAX_LINE_BYTES}-byte line limit",
                    )
                    break
                if not line:
                    break  # EOF: client closed (or vanished)
                if not line.strip():
                    continue  # blank keep-alive lines are tolerated
                try:
                    frame = decode_frame(line)
                except ProtocolError as exc:
                    await self._send_error(
                        connection, None, exc.code, exc.message
                    )
                    continue
                await self._dispatch(connection, frame)
        except ConnectionError:
            pass  # client vanished mid-write; teardown below
        finally:
            self._teardown(connection)
            self._connections.discard(connection)
            writer.close()

    def _teardown(self, connection: _Connection) -> None:
        """Close every open stream of a finished connection.

        This is the disconnect-cancellation path: closing the chunk
        iterator propagates to the underlying lazy expansion
        (``QueryResult.chunks`` closes its source stream), so a client
        that vanishes mid-stream abandons the remaining work instead of
        leaking a half-consumed iterator.

        Standing subscriptions die with their connection: every one is
        unregistered (freeing its tile-index entries), its wire route is
        dropped, and the delivery queue plus its drain task are
        released — a disconnected subscriber costs the registry nothing.
        """
        for stream in list(connection.streams.values()):
            stream.close()
            self.metrics["streams_cancelled"] += 1
        connection.streams.clear()
        connection.inflight.clear()
        for subscription in connection.subscriptions.values():
            self.registry.unregister(subscription)
            self._routes.pop(subscription.sid, None)
            self.metrics["subscriptions_closed"] += 1
        connection.subscriptions.clear()
        if connection.notifier is not None:
            connection.notifier.cancel()
            connection.notifier = None
        connection.queue = None

    async def _send(self, connection: _Connection, frame: Dict) -> None:
        """Encode and write one frame (serialised per connection)."""
        data = encode_frame(frame)
        async with connection.lock:
            connection.writer.write(data)
            await connection.writer.drain()

    async def _send_error(
        self,
        connection: _Connection,
        request_id: Optional[int],
        code: str,
        message: str,
        *,
        retry_after_ms: Optional[int] = None,
    ) -> None:
        """Write an ``error`` frame and count it."""
        self.metrics["errors_sent"] += 1
        await self._send(
            connection,
            error_frame(
                request_id, code, message, retry_after_ms=retry_after_ms
            ),
        )

    # -- frame dispatch ----------------------------------------------------

    async def _dispatch(self, connection: _Connection, frame: Dict) -> None:
        """Route one validated frame to its handler.

        Every frame is *admitted* inline, in arrival order: a batch
        query joins the coalescer queue before the read loop touches the
        next frame, and a write frame flushes-then-mutates before any
        later read is admitted.  That inline admission is what makes the
        version a request observes a pure function of wire order.  Only
        the *delivery* of a batch result runs in a task (awaiting the
        batch future), so one connection can still pipeline requests
        while the coalescer window is open (and the ``max_inflight``
        admission cap stays reachable).  Stream frames are handled
        inline end-to-end: they only await fast writes, and their
        ordering guarantees (open, then ``next``/``cancel``) come from
        being processed in arrival order.
        """
        frame_type = frame["type"]
        if frame_type == "query":
            await self._on_query(connection, frame)
        elif frame_type in ("insert", "extend", "delete"):
            await self._on_write(connection, frame)
        elif frame_type == "next":
            await self._on_next(connection, frame)
        elif frame_type == "cancel":
            await self._on_cancel(connection, frame)
        elif frame_type == "subscribe":
            await self._on_subscribe(connection, frame)
        elif frame_type == "unsubscribe":
            await self._on_unsubscribe(connection, frame)
        else:  # "stats" — the only remaining client frame type
            await self._on_stats(connection)

    async def _on_query(self, connection: _Connection, frame: Dict) -> None:
        """Admit one query: coalesced batch result or chunked stream."""
        request_id = frame["id"]
        if (
            request_id in connection.inflight
            or request_id in connection.subscriptions
        ):
            await self._send_error(
                connection,
                request_id,
                "bad-request",
                f"request id {request_id} is already in flight",
            )
            return
        if len(connection.inflight) >= self.max_inflight:
            await self._send_error(
                connection,
                request_id,
                "too-many-requests",
                f"connection exceeds {self.max_inflight} in-flight requests",
            )
            return
        try:
            spec = parse_query_spec(frame)
        except ProtocolError as exc:
            await self._send_error(
                connection, request_id, exc.code, exc.message
            )
            return
        self.metrics["requests_total"] += 1
        connection.inflight.add(request_id)
        if frame.get("stream"):
            await self._open_stream(connection, request_id, spec, frame)
            return
        admitted_at = perf_counter()
        try:
            # Synchronous admission: the spec is in the batch window
            # before the read loop sees the next frame, so a write frame
            # arriving later on *any* connection cannot reorder ahead.
            future = self.coalescer.enqueue(spec, client=connection)
        except CoalescerOverloaded as exc:
            # Load shed: the bounded admission queue is full.  The
            # arrival is refused with a backoff hint, and sustained
            # overload also evicts the oldest open stream — the one
            # resource class that pins memory (a snapshot) while
            # contributing nothing to draining the queue.
            connection.inflight.discard(request_id)
            self.metrics["queries_shed"] += 1
            await self._shed_oldest_stream(exc.retry_after_ms)
            await self._send_error(
                connection,
                request_id,
                "overloaded",
                str(exc),
                retry_after_ms=exc.retry_after_ms,
            )
            return
        except Exception as exc:
            connection.inflight.discard(request_id)
            # Admission-time rejections (degenerate regions, empty
            # database, value errors) are the client's fault; anything
            # else is an execution failure on our side.
            code = (
                "bad-spec"
                if isinstance(exc, (ValueError, ReproError))
                else "server-error"
            )
            await self._send_error(connection, request_id, code, str(exc))
            return
        task = asyncio.ensure_future(
            self._deliver_result(
                connection, request_id, spec, frame, future, admitted_at
            )
        )
        connection.tasks.add(task)
        task.add_done_callback(connection.tasks.discard)

    async def _shed_oldest_stream(self, retry_after_ms: int) -> None:
        """Overload shed policy: evict the oldest open chunked stream.

        Open streams pin MVCC snapshots for as long as the client cares
        to paginate — under overload that is memory held against the
        very capacity the queue is waiting for.  The oldest stream (the
        one whose snapshot horizon is furthest behind, pinning the most
        superseded state) is torn down and its owner notified with an
        ``overloaded`` error so it can re-issue the query after the
        backoff.  No-op when no stream is open.
        """
        victim_connection: Optional[_Connection] = None
        victim: Optional[_Stream] = None
        for candidate in self._connections:
            for stream in candidate.streams.values():
                if victim is None or stream.opened < victim.opened:
                    victim_connection = candidate
                    victim = stream
        if victim is None or victim_connection is None:
            return
        victim_connection.streams.pop(victim.request_id, None)
        victim_connection.inflight.discard(victim.request_id)
        victim.close()
        self.metrics["streams_shed"] += 1
        try:
            await self._send_error(
                victim_connection,
                victim.request_id,
                "overloaded",
                "stream shed under overload; re-issue after backoff",
                retry_after_ms=retry_after_ms,
            )
        except ConnectionError:  # pragma: no cover - victim vanished
            pass

    async def _deliver_result(
        self,
        connection: _Connection,
        request_id: int,
        spec,
        frame: Dict,
        future: "asyncio.Future",
        admitted_at: float,
    ) -> None:
        """Await an admitted batch query's record and write its result.

        On success the admission-to-response wall time lands in the
        per-kind latency histogram — the server-side component of what
        the client experiences, including queue wait, batch execution,
        and response serialisation.
        """
        try:
            try:
                record = await future
            except Exception as exc:
                connection.inflight.discard(request_id)
                code = (
                    "bad-spec"
                    if isinstance(exc, (ValueError, ReproError))
                    else "server-error"
                )
                await self._send_error(
                    connection, request_id, code, str(exc)
                )
                return
            connection.inflight.discard(request_id)
            response: Dict = {
                "type": "result",
                "id": request_id,
                "stats": _stats_to_wire(record.stats),
            }
            if frame.get("packed"):
                # Columnar wire edge: one base64 int64 array instead of
                # one JSON number per row (see protocol.pack_ids) — the
                # id payload's encode cost scales far below per-row JSON.
                response["ids_packed"] = pack_ids(record.ids)
            else:
                response["ids"] = list(record.ids)
            if frame.get("explain"):
                response["explain"] = self._db.explain(spec).render()
            await self._send(connection, response)
            self.latency.record_ms(
                spec.kind, (perf_counter() - admitted_at) * 1000.0
            )
        except ConnectionError:
            pass  # client vanished before its result could be written

    async def _on_write(self, connection: _Connection, frame: Dict) -> None:
        """Apply one mutation frame and acknowledge with a ``write`` frame.

        The mutation goes through
        :meth:`~repro.server.coalescer.BatchCoalescer.apply_write`, which
        flushes pending reads first (they observe the pre-write version)
        and then mutates synchronously on the event loop — so by the
        time the next frame is read, every later query sees the new
        version.  Open chunked streams are untouched: they hold a
        :class:`~repro.core.store.StoreSnapshot` pinned at their own
        admission.  Rejections (out-of-range rows, double deletes,
        non-finite coordinates that slipped past frame validation) are
        ``bad-request`` errors and leave the database bit-identical.
        """
        received_at = perf_counter()
        request_id = frame["id"]
        if (
            request_id in connection.inflight
            or request_id in connection.subscriptions
        ):
            await self._send_error(
                connection,
                request_id,
                "bad-request",
                f"request id {request_id} is already in flight",
            )
            return
        op = frame["type"]
        db = self._db
        # O(1) pre-write snapshot: the delta evaluators' guard horizon
        # (only needed when someone is actually subscribed).
        pre = db.store.snapshot() if self.registry.active else None
        try:
            if op == "insert":
                x, y = float(frame["x"]), float(frame["y"])
                coords = [(x, y)]
                rows = [
                    self.coalescer.apply_write(lambda: db.insert((x, y)))
                ]
            elif op == "extend":
                pairs = [
                    (float(x), float(y)) for x, y in frame["points"]
                ]
                coords = pairs
                rows = list(
                    self.coalescer.apply_write(lambda: db.extend(pairs))
                )
            else:  # "delete"
                row = int(frame["row"])
                self.coalescer.apply_write(lambda: db.delete(row))
                rows = [row]
                coords = [db.store.coords(row)]
        except (IndexError, ValueError, ReproError) as exc:
            await self._send_error(
                connection, request_id, "bad-request", str(exc)
            )
            return
        except Exception as exc:  # pragma: no cover - defensive
            await self._send_error(
                connection, request_id, "server-error", str(exc)
            )
            return
        self.metrics["writes_total"] += 1
        if pre is not None:
            self._fan_out(op, rows, coords, pre)
        await self._send(
            connection,
            {
                "type": "write",
                "id": request_id,
                "op": op,
                "rows": rows,
                "version": db.version,
                "points": len(db),
            },
        )
        self.latency.record_ms(
            "write", (perf_counter() - received_at) * 1000.0
        )

    def _fan_out(self, op, rows, coords, pre) -> None:
        """Push one applied write's deltas into the delivery queues.

        Runs synchronously right after the mutation (still inside the
        write frame's dispatch, so admission order equals version
        order), but only *enqueues*: actual socket writes happen in each
        connection's drain task, so a subscriber that stopped reading
        backlogs its own queue and nothing else.  The coalescer's
        subscription counters are refreshed here — the write path is
        the one place that knows both sides.
        """
        version = self._db.version
        events = self.registry.apply_write(op, rows, coords, pre=pre)
        stats = self.coalescer.stats
        registry_stats = self.registry.stats
        stats.subscriptions = self.registry.active
        stats.notifications = registry_stats.notifications
        stats.subscription_fanout = registry_stats.fanout
        for subscription, delta in events:
            route = self._routes.get(subscription.sid)
            if route is None:  # pragma: no cover - unregistered race
                continue
            owner, request_id, packed = route
            notify: Dict = {
                "type": "notify",
                "id": request_id,
                "version": version,
            }
            if packed:
                notify["added_packed"] = pack_ids(delta.added)
                notify["removed_packed"] = pack_ids(delta.removed)
            else:
                notify["added"] = delta.added
                notify["removed"] = delta.removed
            self._enqueue_frame(owner, notify)

    def _enqueue_frame(self, connection: _Connection, frame: Dict) -> None:
        """Queue one subscription frame for asynchronous delivery.

        The queue (and its drain task) is created on first use and
        lives until teardown; ``put_nowait`` on the unbounded queue
        keeps the write path non-blocking by construction.
        """
        if connection.queue is None:
            connection.queue = asyncio.Queue()
            connection.notifier = asyncio.ensure_future(
                self._drain_queue(connection)
            )
        connection.queue.put_nowait(frame)

    async def _drain_queue(self, connection: _Connection) -> None:
        """Deliver queued subscription frames in order, until torn down."""
        try:
            while True:
                frame = await connection.queue.get()
                await self._send(connection, frame)
                if frame["type"] == "notify":
                    self.metrics["notifications_sent"] += 1
        except ConnectionError:  # subscriber vanished; teardown follows
            pass

    async def _on_subscribe(
        self, connection: _Connection, frame: Dict
    ) -> None:
        """Register one standing query and ack with its initial result.

        Registration plus the initial evaluation run synchronously on
        the event loop, so the ``subscribed`` frame's ids and version
        are atomic with respect to writes: every later write is either
        fully reflected in the initial ids or delivered as a ``notify``
        — never both, never neither.
        """
        request_id = frame["id"]
        if (
            request_id in connection.inflight
            or request_id in connection.subscriptions
        ):
            await self._send_error(
                connection,
                request_id,
                "bad-request",
                f"request id {request_id} is already in flight",
            )
            return
        if len(connection.subscriptions) >= self.max_subscriptions:
            await self._send_error(
                connection,
                request_id,
                "too-many-requests",
                f"connection exceeds {self.max_subscriptions} "
                "standing subscriptions",
            )
            return
        try:
            spec = parse_query_spec(frame)
        except ProtocolError as exc:
            await self._send_error(
                connection, request_id, exc.code, exc.message
            )
            return
        self.metrics["requests_total"] += 1
        try:
            subscription, ids = self.registry.register(
                spec, owner=connection
            )
        except (ValueError, ReproError) as exc:
            await self._send_error(
                connection, request_id, "bad-spec", str(exc)
            )
            return
        except Exception as exc:  # pragma: no cover - defensive
            await self._send_error(
                connection, request_id, "server-error", str(exc)
            )
            return
        packed = bool(frame.get("packed"))
        connection.subscriptions[request_id] = subscription
        self._routes[subscription.sid] = (connection, request_id, packed)
        self.metrics["subscriptions_opened"] += 1
        ack: Dict = {
            "type": "subscribed",
            "id": request_id,
            "version": self._db.version,
        }
        if packed:
            ack["ids_packed"] = pack_ids(ids)
        else:
            ack["ids"] = ids
        # Through the delivery queue, not a direct send: the ack must
        # precede every notify for this id, and the queue is the one
        # total order the subscription's frames share.
        self._enqueue_frame(connection, ack)

    async def _on_unsubscribe(
        self, connection: _Connection, frame: Dict
    ) -> None:
        """Tear one subscription down; ack *after* its queued notifies."""
        request_id = frame["id"]
        subscription = connection.subscriptions.pop(request_id, None)
        if subscription is None:
            await self._send_error(
                connection,
                request_id,
                "bad-request",
                f"no subscription with id {request_id}",
            )
            return
        self.registry.unregister(subscription)
        self._routes.pop(subscription.sid, None)
        self.metrics["subscriptions_closed"] += 1
        self._enqueue_frame(
            connection,
            {
                "type": "unsubscribed",
                "id": request_id,
                "notifications": subscription.notifications,
            },
        )

    async def _open_stream(
        self,
        connection: _Connection,
        request_id: int,
        spec,
        frame: Dict,
    ) -> None:
        """Start a chunked stream and push its first chunk.

        Time-to-first-chunk lands in the latency panel under the
        ``stream`` kind — the tail metric a paginating client feels.
        """
        opened_at = perf_counter()
        size = frame.get("chunk_size", self.chunk_size)
        stream = _Stream(request_id, chunks=None)  # type: ignore[arg-type]
        self._stream_clock += 1
        stream.opened = self._stream_clock

        def count(_point) -> bool:
            # The examined counter rides the spec's predicate slot: the
            # lazy executors invoke a predicate exactly once per examined
            # candidate, so this measures real work — for an unbounded
            # kNN, the first chunk reports examined == chunk_size, the
            # wire-visible proof that streaming never ranks the rest of
            # the database.  Wire specs cannot carry a predicate of
            # their own (no closure serialisation), so the slot is free.
            stream.examined += 1
            return True

        try:
            self._db.engine.validate_spec(spec)
        except Exception as exc:
            connection.inflight.discard(request_id)
            await self._send_error(
                connection, request_id, "bad-spec", str(exc)
            )
            return
        result = self._db.query(spec.where(count))
        stream.chunks = result.chunks(size)
        connection.streams[request_id] = stream
        self.metrics["streams_opened"] += 1
        await self._push_chunk(connection, stream)
        self.latency.record_ms(
            "stream", (perf_counter() - opened_at) * 1000.0
        )

    async def _push_chunk(
        self, connection: _Connection, stream: _Stream
    ) -> None:
        """Produce and send one chunk; finish the stream on exhaustion.

        ``done`` reports *stream exhausted* (the chunk iterator returned
        nothing), never a guess from a short chunk — so a final chunk of
        exactly ``chunk_size`` rows is followed by one empty ``done``
        chunk on the next ``next``, and the client logic stays a plain
        "read until done".
        """
        try:
            rows = next(stream.chunks, None)
        except Exception as exc:
            connection.streams.pop(stream.request_id, None)
            connection.inflight.discard(stream.request_id)
            stream.close()
            await self._send_error(
                connection, stream.request_id, "server-error", str(exc)
            )
            return
        frame = {
            "type": "chunk",
            "id": stream.request_id,
            "seq": stream.seq,
            "rows": rows_to_wire(rows or []),
            "done": rows is None,
            "examined": stream.examined,
        }
        stream.seq += 1
        if rows is None:
            connection.streams.pop(stream.request_id, None)
            connection.inflight.discard(stream.request_id)
            stream.close()
            self.metrics["streams_completed"] += 1
        await self._send(connection, frame)

    async def _on_next(self, connection: _Connection, frame: Dict) -> None:
        """Client-driven continuation: produce the next chunk."""
        stream = connection.streams.get(frame["id"])
        if stream is None:
            await self._send_error(
                connection,
                frame["id"],
                "bad-request",
                f"no open stream with id {frame['id']}",
            )
            return
        await self._push_chunk(connection, stream)

    async def _on_cancel(self, connection: _Connection, frame: Dict) -> None:
        """Tear down an open stream; acknowledge with a final chunk."""
        request_id = frame["id"]
        stream = connection.streams.pop(request_id, None)
        if stream is None:
            await self._send_error(
                connection,
                request_id,
                "bad-request",
                f"no open stream with id {request_id}",
            )
            return
        stream.close()
        connection.inflight.discard(request_id)
        self.metrics["streams_cancelled"] += 1
        await self._send(
            connection,
            {
                "type": "chunk",
                "id": request_id,
                "seq": stream.seq,
                "rows": [],
                "done": True,
                "cancelled": True,
                "examined": stream.examined,
            },
        )

    async def _on_stats(self, connection: _Connection) -> None:
        """Answer a ``stats`` request with every counter section."""
        server = dict(self.metrics)
        server["connections"] = self.active_connections
        server["streams_open"] = self.active_streams
        subscriptions = self.registry.stats.as_dict()
        subscriptions["active"] = self.registry.active
        latency: Dict[str, object] = {
            "admission_wait": self.coalescer.admission_wait.as_dict(),
            "kinds": self.latency.as_dict(),
        }
        await self._send(
            connection,
            {
                "type": "stats",
                "server": server,
                "coalescer": self.coalescer.stats.as_dict(),
                "engine": self._db.engine.totals.as_dict(),
                "subscriptions": subscriptions,
                "latency": latency,
            },
        )


def _stats_to_wire(stats) -> Dict:
    """JSON-ready form of one record's :class:`~repro.core.stats.QueryStats`."""
    from dataclasses import asdict

    data = asdict(stats)
    data["time_ms"] = round(float(data["time_ms"]), 4)
    return data


def _server_version() -> str:
    """The library version string (import deferred to avoid cycles)."""
    import repro

    return repro.__version__


class ServerThread:
    """A :class:`QueryServer` hosted on a background event loop.

    The blocking harness used by tests, benchmarks, and the experiment
    workload: construction starts the loop thread, binds the server, and
    blocks until it accepts connections; :meth:`close` (or leaving the
    ``with`` block) stops it.  ``host``/``port`` attributes hold the
    bound address.
    """

    def __init__(self, database: "SpatialDatabase", **server_kwargs) -> None:
        self.server = QueryServer(database, **server_kwargs)
        self._ready = threading.Event()
        self._stop: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._failure: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._run, name="repro-query-server", daemon=True
        )
        self._thread.start()
        self._ready.wait()
        if self._failure is not None:
            raise RuntimeError(
                "query server failed to start"
            ) from self._failure
        #: the bound listen address
        self.host, self.port = self.server.address

    def _run(self) -> None:
        """Thread target: run the server until :meth:`close`."""
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # pragma: no cover - startup failures
            self._failure = exc
            self._ready.set()

    async def _main(self) -> None:
        """Start the server, signal readiness, park until stopped."""
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        await self.server.start()
        self._ready.set()
        await self._stop.wait()
        await self.server.stop()

    def close(self) -> None:
        """Stop the server and join the loop thread (idempotent)."""
        if self._loop is not None and self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=10.0)
        self._loop = None

    def __enter__(self) -> "ServerThread":
        """Context-manager entry: the server is already accepting."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: stop the server."""
        self.close()
