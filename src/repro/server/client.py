"""A small blocking client for the NDJSON query server.

:class:`QueryClient` speaks the protocol of
:mod:`repro.server.protocol` over a plain TCP socket: one request at a
time, responses read synchronously — exactly the shape tests,
benchmarks, and the ``python -m repro query --remote`` CLI need.  (The
*server* supports pipelining; a client wanting it can hold several
:class:`QueryClient` connections, which is also how the benchmark
simulates concurrent tenants.)

Specs are the library's own immutable :class:`~repro.query.spec.Query`
objects; the client serialises them with
:func:`repro.query.serialize.spec_to_dict`, so anything expressible
locally (minus predicates, which have no wire form) works remotely::

    from repro.server import QueryClient
    from repro.query.spec import KnnQuery, WindowQuery

    with QueryClient(host, port) as client:
        result = client.query(WindowQuery((0.4, 0.4, 0.6, 0.6)))
        print(result.ids, result.stats["method"])
        for row_id in client.stream(KnnQuery((0.5, 0.5), None)):
            ...  # unbounded kNN, chunked server-side; break to cancel
        ack = client.insert(0.25, 0.75)   # mutations: insert/extend/delete
        client.delete(ack.rows[0])
        sub = client.subscribe(WindowQuery((0.0, 0.0, 0.5, 0.5)))
        ...                               # another client writes...
        for note in client.notifications(timeout=1.0):
            print(note.subscription_id, note.added, note.removed)
        sub.unsubscribe()

Live queries ride the same socket: :meth:`QueryClient.subscribe`
registers a standing query, the server pushes ``notify`` frames as
writes change its result, and :meth:`QueryClient.notifications` drains
them (they are also buffered transparently whenever one arrives while a
normal response is being awaited — a pushed frame never corrupts a
request/response exchange).
"""

from __future__ import annotations

import select
import socket
import time
import weakref
from collections import deque
from typing import Deque, Dict, Iterator, List, Optional

from repro.query.serialize import spec_to_dict
from repro.query.spec import Query
from repro.server.protocol import (
    DEFAULT_CHUNK_SIZE,
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    decode_frame,
    delta_ids,
    encode_frame,
    result_ids,
)


class ConnectionLost(ConnectionError):
    """The server closed (or dropped) the connection under this client.

    Raised instead of a bare :class:`ConnectionError` wherever the
    client can *prove* the peer is gone — an empty ``recv`` on a socket
    ``select`` reported readable — so callers can tell a dead server
    from an idle poll timeout (:meth:`QueryClient.notifications` and
    the ``--timeout`` CLI flag return/exit differently for the two).
    Subclasses :class:`ConnectionError`, so existing transport-level
    handlers keep working.
    """


class RemoteError(RuntimeError):
    """An ``error`` frame received from the server.

    Carries the frame's stable ``code`` (see
    :data:`repro.server.protocol.ERROR_CODES`) alongside the message,
    and — for ``overloaded`` load-shedding errors — the server's
    ``retry_after_ms`` backoff hint (``None`` otherwise).
    """

    def __init__(
        self,
        code: str,
        message: str,
        *,
        retry_after_ms: Optional[int] = None,
    ) -> None:
        super().__init__(f"[{code}] {message}")
        #: the error frame's machine-readable code
        self.code = code
        #: load-shedding backoff hint in milliseconds (or ``None``)
        self.retry_after_ms = retry_after_ms


def _remote_error(frame: Dict) -> RemoteError:
    """Build a :class:`RemoteError` from one decoded ``error`` frame."""
    return RemoteError(
        frame["code"],
        frame["message"],
        retry_after_ms=frame.get("retry_after_ms"),
    )


class RemoteResult:
    """One ``result`` frame: ids, execution stats, optional explain.

    ``degraded``/``shards_failed`` mirror the cluster-degradation
    fields of the frame (see :mod:`repro.server.protocol`): a degraded
    result is *explicitly partial* — the named shards contributed
    nothing.  Single-process servers and healthy clusters always
    deliver ``degraded=False``.
    """

    __slots__ = ("ids", "stats", "explain", "degraded", "shards_failed")

    def __init__(
        self,
        ids: List[int],
        stats: Dict,
        explain: Optional[str],
        *,
        degraded: bool = False,
        shards_failed: Optional[List[int]] = None,
    ) -> None:
        #: result row ids (ascending for region kinds, kNN order for points)
        self.ids = ids
        #: the execution record's :class:`~repro.core.stats.QueryStats` dict
        self.stats = stats
        #: the planner's rendered explain table (``explain=True`` only)
        self.explain = explain
        #: whether this result is explicitly partial (shards lost)
        self.degraded = bool(degraded)
        #: worker indices that could not contribute (empty when healthy)
        self.shards_failed = list(shards_failed or [])

    def __len__(self) -> int:
        """Number of result rows."""
        return len(self.ids)

    def __iter__(self):
        """Iterate the result row ids."""
        return iter(self.ids)

    def __repr__(self) -> str:
        return (
            f"RemoteResult({len(self.ids)} rows, "
            f"method={self.stats.get('method')!r})"
        )


class WriteAck:
    """One ``write`` frame: the server's acknowledgement of a mutation."""

    __slots__ = ("op", "rows", "version", "points")

    def __init__(self, frame: Dict) -> None:
        #: the acknowledged operation (``insert``/``extend``/``delete``)
        self.op = frame["op"]
        #: affected row ids (assigned ids for inserts, deleted id for delete)
        self.rows = list(frame["rows"])
        #: the database version after the mutation
        self.version = int(frame["version"])
        #: live points after the mutation (excludes tombstones)
        self.points = int(frame["points"])

    def __repr__(self) -> str:
        return (
            f"WriteAck(op={self.op!r}, rows={self.rows}, "
            f"version={self.version}, points={self.points})"
        )


class Notification:
    """One server-pushed ``notify`` frame: a subscription's delta."""

    __slots__ = ("subscription_id", "version", "added", "removed")

    def __init__(self, frame: Dict) -> None:
        #: the client-chosen id of the subscription this delta belongs to
        self.subscription_id = frame["id"]
        #: the post-write data version that produced the delta
        self.version = int(frame["version"])
        #: row ids that entered the result
        self.added = delta_ids(frame, "added")
        #: row ids that left the result
        self.removed = delta_ids(frame, "removed")

    def __repr__(self) -> str:
        return (
            f"Notification(subscription={self.subscription_id}, "
            f"version={self.version}, +{len(self.added)}/"
            f"-{len(self.removed)})"
        )


class RemoteSubscription:
    """One registered standing query: its id, initial result, version.

    Produced by :meth:`QueryClient.subscribe`.  ``ids`` is the full
    result at registration time (``version``); apply the deltas of
    every :class:`Notification` with this ``id`` — in arrival order —
    to keep an exact live mirror.
    """

    __slots__ = ("_client", "id", "ids", "version")

    def __init__(
        self, client: "QueryClient", subscription_id: int, frame: Dict
    ) -> None:
        self._client = client
        #: the client-chosen subscription id (notifications carry it)
        self.id = subscription_id
        #: the initial result row ids
        self.ids = delta_ids(frame, "ids")
        #: the data version the initial result reflects
        self.version = int(frame["version"])

    def unsubscribe(self) -> int:
        """Tear the subscription down; returns its lifetime notify count."""
        return self._client.unsubscribe(self.id)

    def __repr__(self) -> str:
        return (
            f"RemoteSubscription(id={self.id}, {len(self.ids)} rows, "
            f"version={self.version})"
        )


class QueryClient:
    """Blocking NDJSON client: connect, query, stream, stats, close.

    Parameters
    ----------
    host, port:
        The server's listen address (see
        :attr:`repro.server.app.QueryServer.address`).
    timeout:
        Socket timeout in seconds for connect and each response read.
    """

    def __init__(
        self, host: str, port: int, *, timeout: float = 30.0
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.settimeout(timeout)
        # Client-side line buffer (instead of socket.makefile): keeping
        # the read-ahead bytes in our own buffer is what lets
        # notifications() poll with select() without ever losing a
        # frame the kernel already handed us.
        self._rbuf = bytearray()
        self._next_id = 0
        # cancels sent without waiting for their ack (abandoned streams);
        # _read_response consumes the acks in passing
        self._unacked_cancels: set = set()
        # server-pushed notify frames read while waiting for another
        # response; drained by notifications()
        self._notifications: Deque[Notification] = deque()
        # open RemoteStream instances by request id (weak: an abandoned
        # stream must still reach its finalizer).  Lets an unsolicited
        # 'overloaded' error — the server shedding a stream — land on
        # the right stream instead of poisoning an unrelated response.
        self._streams: "weakref.WeakValueDictionary[int, RemoteStream]" = (
            weakref.WeakValueDictionary()
        )
        #: the server's ``hello`` frame (protocol checked on connect)
        self.hello = self._read_frame()
        if self.hello.get("type") != "hello":
            raise ProtocolError(
                "bad-frame",
                f"expected a hello frame, got {self.hello.get('type')!r}",
            )
        if self.hello["protocol"] != PROTOCOL_VERSION:
            self.close()
            raise ProtocolError(
                "bad-frame",
                f"server speaks protocol {self.hello['protocol']}, "
                f"this client speaks {PROTOCOL_VERSION}",
            )

    # -- plumbing ----------------------------------------------------------

    def _send_frame(self, frame: Dict) -> None:
        self._sock.sendall(encode_frame(frame))

    def _readline(self, timeout: Optional[float] = None) -> Optional[bytes]:
        """One NDJSON line from the buffer/socket; None on poll timeout.

        ``timeout=None`` blocks (bounded by the socket timeout, exactly
        like the old ``makefile`` reader); a finite ``timeout`` polls
        with ``select`` and returns ``None`` when no complete line
        arrived in time — with any partial line left intact in the
        buffer for the next read.

        A ``None`` return always means *idle peer*, never *dead peer*:
        even with the poll budget already spent, the socket is polled
        once more at zero timeout — a peer that closed the connection
        is readable (EOF), so it raises :class:`ConnectionLost` instead
        of masquerading as "no data yet".
        """
        deadline = (
            None if timeout is None else time.monotonic() + max(0.0, timeout)
        )
        while True:
            index = self._rbuf.find(b"\n")
            if index >= 0:
                line = bytes(self._rbuf[: index + 1])
                del self._rbuf[: index + 1]
                return line
            if len(self._rbuf) > MAX_LINE_BYTES:
                raise ProtocolError(
                    "bad-frame",
                    f"line exceeds the {MAX_LINE_BYTES}-byte limit",
                )
            if deadline is not None:
                remaining = deadline - time.monotonic()
                readable, _, _ = select.select(
                    [self._sock], [], [], max(0.0, remaining)
                )
                if not readable:
                    return None
            chunk = self._sock.recv(65_536)
            if not chunk:
                raise ConnectionLost("server closed the connection")
            self._rbuf += chunk

    def _read_frame(self) -> Dict:
        line = self._readline()
        if not line:  # pragma: no cover - _readline raises instead
            raise ConnectionError("server closed the connection")
        return decode_frame(line)

    def _read_response(self, request_id: Optional[int]) -> Dict:
        """Read one frame, surfacing ``error`` frames as exceptions.

        Acks for lazily-cancelled streams (:meth:`RemoteStream.abandon`)
        are consumed and skipped here — the server answers frames in
        order, so such an ack can only sit *between* real responses.
        Server-pushed ``notify`` frames can arrive at any point; they
        are buffered for :meth:`notifications` and never consume a
        response slot.
        """
        while True:
            frame = self._read_frame()
            frame_id = frame.get("id")
            if frame["type"] == "notify":
                self._notifications.append(Notification(frame))
                continue
            if (
                frame_id in self._unacked_cancels
                and frame["type"] == "chunk"
                and frame.get("cancelled")
            ):
                self._unacked_cancels.discard(frame_id)
                continue
            if frame["type"] == "error":
                if frame_id != request_id and self._absorb_stream_shed(
                    frame
                ):
                    continue
                raise _remote_error(frame)
            if request_id is not None and frame_id != request_id:
                raise ProtocolError(
                    "bad-frame",
                    f"response correlates to id {frame_id!r}, "
                    f"expected {request_id}",
                )
            return frame

    def _absorb_stream_shed(self, frame: Dict) -> bool:
        """Route an unsolicited ``error`` frame to the stream it sheds.

        Under overload the server may tear down an open stream and push
        an ``overloaded`` error carrying that stream's id.  When the
        frame names one of this client's open streams, the stream is
        marked shed (its iterator raises the error on the next row) and
        the frame is consumed; returns ``False`` for every other error
        frame so the caller raises it normally.
        """
        frame_id = frame.get("id")
        stream = (
            self._streams.pop(frame_id, None)
            if frame_id is not None
            else None
        )
        if stream is None:
            return False
        stream._mark_shed(_remote_error(frame))
        return True

    def _lazy_cancel(self, request_id: int) -> None:
        """Best-effort ``cancel`` without reading the ack (finalizers).

        Used when a stream is abandoned rather than closed: the cancel
        frame goes out (so the server tears the stream down and frees
        the request id) and the ack is consumed by a later
        :meth:`_read_response`.  Failures are swallowed — a finalizer
        must never raise, and a dead connection cancels server-side
        anyway.
        """
        try:
            self._send_frame({"type": "cancel", "id": request_id})
            self._unacked_cancels.add(request_id)
        except Exception:  # noqa: BLE001 - connection already gone
            pass

    def _allocate_id(self) -> int:
        self._next_id += 1
        return self._next_id

    # -- the client surface ------------------------------------------------

    def query(self, spec: Query, *, explain: bool = False) -> RemoteResult:
        """Answer ``spec`` through the server's coalesced batch path.

        Returns the de-multiplexed :class:`RemoteResult`; with
        ``explain=True`` the planner's rendered decision table rides
        along.  Raises :class:`RemoteError` on a per-request ``error``
        frame (bad spec, admission limits, execution failure).
        """
        request_id = self._allocate_id()
        frame: Dict = {
            "type": "query",
            "id": request_id,
            "spec": spec_to_dict(spec),
            # Ask for the columnar id transport: one base64 int64 array
            # beats one JSON number per row on both ends of the wire.
            "packed": True,
        }
        if explain:
            frame["explain"] = True
        self._send_frame(frame)
        response = self._read_response(request_id)
        if response["type"] != "result":
            raise ProtocolError(
                "bad-frame",
                f"expected a result frame, got {response['type']!r}",
            )
        return RemoteResult(
            result_ids(response),
            response["stats"],
            response.get("explain"),
            degraded=response.get("degraded", False),
            shards_failed=response.get("shards_failed"),
        )

    def stream(
        self, spec: Query, *, chunk_size: int = DEFAULT_CHUNK_SIZE
    ) -> "RemoteStream":
        """Open a chunked stream over ``spec``; iterate rows lazily.

        The returned :class:`RemoteStream` yields individual rows,
        requesting a new ``chunk_size``-row chunk from the server only
        when the previous one is exhausted — an unbounded
        ``KnnQuery(k=None)`` therefore costs the server ~``chunk_size``
        examined candidates per chunk, never a full ranking.  Abandoning
        the iterator (``close()``, ``break`` + garbage collection, or
        leaving its ``with`` block) sends ``cancel`` so the server tears
        the underlying iterator down.
        """
        request_id = self._allocate_id()
        self._send_frame(
            {
                "type": "query",
                "id": request_id,
                "spec": spec_to_dict(spec),
                "stream": True,
                "chunk_size": chunk_size,
            }
        )
        first = self._read_response(request_id)
        if first["type"] != "chunk":
            raise ProtocolError(
                "bad-frame",
                f"expected a chunk frame, got {first['type']!r}",
            )
        stream = RemoteStream(self, request_id, first)
        if not stream.done:
            self._streams[request_id] = stream
        return stream

    def _write(self, frame: Dict) -> WriteAck:
        """Send one mutation frame and read its ``write`` ack."""
        self._send_frame(frame)
        response = self._read_response(frame["id"])
        if response["type"] != "write":
            raise ProtocolError(
                "bad-frame",
                f"expected a write frame, got {response['type']!r}",
            )
        return WriteAck(response)

    def insert(self, x: float, y: float) -> WriteAck:
        """Insert one point; the ack's ``rows`` holds its new row id.

        The mutation is durable (server-side) once this returns: any
        query sent afterwards — by this client or any other — observes
        it.  Raises :class:`RemoteError` (``bad-frame``/``bad-request``)
        on non-finite coordinates or duplicate points.
        """
        return self._write(
            {
                "type": "insert",
                "id": self._allocate_id(),
                "x": float(x),
                "y": float(y),
            }
        )

    def extend(self, points) -> WriteAck:
        """Insert a batch of ``(x, y)`` pairs; ``rows`` holds their ids.

        The batch is atomic: either every point is inserted (one index
        bulk-load, incremental Delaunay maintenance) or — on any invalid
        coordinate — none are and the server's version is unchanged.
        """
        return self._write(
            {
                "type": "extend",
                "id": self._allocate_id(),
                "points": [[float(x), float(y)] for x, y in points],
            }
        )

    def delete(self, row_id: int) -> WriteAck:
        """Tombstone one row by id.

        Deleted rows vanish from every query admitted after the ack but
        keep streaming from chunked streams opened before the delete
        (snapshot isolation).  Unknown or already-deleted rows raise
        :class:`RemoteError` with code ``bad-request``.
        """
        return self._write(
            {
                "type": "delete",
                "id": self._allocate_id(),
                "row": int(row_id),
            }
        )

    def stats(self) -> Dict:
        """The server's ``stats`` frame (server/coalescer/engine sections)."""
        self._send_frame({"type": "stats"})
        frame = self._read_response(None)
        if frame["type"] != "stats":
            raise ProtocolError(
                "bad-frame",
                f"expected a stats frame, got {frame['type']!r}",
            )
        return frame

    def subscribe(self, spec: Query) -> RemoteSubscription:
        """Register ``spec`` as a standing query; returns its handle.

        The returned :class:`RemoteSubscription` carries the full result
        at registration time and the data version it reflects.  Every
        later write that changes the result produces a
        :class:`Notification` (drain them with :meth:`notifications`)
        whose ``added``/``removed`` deltas, applied in arrival order,
        keep an exact mirror.  Subscribable specs are the leaf region
        kinds and bounded kNN — composites, predicates, and limits raise
        :class:`RemoteError` with code ``bad-spec``.
        """
        request_id = self._allocate_id()
        self._send_frame(
            {
                "type": "subscribe",
                "id": request_id,
                "spec": spec_to_dict(spec),
                "packed": True,
            }
        )
        response = self._read_response(request_id)
        if response["type"] != "subscribed":
            raise ProtocolError(
                "bad-frame",
                f"expected a subscribed frame, got {response['type']!r}",
            )
        return RemoteSubscription(self, request_id, response)

    def unsubscribe(self, subscription) -> int:
        """Tear down a subscription (handle or id); returns its notify count.

        Notifications already pushed for it may still be buffered (or in
        flight until the ``unsubscribed`` ack, which the server orders
        *after* them) — they simply describe versions from before the
        teardown.
        """
        subscription_id = getattr(subscription, "id", subscription)
        self._send_frame(
            {"type": "unsubscribe", "id": int(subscription_id)}
        )
        response = self._read_response(subscription_id)
        if response["type"] != "unsubscribed":
            raise ProtocolError(
                "bad-frame",
                f"expected an unsubscribed frame, got {response['type']!r}",
            )
        return int(response["notifications"])

    def notifications(
        self, *, timeout: float = 0.0, max_count: Optional[int] = None
    ) -> List[Notification]:
        """Drain pushed :class:`Notification` frames (oldest first).

        Returns everything already buffered, then polls the socket for
        up to ``timeout`` seconds for more (``0.0`` returns immediately
        — pure drain).  ``max_count`` caps the returned list; surplus
        stays buffered for the next call.  Only ``notify`` frames are
        expected between requests, so anything else read here raises.
        """
        drained: List[Notification] = []
        deadline = time.monotonic() + max(0.0, timeout)
        while True:
            while self._notifications:
                drained.append(self._notifications.popleft())
                if max_count is not None and len(drained) >= max_count:
                    return drained
            remaining = deadline - time.monotonic()
            if remaining <= 0 and drained:
                return drained
            line = self._readline(timeout=max(0.0, remaining))
            if line is None:
                return drained
            frame = decode_frame(line)
            if frame["type"] == "notify":
                self._notifications.append(Notification(frame))
            elif frame["type"] == "error":
                if not self._absorb_stream_shed(frame):
                    raise _remote_error(frame)
            else:
                raise ProtocolError(
                    "bad-frame",
                    "unexpected frame between requests: "
                    f"{frame['type']!r}",
                )

    def close(self) -> None:
        """Close the connection (idempotent)."""
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - best-effort teardown
            pass

    def __enter__(self) -> "QueryClient":
        """Context-manager entry (connection already established)."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: close the connection."""
        self.close()


class RemoteStream:
    """Client-side iterator over one server stream (rows, not chunks).

    Produced by :meth:`QueryClient.stream`.  Attributes expose the
    protocol-level accounting the benchmarks assert on:
    ``chunks_received`` counts ``chunk`` frames consumed, ``examined``
    mirrors the server's candidates-examined counter from the most
    recent chunk, and ``done``/``cancelled`` reflect the stream's final
    state.
    """

    def __init__(
        self, client: QueryClient, request_id: int, first_chunk: Dict
    ) -> None:
        self._client = client
        self._request_id = request_id
        self._buffer: List = list(first_chunk["rows"])
        self._position = 0
        #: ``chunk`` frames received so far
        self.chunks_received = 1
        #: the server's examined-candidates counter (latest chunk)
        self.examined = int(first_chunk.get("examined", 0))
        #: has the server reported the stream exhausted?
        self.done = bool(first_chunk["done"])
        #: did this side cancel before exhaustion?
        self.cancelled = False
        #: the ``overloaded`` error that shed this stream server-side
        #: (``None`` while healthy); raised on the next row fetch
        self.shed: Optional[RemoteError] = None
        #: whether the stream lost shards (stamped on the final chunk)
        self.degraded = bool(first_chunk.get("degraded", False))
        #: worker indices that could not contribute (final chunk)
        self.shards_failed: List[int] = list(
            first_chunk.get("shards_failed", [])
        )

    def _mark_shed(self, error: RemoteError) -> None:
        """Record a server-side shed: the stream is gone, rows raise."""
        self.shed = error
        self.cancelled = True

    def __iter__(self) -> Iterator:
        """Iterate the remaining rows, fetching chunks on demand."""
        return self

    def __next__(self):
        """The next row; sends ``next`` when the buffer runs dry."""
        while self._position >= len(self._buffer):
            if self.shed is not None:
                raise self.shed
            if self.done or self.cancelled:
                raise StopIteration
            self._fetch()
        row = self._buffer[self._position]
        self._position += 1
        return row

    def _fetch(self) -> None:
        """Request and ingest one more chunk."""
        self._client._send_frame(
            {"type": "next", "id": self._request_id}
        )
        chunk = self._client._read_response(self._request_id)
        if chunk["type"] != "chunk":
            raise ProtocolError(
                "bad-frame",
                f"expected a chunk frame, got {chunk['type']!r}",
            )
        self.chunks_received += 1
        self.examined = int(chunk.get("examined", self.examined))
        self.done = bool(chunk["done"])
        if chunk.get("degraded"):
            self.degraded = True
            self.shards_failed = list(chunk.get("shards_failed", []))
        if self.done:
            self._client._streams.pop(self._request_id, None)
        self._buffer = list(chunk["rows"])
        self._position = 0

    def close(self) -> None:
        """Cancel the stream server-side and wait for the ack
        (no-op once done/cancelled)."""
        if self.done or self.cancelled:
            return
        self.cancelled = True
        self._client._send_frame(
            {"type": "cancel", "id": self._request_id}
        )
        ack = self._client._read_response(self._request_id)
        if ack["type"] != "chunk" or not ack.get("cancelled"):
            raise ProtocolError(
                "bad-frame", "expected a cancellation-ack chunk frame"
            )

    def abandon(self) -> None:
        """Cancel without waiting for the ack (safe in finalizers).

        The dropped-on-the-floor path: ``break``-ing out of the
        iteration and letting the stream be garbage collected lands
        here via ``__del__``, so an abandoned stream still frees its
        server-side iterator and request id.  The ack is reconciled by
        the client on its next read.  Prefer ``close()`` (or the
        ``with`` block) when you need the cancellation to be complete
        before the next call.
        """
        if self.done or self.cancelled:
            return
        self.cancelled = True
        self._client._lazy_cancel(self._request_id)

    def __del__(self) -> None:
        """Finalizer: abandon the stream if it was never closed."""
        try:
            self.abandon()
        except Exception:  # pragma: no cover - interpreter teardown
            pass

    def __enter__(self) -> "RemoteStream":
        """Context-manager entry."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: cancel if still open."""
        self.close()
