"""Lazy set-semantics merging of sorted row-id streams.

The composite query specs (:class:`~repro.query.spec.UnionQuery`,
:class:`~repro.query.spec.IntersectionQuery`,
:class:`~repro.query.spec.DifferenceQuery`) combine the results of
region-kind leaves, whose id lists are strictly increasing (sorted,
duplicate-free row ids).  The generators here merge such streams with
set semantics **without materialising the merged result**: each yields
the next merged id on demand, pulling from the inputs only as far as
needed.  That is what makes ``result.first(n)`` / ``takewhile``
consumption of a composite cheap — the merge stops as soon as the
consumer does.

All inputs must be sorted strictly increasing; outputs are too, so the
generators compose (nested composites chain them directly).
"""

from __future__ import annotations

import heapq
from typing import Iterable, Iterator, Sequence


def union_sorted(iterables: Sequence[Iterable[int]]) -> Iterator[int]:
    """Yield the sorted union of the sorted input streams, lazily.

    A k-way heap merge with duplicate suppression: memory is O(k), and
    only as many input elements are consumed as merged ids demanded.
    """
    last = None
    for value in heapq.merge(*iterables):
        if value != last:
            yield value
            last = value


def intersection_sorted(iterables: Sequence[Iterable[int]]) -> Iterator[int]:
    """Yield the sorted intersection of the sorted input streams, lazily.

    Classic k-pointer advance: every stream is advanced to the current
    maximum head; an id is yielded only when all heads agree.  Stops as
    soon as any stream is exhausted (the intersection cannot grow).
    """
    iterators = [iter(iterable) for iterable in iterables]
    if not iterators:
        return
    heads = []
    for iterator in iterators:
        head = next(iterator, None)
        if head is None:
            return
        heads.append(head)
    while True:
        target = max(heads)
        if all(head == target for head in heads):
            yield target
            for position, iterator in enumerate(iterators):
                head = next(iterator, None)
                if head is None:
                    return
                heads[position] = head
            continue
        for position, iterator in enumerate(iterators):
            while heads[position] < target:
                head = next(iterator, None)
                if head is None:
                    return
                heads[position] = head


def difference_sorted(
    base: Iterable[int], subtractors: Sequence[Iterable[int]]
) -> Iterator[int]:
    """Yield sorted ``base`` ids absent from every subtractor, lazily.

    The subtractors are merged into one sorted stream
    (:func:`union_sorted`) and advanced in lock-step with ``base`` —
    two-pointer set difference, consuming each stream at most once.
    """
    subtract = union_sorted(subtractors)
    current = next(subtract, None)
    for value in base:
        while current is not None and current < value:
            current = next(subtract, None)
        if current is None or current != value:
            yield value
