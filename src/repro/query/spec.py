"""Declarative, immutable query specifications.

A *query spec* is a small frozen value object describing **what** to ask
the database, separated from **how** it is executed: the execution
method is just another field (``method="auto"`` delegates the choice to
the cost-based planner in :mod:`repro.engine.planner`).  The same spec
value drives every execution path — :meth:`SpatialDatabase.query
<repro.core.database.SpatialDatabase.query>`, the heterogeneous batch
engine, the result cache (specs are hashable and serve directly as cache
keys), the CLI (``python -m repro query --spec-file``), and the
experiment harness — so behaviour cannot drift between paths.

The four query kinds of the library:

===================  ====================================================
:class:`AreaQuery`   all points inside a closed region (the paper's query)
:class:`WindowQuery` all points inside an axis-aligned rectangle
:class:`KnnQuery`    the ``k`` points nearest a position, nearest first
:class:`NearestQuery` the single nearest point to a position
===================  ====================================================

Composable options shared by every kind:

* ``limit`` — cap the number of returned rows (kNN order for point
  queries, ascending row-id order for region queries);
* ``predicate`` — an arbitrary Python filter on the candidate
  :class:`~repro.geometry.point.Point` (specs with a predicate are
  executed but never cached, since a closure's behaviour cannot be
  fingerprinted);
* ``select`` — the default projection of iteration: ``"ids"`` (row ids),
  ``"points"`` (the stored points), or ``"distances"`` (distance to the
  query position; point queries only).

Specs are plain frozen dataclasses: build variants with the fluent
helpers (:meth:`Query.with_limit`, :meth:`Query.where`,
:meth:`Query.returning`) or with :func:`dataclasses.replace`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Callable, ClassVar, Optional, Tuple

from repro.geometry.point import Point
from repro.geometry.rectangle import Rect
from repro.geometry.region import QueryRegion

#: Valid values of the ``select`` projection option.
PROJECTIONS = ("ids", "points", "distances")


@dataclass(frozen=True)
class Query:
    """Options common to every query kind (the abstract spec base).

    Concrete specs add their geometry as positional fields; the options
    here are keyword-only, so ``AreaQuery(region, method="voronoi")``
    and ``KnnQuery(point, 5, limit=3)`` both read naturally.
    """

    #: query-kind tag, also used by the JSON wire format
    kind: ClassVar[str] = ""
    #: execution methods this kind accepts (``"auto"`` plus real ones)
    methods: ClassVar[Tuple[str, ...]] = ("auto",)
    #: does ``select="distances"`` make sense for this kind?
    has_distances: ClassVar[bool] = False

    #: execution method; ``"auto"`` lets the planner decide per query
    method: str = field(default="auto", kw_only=True)
    #: maximum number of rows returned (``None`` = unbounded)
    limit: Optional[int] = field(default=None, kw_only=True)
    #: extra filter applied to candidate points (disables caching)
    predicate: Optional[Callable[[Point], bool]] = field(
        default=None, kw_only=True
    )
    #: default projection of iteration: ``"ids"``/``"points"``/``"distances"``
    select: str = field(default="ids", kw_only=True)

    def __post_init__(self) -> None:
        """Coerce geometry fields, then validate the common options."""
        self._coerce()
        cls = type(self)
        if cls is Query:
            raise TypeError(
                "Query is abstract; build an AreaQuery, WindowQuery, "
                "KnnQuery, or NearestQuery"
            )
        if self.method not in cls.methods:
            raise ValueError(
                f"unknown method {self.method!r} for {cls.kind} queries; "
                f"choose from {cls.methods}"
            )
        if self.limit is not None and (
            not isinstance(self.limit, int) or self.limit < 0
        ):
            raise ValueError(
                f"limit must be None or a non-negative int, got {self.limit!r}"
            )
        if self.select not in PROJECTIONS:
            raise ValueError(
                f"unknown projection {self.select!r}; choose from {PROJECTIONS}"
            )
        if self.select == "distances" and not cls.has_distances:
            raise ValueError(
                f"{cls.kind} queries have no query position, so "
                "select='distances' is undefined"
            )

    def _coerce(self) -> None:
        """Hook for subclasses to normalise geometry inputs in-place."""

    # -- fluent builders ---------------------------------------------------

    def with_method(self, method: str) -> "Query":
        """A copy of this spec executed with ``method``."""
        return replace(self, method=method)

    def with_limit(self, limit: Optional[int]) -> "Query":
        """A copy of this spec returning at most ``limit`` rows."""
        return replace(self, limit=limit)

    def where(
        self, predicate: Optional[Callable[[Point], bool]]
    ) -> "Query":
        """A copy of this spec filtered by ``predicate`` on the points.

        The predicate runs after the exact geometric test, so it only
        ever sees points that already satisfy the query geometry.  Specs
        carrying a predicate are executed normally but are never cached
        (see :meth:`cache_key`).
        """
        return replace(self, predicate=predicate)

    def returning(self, select: str) -> "Query":
        """A copy of this spec projecting iteration to ``select``."""
        return replace(self, select=select)

    # -- identity ----------------------------------------------------------

    def cache_key(self) -> Optional["Query"]:
        """The spec itself, normalised for use as a result-cache key.

        Both paper methods return identical ids for the same geometry
        (the paper's central theorem), and the projection never changes
        the underlying rows, so ``method`` and ``select`` are normalised
        out of the key: a voronoi-executed result may serve a later
        traditional request for the same geometry.  Returns ``None``
        (*uncacheable*) when the spec carries a ``predicate`` — a
        closure's behaviour cannot be fingerprinted — or when its
        geometry is not hashable (custom :class:`QueryRegion`
        implementations without value hashing).
        """
        if self.predicate is not None:
            return None
        key = replace(self, method="auto", select="ids")
        try:
            hash(key)
        except TypeError:
            return None
        return key

    def anchor(self) -> Rect:
        """A representative rectangle for spatial (Hilbert) ordering.

        The batch engine tours specs in Hilbert order of these anchors so
        that consecutive queries are spatially close (seed-walk reuse,
        shared window frontiers).  Region kinds anchor at their MBR,
        point kinds at the degenerate rectangle of their query position.
        """
        raise NotImplementedError  # pragma: no cover - overridden per kind

    def describe(self) -> str:
        """A one-line human-readable summary (CLI and explain output)."""
        options = []
        if self.method != "auto":
            options.append(f"method={self.method}")
        if self.limit is not None:
            options.append(f"limit={self.limit}")
        if self.predicate is not None:
            options.append("predicate=<callable>")
        if self.select != "ids":
            options.append(f"select={self.select}")
        suffix = f" [{', '.join(options)}]" if options else ""
        return f"{self.kind}({self._describe_geometry()}){suffix}"

    def _describe_geometry(self) -> str:
        """Subclass hook: the geometry part of :meth:`describe`."""
        raise NotImplementedError  # pragma: no cover - overridden per kind


def _as_point(value) -> Point:
    """Coerce a ``Point`` or ``(x, y)`` pair into a :class:`Point`."""
    if isinstance(value, Point):
        return value
    x, y = value
    return Point(float(x), float(y))


@dataclass(frozen=True)
class AreaQuery(Query):
    """All points inside a closed region — the paper's area query.

    ``region`` is any :class:`~repro.geometry.region.QueryRegion`
    (:class:`~repro.geometry.polygon.Polygon` or
    :class:`~repro.geometry.circle.Circle`).  ``method`` selects the
    filter–refine baseline (``"traditional"``), the paper's Voronoi
    expansion (``"voronoi"``), or the planner's per-query choice
    (``"auto"``, the default).  Results are row ids in ascending order.
    """

    kind: ClassVar[str] = "area"
    methods: ClassVar[Tuple[str, ...]] = ("auto", "traditional", "voronoi")

    #: the query region (closed; must have positive area at execution)
    region: QueryRegion = None  # type: ignore[assignment]

    def _coerce(self) -> None:
        if self.region is None:
            raise ValueError("AreaQuery requires a region")

    def anchor(self) -> Rect:
        """The region's MBR."""
        return self.region.mbr

    def _describe_geometry(self) -> str:
        return repr(self.region)


@dataclass(frozen=True)
class WindowQuery(Query):
    """All points inside a closed axis-aligned rectangle.

    ``rect`` accepts a :class:`~repro.geometry.rectangle.Rect` or a
    ``(min_x, min_y, max_x, max_y)`` sequence.  ``method="index"`` runs
    the spatial index's native window query; ``method="voronoi"`` runs
    the paper's expansion over the rectangle-as-polygon (identical ids,
    different access pattern); ``"auto"`` asks the planner.  Results are
    row ids in ascending order.  Degenerate (zero-area) rectangles are
    legal and always route to the index.
    """

    kind: ClassVar[str] = "window"
    methods: ClassVar[Tuple[str, ...]] = ("auto", "index", "voronoi")

    #: the closed query rectangle
    rect: Rect = None  # type: ignore[assignment]

    def _coerce(self) -> None:
        if self.rect is None:
            raise ValueError("WindowQuery requires a rect")
        if not isinstance(self.rect, Rect):
            object.__setattr__(self, "rect", Rect.from_bounds(self.rect))

    def anchor(self) -> Rect:
        """The window rectangle itself."""
        return self.rect

    def _describe_geometry(self) -> str:
        r = self.rect
        return (
            f"[{r.min_x:.6g}, {r.min_y:.6g}, {r.max_x:.6g}, {r.max_y:.6g}]"
        )


@dataclass(frozen=True)
class KnnQuery(Query):
    """The ``k`` points nearest to a position, nearest first.

    ``point`` accepts a :class:`~repro.geometry.point.Point` or an
    ``(x, y)`` pair.  ``method="index"`` runs the index's best-first
    search; ``method="voronoi"`` runs the incremental expansion over the
    Voronoi neighbour graph (see :mod:`repro.core.knn_query`); both
    return the same ids (ties broken by row id).  ``k=0`` is legal and
    returns an empty result.
    """

    kind: ClassVar[str] = "knn"
    methods: ClassVar[Tuple[str, ...]] = ("auto", "index", "voronoi")
    has_distances: ClassVar[bool] = True

    #: the query position
    point: Point = None  # type: ignore[assignment]
    #: how many neighbours to return
    k: int = 1

    def _coerce(self) -> None:
        if self.point is None:
            raise ValueError("KnnQuery requires a point")
        object.__setattr__(self, "point", _as_point(self.point))
        if not isinstance(self.k, int) or self.k < 0:
            raise ValueError(f"k must be a non-negative int, got {self.k!r}")

    def anchor(self) -> Rect:
        """The degenerate rectangle at the query position."""
        return Rect.from_point(self.point)

    def _describe_geometry(self) -> str:
        return f"({self.point.x:.6g}, {self.point.y:.6g}), k={self.k}"


@dataclass(frozen=True)
class NearestQuery(Query):
    """The single nearest point to a position (1-NN).

    Always executed with the index's best-first search — the Voronoi
    method's own seed lookup *is* an index 1-NN search, so no alternative
    access path can beat it.  Returns zero or one row id.
    """

    kind: ClassVar[str] = "nearest"
    methods: ClassVar[Tuple[str, ...]] = ("auto", "index")
    has_distances: ClassVar[bool] = True

    #: the query position
    point: Point = None  # type: ignore[assignment]

    def _coerce(self) -> None:
        if self.point is None:
            raise ValueError("NearestQuery requires a point")
        object.__setattr__(self, "point", _as_point(self.point))

    def anchor(self) -> Rect:
        """The degenerate rectangle at the query position."""
        return Rect.from_point(self.point)

    def _describe_geometry(self) -> str:
        return f"({self.point.x:.6g}, {self.point.y:.6g})"


#: Every concrete spec class, keyed by its ``kind`` tag (wire format,
#: CLI, and planner dispatch all use this).
QUERY_KINDS = {
    cls.kind: cls for cls in (AreaQuery, WindowQuery, KnnQuery, NearestQuery)
}


def spec_fields(spec: Query) -> dict:
    """Field name/value mapping of ``spec`` (excluding class-level tags).

    Thin wrapper over :func:`dataclasses.fields` used by the serialiser;
    exposed for tooling that wants to introspect specs generically.
    """
    return {f.name: getattr(spec, f.name) for f in fields(spec)}
