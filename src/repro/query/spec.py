"""Declarative, immutable query specifications.

A *query spec* is a small frozen value object describing **what** to ask
the database, separated from **how** it is executed: the execution
method is just another field (``method="auto"`` delegates the choice to
the cost-based planner in :mod:`repro.engine.planner`).  The same spec
value drives every execution path — :meth:`SpatialDatabase.query
<repro.core.database.SpatialDatabase.query>`, the heterogeneous batch
engine, the result cache (specs are hashable and serve directly as cache
keys), the CLI (``python -m repro query --spec-file``), and the
experiment harness — so behaviour cannot drift between paths.

The four leaf query kinds of the library:

===================  ====================================================
:class:`AreaQuery`   all points inside a closed region (the paper's query)
:class:`WindowQuery` all points inside an axis-aligned rectangle
:class:`KnnQuery`    the ``k`` points nearest a position, nearest first
:class:`NearestQuery` the single nearest point to a position
===================  ====================================================

plus the **composite algebra** over region kinds — specs whose parts are
other specs, combined with set semantics on the result rows:

=========================  ==============================================
:class:`UnionQuery`        rows matching *any* part
:class:`IntersectionQuery` rows matching *every* part
:class:`DifferenceQuery`   rows of the first part matching no other part
=========================  ==============================================

Composites nest arbitrarily; their leaves must be region kinds
(:class:`AreaQuery` / :class:`WindowQuery`), whose sorted id lists merge
lazily (:mod:`repro.query.merge`).  A :class:`KnnQuery` built with
``k=None`` is the *streaming* form: the result is the full
distance-ranked stream, consumed incrementally (``result.first(n)``,
``itertools.takewhile``) without ever choosing ``k`` up front.

Composable options shared by every kind:

* ``limit`` — cap the number of returned rows (kNN order for point
  queries, ascending row-id order for region queries);
* ``predicate`` — an arbitrary Python filter on the candidate
  :class:`~repro.geometry.point.Point` (specs with a predicate are
  executed but never cached, since a closure's behaviour cannot be
  fingerprinted);
* ``select`` — the default projection of iteration: ``"ids"`` (row ids),
  ``"points"`` (the stored points), or ``"distances"`` (distance to the
  query position; point queries only).

Specs are plain frozen dataclasses: build variants with the fluent
helpers (:meth:`Query.with_limit`, :meth:`Query.where`,
:meth:`Query.returning`) or with :func:`dataclasses.replace`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Callable, ClassVar, Iterator, Optional, Tuple

from repro.geometry.point import Point
from repro.geometry.rectangle import Rect, union_all
from repro.geometry.region import QueryRegion

#: Valid values of the ``select`` projection option.
PROJECTIONS = ("ids", "points", "distances")


@dataclass(frozen=True)
class Query:
    """Options common to every query kind (the abstract spec base).

    Concrete specs add their geometry as positional fields; the options
    here are keyword-only, so ``AreaQuery(region, method="voronoi")``
    and ``KnnQuery(point, 5, limit=3)`` both read naturally.
    """

    #: query-kind tag, also used by the JSON wire format
    kind: ClassVar[str] = ""
    #: execution methods this kind accepts (``"auto"`` plus real ones)
    methods: ClassVar[Tuple[str, ...]] = ("auto",)
    #: does ``select="distances"`` make sense for this kind?
    has_distances: ClassVar[bool] = False

    #: execution method; ``"auto"`` lets the planner decide per query
    method: str = field(default="auto", kw_only=True)
    #: maximum number of rows returned (``None`` = unbounded)
    limit: Optional[int] = field(default=None, kw_only=True)
    #: extra filter applied to candidate points (disables caching)
    predicate: Optional[Callable[[Point], bool]] = field(
        default=None, kw_only=True
    )
    #: default projection of iteration: ``"ids"``/``"points"``/``"distances"``
    select: str = field(default="ids", kw_only=True)

    def __post_init__(self) -> None:
        """Coerce geometry fields, then validate the common options."""
        self._coerce()
        cls = type(self)
        if cls is Query:
            raise TypeError(
                "Query is abstract; build an AreaQuery, WindowQuery, "
                "KnnQuery, or NearestQuery"
            )
        if self.method not in cls.methods:
            raise ValueError(
                f"unknown method {self.method!r} for {cls.kind} queries; "
                f"choose from {cls.methods}"
            )
        if self.limit is not None and (
            not isinstance(self.limit, int) or self.limit < 0
        ):
            raise ValueError(
                f"limit must be None or a non-negative int, got {self.limit!r}"
            )
        if self.select not in PROJECTIONS:
            raise ValueError(
                f"unknown projection {self.select!r}; choose from {PROJECTIONS}"
            )
        if self.select == "distances" and not cls.has_distances:
            raise ValueError(
                f"{cls.kind} queries have no query position, so "
                "select='distances' is undefined"
            )

    def _coerce(self) -> None:
        """Hook for subclasses to normalise geometry inputs in-place."""

    # -- fluent builders ---------------------------------------------------

    def with_method(self, method: str) -> "Query":
        """A copy of this spec executed with ``method``."""
        return replace(self, method=method)

    def with_limit(self, limit: Optional[int]) -> "Query":
        """A copy of this spec returning at most ``limit`` rows."""
        return replace(self, limit=limit)

    def where(
        self, predicate: Optional[Callable[[Point], bool]]
    ) -> "Query":
        """A copy of this spec filtered by ``predicate`` on the points.

        The predicate runs after the exact geometric test, so it only
        ever sees points that already satisfy the query geometry.  Specs
        carrying a predicate are executed normally but are never cached
        (see :meth:`cache_key`).
        """
        return replace(self, predicate=predicate)

    def returning(self, select: str) -> "Query":
        """A copy of this spec projecting iteration to ``select``."""
        return replace(self, select=select)

    # -- identity ----------------------------------------------------------

    def cache_key(self) -> Optional["Query"]:
        """The spec itself, normalised for use as a result-cache key.

        Both paper methods return identical ids for the same geometry
        (the paper's central theorem), and the projection never changes
        the underlying rows, so ``method`` and ``select`` are normalised
        out of the key: a voronoi-executed result may serve a later
        traditional request for the same geometry.  Returns ``None``
        (*uncacheable*) when the spec carries a ``predicate`` — a
        closure's behaviour cannot be fingerprinted — or when its
        geometry is not hashable (custom :class:`QueryRegion`
        implementations without value hashing).

        Specs are immutable, so the key is computed once and memoised on
        the instance — the batch engine probes it on every submission
        (spec- and leaf-level dedup), and rebuilding a composite's
        normalised tree each time would dominate small batches.
        """
        try:
            return self.__dict__["_cache_key_memo"]
        except KeyError:
            pass
        key = self._compute_cache_key()
        object.__setattr__(self, "_cache_key_memo", key)
        return key

    def _compute_cache_key(self) -> Optional["Query"]:
        """Uncached :meth:`cache_key` computation (subclass hook)."""
        if self.predicate is not None:
            return None
        key = replace(self, method="auto", select="ids")
        try:
            hash(key)
        except TypeError:
            return None
        return key

    def anchor(self) -> Rect:
        """A representative rectangle for spatial (Hilbert) ordering.

        The batch engine tours specs in Hilbert order of these anchors so
        that consecutive queries are spatially close (seed-walk reuse,
        shared window frontiers).  Region kinds anchor at their MBR,
        point kinds at the degenerate rectangle of their query position.
        """
        raise NotImplementedError  # pragma: no cover - overridden per kind

    def streams(self) -> bool:
        """Can this spec's result be consumed lazily, row by row?

        ``True`` for the specs whose full materialisation is the thing
        worth avoiding: composites (the set-merge is a lazy iterator over
        leaf results) and unbounded kNN (``KnnQuery(k=None)`` — the
        distance ranking is produced incrementally).  The lazy result
        handle streams iteration/:meth:`~repro.query.result.QueryResult.first`
        for such specs instead of executing an eager record.
        """
        return False

    def describe(self) -> str:
        """A one-line human-readable summary (CLI and explain output)."""
        options = []
        if self.method != "auto":
            options.append(f"method={self.method}")
        if self.limit is not None:
            options.append(f"limit={self.limit}")
        if self.predicate is not None:
            options.append("predicate=<callable>")
        if self.select != "ids":
            options.append(f"select={self.select}")
        suffix = f" [{', '.join(options)}]" if options else ""
        return f"{self.kind}({self._describe_geometry()}){suffix}"

    def _describe_geometry(self) -> str:
        """Subclass hook: the geometry part of :meth:`describe`."""
        raise NotImplementedError  # pragma: no cover - overridden per kind


def _as_point(value) -> Point:
    """Coerce a ``Point`` or ``(x, y)`` pair into a :class:`Point`."""
    if isinstance(value, Point):
        return value
    x, y = value
    return Point(float(x), float(y))


@dataclass(frozen=True)
class AreaQuery(Query):
    """All points inside a closed region — the paper's area query.

    ``region`` is any :class:`~repro.geometry.region.QueryRegion`
    (:class:`~repro.geometry.polygon.Polygon` or
    :class:`~repro.geometry.circle.Circle`).  ``method`` selects the
    filter–refine baseline (``"traditional"``), the paper's Voronoi
    expansion (``"voronoi"``), or the planner's per-query choice
    (``"auto"``, the default).  Results are row ids in ascending order.
    """

    kind: ClassVar[str] = "area"
    methods: ClassVar[Tuple[str, ...]] = ("auto", "traditional", "voronoi")

    #: the query region (closed; must have positive area at execution)
    region: QueryRegion = None  # type: ignore[assignment]

    def _coerce(self) -> None:
        if self.region is None:
            raise ValueError("AreaQuery requires a region")

    def anchor(self) -> Rect:
        """The region's MBR."""
        return self.region.mbr

    def _describe_geometry(self) -> str:
        return repr(self.region)


@dataclass(frozen=True)
class WindowQuery(Query):
    """All points inside a closed axis-aligned rectangle.

    ``rect`` accepts a :class:`~repro.geometry.rectangle.Rect` or a
    ``(min_x, min_y, max_x, max_y)`` sequence.  ``method="index"`` runs
    the spatial index's native window query; ``method="voronoi"`` runs
    the paper's expansion over the rectangle-as-polygon (identical ids,
    different access pattern); ``"auto"`` asks the planner.  Results are
    row ids in ascending order.  Degenerate (zero-area) rectangles are
    legal and always route to the index.
    """

    kind: ClassVar[str] = "window"
    methods: ClassVar[Tuple[str, ...]] = ("auto", "index", "voronoi")

    #: the closed query rectangle
    rect: Rect = None  # type: ignore[assignment]

    def _coerce(self) -> None:
        if self.rect is None:
            raise ValueError("WindowQuery requires a rect")
        if not isinstance(self.rect, Rect):
            object.__setattr__(self, "rect", Rect.from_bounds(self.rect))

    def anchor(self) -> Rect:
        """The window rectangle itself."""
        return self.rect

    def _describe_geometry(self) -> str:
        r = self.rect
        return (
            f"[{r.min_x:.6g}, {r.min_y:.6g}, {r.max_x:.6g}, {r.max_y:.6g}]"
        )


@dataclass(frozen=True)
class KnnQuery(Query):
    """The ``k`` points nearest to a position, nearest first.

    ``point`` accepts a :class:`~repro.geometry.point.Point` or an
    ``(x, y)`` pair.  ``method="index"`` runs the index's best-first
    search; ``method="voronoi"`` runs the incremental expansion over the
    Voronoi neighbour graph (see :mod:`repro.core.knn_query`); both
    return the same ids (ties broken by row id).  ``k=0`` is legal and
    returns an empty result.

    ``k=None`` is the **unbounded, streaming** form: the result is the
    whole database ranked by distance.  Consume it lazily —
    ``result.first(n)``, ``iter(result)`` with ``takewhile`` — and only
    as many neighbours are ever produced as you read (the incremental
    Voronoi expansion of :func:`repro.core.knn_query.incremental_nearest`
    underneath); eager materialisation (``.ids()``) is still legal but
    ranks every row.
    """

    kind: ClassVar[str] = "knn"
    methods: ClassVar[Tuple[str, ...]] = ("auto", "index", "voronoi")
    has_distances: ClassVar[bool] = True

    #: the query position
    point: Point = None  # type: ignore[assignment]
    #: how many neighbours to return (``None`` = unbounded / streaming)
    k: Optional[int] = 1

    def _coerce(self) -> None:
        if self.point is None:
            raise ValueError("KnnQuery requires a point")
        object.__setattr__(self, "point", _as_point(self.point))
        if self.k is not None and (
            not isinstance(self.k, int) or self.k < 0
        ):
            raise ValueError(
                f"k must be None (unbounded) or a non-negative int, "
                f"got {self.k!r}"
            )

    def anchor(self) -> Rect:
        """The degenerate rectangle at the query position."""
        return Rect.from_point(self.point)

    def streams(self) -> bool:
        """Unbounded kNN (``k=None``) streams; bounded kNN does not."""
        return self.k is None

    def _describe_geometry(self) -> str:
        k_text = "unbounded" if self.k is None else str(self.k)
        return f"({self.point.x:.6g}, {self.point.y:.6g}), k={k_text}"


@dataclass(frozen=True)
class NearestQuery(Query):
    """The single nearest point to a position (1-NN).

    Always executed with the index's best-first search — the Voronoi
    method's own seed lookup *is* an index 1-NN search, so no alternative
    access path can beat it.  Returns zero or one row id.
    """

    kind: ClassVar[str] = "nearest"
    methods: ClassVar[Tuple[str, ...]] = ("auto", "index")
    has_distances: ClassVar[bool] = True

    #: the query position
    point: Point = None  # type: ignore[assignment]

    def _coerce(self) -> None:
        if self.point is None:
            raise ValueError("NearestQuery requires a point")
        object.__setattr__(self, "point", _as_point(self.point))

    def anchor(self) -> Rect:
        """The degenerate rectangle at the query position."""
        return Rect.from_point(self.point)

    def _describe_geometry(self) -> str:
        return f"({self.point.x:.6g}, {self.point.y:.6g})"


@dataclass(frozen=True)
class CompositeQuery(Query):
    """Set-algebra combination of region queries (the abstract base).

    ``parts`` are other specs — :class:`AreaQuery` / :class:`WindowQuery`
    leaves or nested composites (point kinds have no set semantics over
    row ids and are rejected).  The composite's own ``predicate`` and
    ``limit`` apply to the *merged* rows, after each part has applied its
    own options; ``method`` is always ``"auto"`` — execution is always
    decomposition into leaf plans, each routed by the planner, with the
    batch engine treating the leaves of one composite as a heterogeneous
    batch (shared window frontiers, Voronoi seed-walk reuse across
    siblings).  Results are row ids in ascending order, like every
    region kind.
    """

    methods: ClassVar[Tuple[str, ...]] = ("auto",)
    #: the combined sub-queries (leaves must be region kinds)
    parts: Tuple[Query, ...] = ()

    def _coerce(self) -> None:
        if type(self) is CompositeQuery:
            raise TypeError(
                "CompositeQuery is abstract; build a UnionQuery, "
                "IntersectionQuery, or DifferenceQuery"
            )
        object.__setattr__(self, "parts", tuple(self.parts))
        if len(self.parts) < 2:
            raise ValueError(
                f"{self.kind} queries need at least two parts, "
                f"got {len(self.parts)}"
            )
        for part in self.parts:
            if not isinstance(part, (AreaQuery, WindowQuery, CompositeQuery)):
                raise TypeError(
                    "composite parts must be region queries (AreaQuery / "
                    f"WindowQuery) or nested composites, got {part!r}"
                )

    def streams(self) -> bool:
        """Composites always stream: the set-merge is a lazy iterator."""
        return True

    def _compute_cache_key(self) -> Optional["Query"]:
        """The composite normalised recursively for result caching.

        Every part is replaced by its own :meth:`Query.cache_key` (method
        and projection normalised away at every level); any uncacheable
        part — or a predicate on the composite itself — makes the whole
        composite uncacheable.  Memoised by :meth:`Query.cache_key` like
        every spec.
        """
        if self.predicate is not None:
            return None
        normalized = []
        for part in self.parts:
            part_key = part.cache_key()
            if part_key is None:
                return None
            normalized.append(part_key)
        key = replace(
            self, method="auto", select="ids", parts=tuple(normalized)
        )
        try:
            hash(key)
        except TypeError:  # pragma: no cover - parts hashed above
            return None
        return key

    def iter_leaves(self) -> Iterator[Query]:
        """Yield the non-composite leaf specs, left to right, recursively."""
        for part in self.parts:
            if isinstance(part, CompositeQuery):
                yield from part.iter_leaves()
            else:
                yield part

    def anchor(self) -> Rect:
        """The union of the parts' anchors (results live inside it)."""
        return union_all(part.anchor() for part in self.parts)

    def _describe_geometry(self) -> str:
        return ", ".join(part.describe() for part in self.parts)


@dataclass(frozen=True)
class UnionQuery(CompositeQuery):
    """Rows matching *any* part — the set union of the part results."""

    kind: ClassVar[str] = "union"


@dataclass(frozen=True)
class IntersectionQuery(CompositeQuery):
    """Rows matching *every* part — the set intersection of the results."""

    kind: ClassVar[str] = "intersection"


@dataclass(frozen=True)
class DifferenceQuery(CompositeQuery):
    """Rows of the first part matching no later part (set difference)."""

    kind: ClassVar[str] = "difference"

    def anchor(self) -> Rect:
        """The first part's anchor — the result is a subset of it."""
        return self.parts[0].anchor()


#: Every concrete spec class, keyed by its ``kind`` tag (wire format,
#: CLI, and planner dispatch all use this) — the four leaf kinds plus
#: the three composite kinds.
QUERY_KINDS = {
    cls.kind: cls
    for cls in (
        AreaQuery,
        WindowQuery,
        KnnQuery,
        NearestQuery,
        UnionQuery,
        IntersectionQuery,
        DifferenceQuery,
    )
}


def spec_fields(spec: Query) -> dict:
    """Field name/value mapping of ``spec`` (excluding class-level tags).

    Thin wrapper over :func:`dataclasses.fields` used by the serialiser;
    exposed for tooling that wants to introspect specs generically.
    """
    return {f.name: getattr(spec, f.name) for f in fields(spec)}
