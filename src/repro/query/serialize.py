"""JSON round-trip (de)serialisation of query specs.

The wire format is a plain JSON object per spec, keyed by ``kind``::

    {"kind": "area", "method": "auto",
     "region": {"type": "polygon", "vertices": [[x, y], ...]}}
    {"kind": "area", "region": {"type": "circle",
                                "center": [x, y], "radius": r}}
    {"kind": "window", "rect": [min_x, min_y, max_x, max_y]}
    {"kind": "knn", "point": [x, y], "k": 8, "method": "voronoi"}
    {"kind": "nearest", "point": [x, y], "limit": 1}

Composites nest their parts recursively, and an unbounded streaming kNN
simply omits ``k`` (or sets it to ``null``)::

    {"kind": "union", "parts": [{"kind": "window", ...},
                                {"kind": "area", ...}]}
    {"kind": "difference", "parts": [...], "limit": 50}
    {"kind": "knn", "point": [x, y]}

Optional fields (``method``, ``limit``, ``select``) may be omitted and
default as in :mod:`repro.query.spec`.  Floats survive exactly: Python's
``json`` emits ``repr``-faithful doubles, so ``load_specs(dump_specs(s))
== s`` for any serialisable spec.  Specs carrying a ``predicate`` are
**not** serialisable (a closure has no wire form) and raise
:class:`ValueError`.

Used by the experiment harness to persist workloads and by the CLI's
``python -m repro query --spec-file``.
"""

from __future__ import annotations

import json
from typing import List, Sequence

from repro.geometry.circle import Circle
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.rectangle import Rect
from repro.query.spec import (
    AreaQuery,
    CompositeQuery,
    KnnQuery,
    NearestQuery,
    Query,
    QUERY_KINDS,
    WindowQuery,
)


def region_to_dict(region) -> dict:
    """The wire form of a query region (polygon or circle).

    Any other :class:`~repro.geometry.region.QueryRegion` implementation
    raises :class:`ValueError` — the protocol exposes no attribute set
    that captures arbitrary geometry exactly.
    """
    if isinstance(region, Polygon):
        return {
            "type": "polygon",
            "vertices": [[p.x, p.y] for p in region.vertices],
        }
    if isinstance(region, Circle):
        return {
            "type": "circle",
            "center": [region.center.x, region.center.y],
            "radius": region.radius,
        }
    raise ValueError(
        f"cannot serialise region of type {type(region).__name__}; "
        "only Polygon and Circle have a wire form"
    )


def region_from_dict(data: dict):
    """Rebuild a region from its :func:`region_to_dict` form."""
    kind = data.get("type")
    if kind == "polygon":
        return Polygon([Point(float(x), float(y)) for x, y in data["vertices"]])
    if kind == "circle":
        cx, cy = data["center"]
        return Circle(Point(float(cx), float(cy)), float(data["radius"]))
    raise ValueError(f"unknown region type {kind!r}")


def spec_to_dict(spec: Query) -> dict:
    """The JSON-ready dict form of ``spec`` (raises on predicates)."""
    if spec.predicate is not None:
        raise ValueError(
            "specs with a predicate are not serialisable (a Python "
            "callable has no wire form); strip it with spec.where(None)"
        )
    data: dict = {"kind": spec.kind}
    if isinstance(spec, AreaQuery):
        data["region"] = region_to_dict(spec.region)
    elif isinstance(spec, WindowQuery):
        data["rect"] = list(spec.rect.as_tuple())
    elif isinstance(spec, KnnQuery):
        data["point"] = [spec.point.x, spec.point.y]
        if spec.k is not None:  # unbounded kNN has no k on the wire
            data["k"] = spec.k
    elif isinstance(spec, NearestQuery):
        data["point"] = [spec.point.x, spec.point.y]
    elif isinstance(spec, CompositeQuery):
        data["parts"] = [spec_to_dict(part) for part in spec.parts]
    else:
        raise ValueError(f"not a serialisable query spec: {spec!r}")
    if spec.method != "auto":
        data["method"] = spec.method
    if spec.limit is not None:
        data["limit"] = spec.limit
    if spec.select != "ids":
        data["select"] = spec.select
    return data


def spec_from_dict(data: dict) -> Query:
    """Rebuild a spec from its :func:`spec_to_dict` form."""
    if not isinstance(data, dict):
        raise ValueError(f"spec must be a JSON object, got {type(data).__name__}")
    kind = data.get("kind")
    cls = QUERY_KINDS.get(kind)
    if cls is None:
        raise ValueError(
            f"unknown query kind {kind!r}; choose from "
            f"{tuple(QUERY_KINDS)}"
        )
    options = {
        name: data[name]
        for name in ("method", "limit", "select")
        if name in data
    }
    if cls is AreaQuery:
        return AreaQuery(region_from_dict(data["region"]), **options)
    if cls is WindowQuery:
        return WindowQuery(Rect.from_bounds(data["rect"]), **options)
    if cls is KnnQuery:
        x, y = data["point"]
        k = data.get("k")
        return KnnQuery(
            Point(float(x), float(y)),
            None if k is None else int(k),
            **options,
        )
    if issubclass(cls, CompositeQuery):
        parts = tuple(spec_from_dict(part) for part in data["parts"])
        return cls(parts, **options)
    x, y = data["point"]
    return NearestQuery(Point(float(x), float(y)), **options)


def dump_specs(specs: Sequence[Query], *, indent: int | None = 2) -> str:
    """Serialise many specs as one JSON array (the ``--spec-file`` format)."""
    return json.dumps([spec_to_dict(spec) for spec in specs], indent=indent)


def load_specs(text: str) -> List[Query]:
    """Parse a JSON array (or single object) of specs from ``text``."""
    data = json.loads(text)
    if isinstance(data, dict):
        data = [data]
    if not isinstance(data, list):
        raise ValueError(
            "spec file must hold a JSON array of spec objects "
            f"(or one object), got {type(data).__name__}"
        )
    return [spec_from_dict(item) for item in data]
