"""The lazy query-result handle.

:meth:`SpatialDatabase.query <repro.core.database.SpatialDatabase.query>`
returns a :class:`QueryResult` immediately, without touching the index:
execution is deferred until the result is first *consumed* (iterated,
materialised, or asked for its stats), then memoised.  This makes specs
cheap to build, pass around, and inspect — ``result.explain()`` shows
the planner's decision without ever running the query — while keeping
one execution per handle.

Projections: iteration follows the spec's ``select`` option (row ids by
default); :meth:`QueryResult.ids`, :meth:`QueryResult.points`, and
:meth:`QueryResult.distances` materialise each projection explicitly.

Streaming: for the specs that support it (composites, unbounded
``KnnQuery(k=None)`` — see :meth:`repro.query.spec.Query.streams`),
iteration and :meth:`QueryResult.first` consume a **lazy row stream**
(:func:`repro.query.executor.stream_spec`) instead of executing an eager
record: ``result.first(10)`` on an unbounded kNN examines only ~10
candidates, and ``itertools.takewhile`` over a composite stops the
set-merge as soon as the predicate does.  Streaming consumption does not
memoise; ``.ids()`` / ``.stats`` / ``len()`` still perform (and memoise)
one full eager execution.

Distinguish this class from :class:`repro.core.stats.QueryResult`, the
eager *record* (ids + stats) produced by one algorithm execution: the
lazy handle wraps exactly one such record once executed
(:attr:`QueryResult.record`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List, Optional, Sequence

from repro.core.stats import QueryResult as QueryRecord
from repro.geometry.point import Point
from repro.query.spec import Query

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.database import SpatialDatabase
    from repro.engine.batch import BatchStats
    from repro.engine.planner import PlanExplanation


class QueryResult:
    """Lazy handle for one spec's execution on one database.

    Parameters
    ----------
    database:
        The target database.
    spec:
        The immutable query spec this handle answers.
    record:
        Pre-computed execution record — the batch engine passes the
        records it produced so batch members are born executed.
    """

    __slots__ = ("_db", "_spec", "_record")

    def __init__(
        self,
        database: "SpatialDatabase",
        spec: Query,
        *,
        record: Optional[QueryRecord] = None,
    ) -> None:
        if not isinstance(spec, Query):
            raise TypeError(f"not a query spec: {spec!r}")
        self._db = database
        self._spec = spec
        self._record = record

    # -- identity ----------------------------------------------------------

    @property
    def spec(self) -> Query:
        """The spec this handle answers."""
        return self._spec

    @property
    def executed(self) -> bool:
        """Has the query run yet?  Consuming the result executes it once."""
        return self._record is not None

    @property
    def record(self) -> QueryRecord:
        """The eager execution record (ids + stats); executes on first use."""
        if self._record is None:
            from repro.query.executor import execute_spec

            self._record = execute_spec(self._db, self._spec)
        return self._record

    # -- materialisation ---------------------------------------------------

    def ids(self) -> List[int]:
        """The result row ids (a fresh list; executes if needed).

        Ascending for region kinds (area/window), nearest-first for point
        kinds (knn/nearest) — the same orders the legacy methods used.
        """
        return list(self.record.ids)

    def points(self) -> List[Point]:
        """The stored points of the result rows, in result order."""
        point = self._db.point
        return [point(i) for i in self.record.ids]

    def distances(self) -> List[float]:
        """Distance from the query position to each result row, in order.

        Only defined for point kinds (``KnnQuery`` / ``NearestQuery``);
        region kinds have no query position and raise :class:`ValueError`.
        """
        anchor = getattr(self._spec, "point", None)
        if anchor is None:
            raise ValueError(
                f"{self._spec.kind} queries have no query position; "
                "distances are undefined"
            )
        point = self._db.point
        return [anchor.distance_to(point(i)) for i in self.record.ids]

    @property
    def stats(self):
        """Per-query :class:`~repro.core.stats.QueryStats` (executes).

        Returned by reference and to be treated as **read-only**: the
        engine shares finalized records between duplicate batch
        submissions and the result cache, so mutating these counters
        in place would corrupt sibling handles and cached entries.
        Copy first (:meth:`~repro.core.stats.QueryStats.copy`) if you
        need a mutable block.
        """
        return self.record.stats

    # -- streaming consumption --------------------------------------------

    def stream(self) -> Iterator:
        """Lazily yield projected rows without memoising a record.

        For streaming-capable specs (``spec.streams()``) this is a true
        incremental stream — rows are produced on demand and abandoning
        the iterator abandons the remaining work.  For other specs (or
        once this handle has executed) it iterates the eager record.
        Each call produces a fresh stream.
        """
        if self._record is not None:
            ids: Iterator[int] = iter(self._record.ids)
        else:
            from repro.query.executor import stream_spec

            ids = stream_spec(self._db, self._spec)
        select = self._spec.select
        if select == "points":
            point = self._db.point
            return (point(i) for i in ids)
        if select == "distances":
            anchor = getattr(self._spec, "point", None)
            if anchor is None:
                raise ValueError(
                    f"{self._spec.kind} queries have no query position; "
                    "distances are undefined"
                )
            point = self._db.point
            return (anchor.distance_to(point(i)) for i in ids)
        return ids

    def chunks(self, size: int) -> Iterator[List]:
        """Yield the projected rows in successive lists of ``size``.

        The chunked form of :meth:`stream`, built for push/chunked
        delivery (the query server's ``chunk`` frames): for
        streaming-capable specs each chunk is produced on demand —
        consuming one chunk of an unbounded kNN examines only ~``size``
        candidates — and abandoning the iterator (``.close()``, garbage
        collection, ``break``) closes the underlying stream and
        abandons the remaining work.  The final chunk may be shorter
        than ``size``; exhaustion ends the iterator without an empty
        chunk.  Nothing is memoised for streaming specs; other specs
        execute once (memoised) and chunk the eager record.
        """
        if size < 1:
            raise ValueError(f"chunk size must be >= 1, got {size!r}")
        from itertools import islice

        def produce(stream: Iterator) -> Iterator[List]:
            # Explicitly close the source stream when the consumer
            # abandons this generator: islice chains do not propagate
            # close(), and the server's cancel path relies on the
            # underlying expansion being torn down deterministically.
            try:
                while True:
                    block = list(islice(stream, size))
                    if not block:
                        return
                    yield block
                    if len(block) < size:
                        return
            finally:
                close = getattr(stream, "close", None)
                if close is not None:
                    close()

        return produce(self.stream())

    def first(self, n: int) -> List:
        """The first ``n`` rows under the spec's projection.

        For streaming-capable specs this consumes only ``n`` rows of the
        lazy stream — an unbounded kNN examines ~``n`` candidates, a
        composite stops its set-merge early — and nothing is memoised.
        Other specs execute once (memoised) and return the prefix.
        """
        if n < 0:
            raise ValueError(f"n must be non-negative, got {n!r}")
        from itertools import islice

        return list(islice(iter(self), n))

    # -- consumption protocol ---------------------------------------------

    def __iter__(self) -> Iterator:
        """Stream the result under the spec's ``select`` projection.

        For streaming-capable specs not yet executed this is the lazy
        stream of :meth:`stream` (no record is materialised); otherwise
        it executes (and memoises) the record first.
        """
        if self._record is None and self._spec.streams():
            return self.stream()
        select = self._spec.select
        if select == "points":
            return iter(self.points())
        if select == "distances":
            return iter(self.distances())
        return iter(self.record.ids)

    def __len__(self) -> int:
        """Number of result rows (executes)."""
        return len(self.record.ids)

    def __contains__(self, row_id: int) -> bool:
        """Row-id membership (executes)."""
        return row_id in set(self.record.ids)

    def __repr__(self) -> str:
        state = (
            f"{len(self._record.ids)} rows, method={self._record.stats.method!r}"
            if self._record is not None
            else "pending"
        )
        return f"QueryResult({self._spec.describe()}: {state})"

    # -- planning ----------------------------------------------------------

    def explain(self, *, execute: bool = False) -> "PlanExplanation":
        """The planner's decision record for this spec.

        Predicted per-method costs are always included.  Measured costs
        appear next to them when available: if this handle has already
        executed, its own measured stats are attached for the method that
        ran; ``execute=True`` additionally runs *every* candidate method
        (``EXPLAIN ANALYZE``) regardless.
        """
        planner = self._db.engine.planner
        explanation = planner.explain_spec(self._spec, execute=execute)
        if self._record is not None and not execute:
            stats = self._record.stats
            if stats.method in explanation.estimates:
                explanation.actual[stats.method] = stats
                explanation.actual_costs[stats.method] = (
                    planner.model.cost_of(stats)
                )
        return explanation


class BatchQueryResults(Sequence[QueryResult]):
    """Submission-ordered lazy handles plus batch-level statistics.

    Returned by :meth:`SpatialDatabase.query_batch
    <repro.core.database.SpatialDatabase.query_batch>`.  Every member is
    a :class:`QueryResult` that has already executed (batch execution is
    eager by nature — that is where the cross-query sharing happens);
    ``stats`` carries the batch's
    :class:`~repro.engine.batch.BatchStats` accounting.
    """

    __slots__ = ("_results", "stats")

    def __init__(
        self, results: List[QueryResult], stats: "BatchStats"
    ) -> None:
        self._results = results
        #: batch-level sharing/caching statistics
        self.stats = stats

    def __len__(self) -> int:
        """Number of specs answered."""
        return len(self._results)

    def __getitem__(self, item):
        """The lazy handle(s) at ``item`` (submission order)."""
        return self._results[item]

    def __iter__(self) -> Iterator[QueryResult]:
        """Iterate the handles in submission order."""
        return iter(self._results)

    def __repr__(self) -> str:
        return f"BatchQueryResults({len(self._results)} queries)"
