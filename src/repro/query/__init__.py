"""The declarative query API: specs in, lazy results out.

One logical query, many execution strategies — that is the paper's frame
(traditional filter–refine vs Voronoi expansion are *interchangeable*
answers to the same question), and this package makes it the shape of
the public API:

* :mod:`repro.query.spec` — immutable, hashable spec objects
  (:class:`AreaQuery`, :class:`WindowQuery`, :class:`KnnQuery`,
  :class:`NearestQuery`) with composable options (``limit``,
  ``predicate``, ``select`` projection), plus the composite algebra
  (:class:`UnionQuery`, :class:`IntersectionQuery`,
  :class:`DifferenceQuery`) and the unbounded streaming
  ``KnnQuery(k=None)``;
* :mod:`repro.query.merge` — lazy set-semantics merging of sorted id
  streams (the composite execution substrate);
* :mod:`repro.query.result` — the lazy :class:`QueryResult` handle
  (deferred execution, streaming iteration, ``.ids()`` / ``.points()`` /
  ``.distances()`` materialisation, per-query ``stats``, planner
  ``.explain()``) and :class:`BatchQueryResults`;
* :mod:`repro.query.executor` — the one execution path every surface
  shares (:func:`execute_spec`);
* :mod:`repro.query.serialize` — exact JSON round-trip of specs for the
  experiment harness and ``python -m repro query --spec-file``.

Entry points::

    from repro import SpatialDatabase, AreaQuery, KnnQuery

    db = SpatialDatabase.from_points(points)
    rows = db.query(AreaQuery(polygon)).ids()          # planner-routed
    near = db.query(KnnQuery((0.5, 0.5), 8)).points()  # k nearest
    batch = db.query_batch(specs)                      # heterogeneous
"""

from repro.query.executor import (
    execute_spec,
    merge_sorted_ids,
    resolve_method,
    stream_spec,
)
from repro.query.merge import (
    difference_sorted,
    intersection_sorted,
    union_sorted,
)
from repro.query.result import BatchQueryResults, QueryResult
from repro.query.serialize import (
    dump_specs,
    load_specs,
    region_from_dict,
    region_to_dict,
    spec_from_dict,
    spec_to_dict,
)
from repro.query.spec import (
    PROJECTIONS,
    QUERY_KINDS,
    AreaQuery,
    CompositeQuery,
    DifferenceQuery,
    IntersectionQuery,
    KnnQuery,
    NearestQuery,
    Query,
    UnionQuery,
    WindowQuery,
    spec_fields,
)

__all__ = [
    "Query",
    "AreaQuery",
    "WindowQuery",
    "KnnQuery",
    "NearestQuery",
    "CompositeQuery",
    "UnionQuery",
    "IntersectionQuery",
    "DifferenceQuery",
    "QueryResult",
    "BatchQueryResults",
    "QUERY_KINDS",
    "PROJECTIONS",
    "execute_spec",
    "stream_spec",
    "merge_sorted_ids",
    "resolve_method",
    "spec_fields",
    "spec_to_dict",
    "spec_from_dict",
    "region_to_dict",
    "region_from_dict",
    "dump_specs",
    "load_specs",
    "union_sorted",
    "intersection_sorted",
    "difference_sorted",
]
