"""Spec execution: one code path shared by every query surface.

:func:`execute_spec` turns a declarative :class:`~repro.query.spec.Query`
into an eager :class:`~repro.core.stats.QueryResult` record by
dispatching on the spec's kind and (planner-resolved) method.  The lazy
:class:`~repro.query.result.QueryResult`, the batch engine, the
deprecation shims on :class:`~repro.core.database.SpatialDatabase`, and
the planner's ``EXPLAIN ANALYZE`` all call into this module, so results
are identical no matter which surface issued the query.

Composite specs (:class:`~repro.query.spec.UnionQuery` /
``Intersection`` / ``Difference``) execute by **decomposition**: the
batch engine answers all leaves of one composite as a heterogeneous
batch (shared window frontiers and Voronoi seed-walk reuse apply across
siblings) and the sorted leaf id lists merge with lazy set semantics
(:mod:`repro.query.merge`).  :func:`stream_spec` is the lazy sibling of
:func:`execute_spec` for the specs that support it (composites,
``KnnQuery(k=None)``): it yields result row ids on demand without ever
materialising the full result.

Common options are applied uniformly by :func:`finalize_record`:
``predicate`` filters the already-refined points (it never sees a point
outside the query geometry), ``limit`` truncates in the result order of
the kind (ascending row id for region kinds, nearest-first for point
kinds).
"""

from __future__ import annotations

import time
from itertools import islice
from typing import TYPE_CHECKING, Iterator, List, Optional

from repro.core.exceptions import EmptyDatabaseError, InvalidQueryAreaError
from repro.core.knn_query import incremental_nearest, voronoi_knn_query
from repro.core.stats import QueryResult, QueryStats
from repro.core.traditional_query import traditional_area_query
from repro.core.voronoi_query import voronoi_area_query
from repro.geometry.polygon import Polygon
from repro.query.merge import (
    difference_sorted,
    intersection_sorted,
    union_sorted,
)
from repro.query.spec import (
    AreaQuery,
    CompositeQuery,
    DifferenceQuery,
    IntersectionQuery,
    KnnQuery,
    NearestQuery,
    Query,
    UnionQuery,
    WindowQuery,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.database import SpatialDatabase
    from repro.core.store import PointStore


def _columnar_store(
    database: "SpatialDatabase",
) -> Optional["PointStore"]:
    """The database's point store when the vectorized paths are on.

    Every execution helper threads this into the core algorithms: a
    store means columnar hot paths (bulk index probes, array refinement
    kernels, batched distances); ``None`` means the scalar per-point
    fallbacks — the equivalence oracle
    (``SpatialDatabase(vectorized=False)``).
    """
    return database.store if database.vectorized else None


def _tombstones(database: "SpatialDatabase"):
    """The store's tombstone map, or ``None`` when nothing was deleted.

    Threaded into the Voronoi algorithms so deleted rows act as transit
    vertices (expanded through, filtered from results) — the spatial
    index forgets them physically, but the Delaunay graph cannot remap
    positional ids and keeps them forever.
    """
    return database.store.deleted_rows or None


def resolve_method(database: "SpatialDatabase", spec: Query) -> str:
    """The concrete execution method for ``spec`` on ``database``.

    An explicit ``spec.method`` is returned as-is (it was validated at
    spec construction); ``"auto"`` asks the database's cost-based planner
    (:meth:`repro.engine.planner.QueryPlanner.plan`).
    """
    if spec.method != "auto":
        return spec.method
    return database.engine.planner.plan(spec)


def execute_spec(
    database: "SpatialDatabase",
    spec: Query,
    *,
    method: Optional[str] = None,
    seed_id: Optional[int] = None,
) -> QueryResult:
    """Execute ``spec`` and return the eager result record.

    Parameters
    ----------
    database:
        The target :class:`~repro.core.database.SpatialDatabase`.
    method:
        Override for the execution method (the planner's batch path and
        ``explain(execute=True)`` pass it explicitly); defaults to
        :func:`resolve_method`.
    seed_id:
        Optional known Voronoi seed (row id of the nearest point to the
        query geometry), used by the batch engine to skip the index NN
        descent after a successful neighbour-graph walk.  Only meaningful
        for voronoi-method executions.

    Returns
    -------
    QueryResult
        Ids plus :class:`~repro.core.stats.QueryStats` whose ``method``
        names the concrete method that ran.
    """
    if not isinstance(spec, Query):
        raise TypeError(f"not a query spec: {spec!r}")
    if method is None:
        method = resolve_method(database, spec)
    # Region kinds produce the raw geometric result and get the common
    # options applied here; point kinds weave predicate and limit into
    # their own expansion (a kNN must keep expanding until k rows *pass*
    # the filter), so finalize_record must NOT run again on top — the
    # predicate contract is one invocation per examined candidate.
    if isinstance(spec, AreaQuery):
        return finalize_record(
            database, spec, _execute_area(database, spec, method, seed_id)
        )
    if isinstance(spec, WindowQuery):
        return finalize_record(
            database, spec, _execute_window(database, spec, method, seed_id)
        )
    if isinstance(spec, KnnQuery):
        return _execute_knn(database, spec, method, seed_id)
    if isinstance(spec, NearestQuery):
        return _execute_nearest(database, spec)
    if isinstance(spec, CompositeQuery):
        return _execute_composite(database, spec)
    raise TypeError(f"not a query spec: {spec!r}")


def finalize_record(
    database: "SpatialDatabase", spec: Query, record: QueryResult
) -> QueryResult:
    """Apply the spec's common options (``predicate``, ``limit``).

    Only for **raw region-kind records** (area/window — the geometric
    result before user-level options); point kinds weave both options
    into their own expansion and must not pass through here, so that a
    spec's predicate is invoked exactly once per examined candidate.
    Mutates and returns ``record``; the per-method counters are left as
    the underlying algorithm reported them (the predicate is a
    user-level filter, not part of the geometric work being measured).
    """
    ids = record.ids
    if spec.predicate is not None:
        predicate = spec.predicate
        point = database.point
        ids = [i for i in ids if predicate(point(i))]
    if spec.limit is not None and len(ids) > spec.limit:
        ids = ids[: spec.limit]
    if ids is not record.ids:
        record.ids = ids
        record.stats.result_size = len(ids)
    return record


# -- per-kind execution -------------------------------------------------------


def _execute_area(
    database: "SpatialDatabase",
    spec: AreaQuery,
    method: str,
    seed_id: Optional[int],
) -> QueryResult:
    """Run an area query with ``method`` (validation as in the legacy API)."""
    if not len(database):
        raise EmptyDatabaseError("area query on an empty database")
    if spec.region.area <= 0.0:
        raise InvalidQueryAreaError("query area has zero area")
    if method == "traditional":
        return traditional_area_query(
            database.index, spec.region, store=_columnar_store(database)
        )
    return voronoi_area_query(
        database.index,
        database.backend,
        database.store.rows(),
        spec.region,
        seed_id=seed_id,
        store=_columnar_store(database),
        deleted=_tombstones(database),
    )


def _execute_window(
    database: "SpatialDatabase",
    spec: WindowQuery,
    method: str,
    seed_id: Optional[int],
) -> QueryResult:
    """Run a window query natively on the index or as a Voronoi expansion."""
    if method == "voronoi":
        if not len(database):
            raise EmptyDatabaseError("voronoi window query on an empty database")
        if spec.rect.area <= 0.0:
            raise InvalidQueryAreaError(
                "voronoi execution needs a positive-area window; "
                "degenerate rectangles route to method='index'"
            )
        return voronoi_area_query(
            database.index,
            database.backend,
            database.store.rows(),
            Polygon.from_rect(spec.rect),
            seed_id=seed_id,
            store=_columnar_store(database),
            deleted=_tombstones(database),
        )
    stats = QueryStats(method="index")
    index = database.index
    nodes_before = index.stats.node_accesses
    started = time.perf_counter()
    if database.vectorized:
        import numpy as np

        id_array = index.window_ids_array(spec.rect)
        candidates = int(id_array.shape[0])
        id_array = np.sort(id_array)
        if spec.limit is not None and spec.predicate is None:
            # The limit would truncate the very same ascending prefix in
            # finalize_record; applying it on the array side skips
            # materialising thousands of Python ints for a first-page
            # response (finalize's own truncation becomes a no-op).
            id_array = id_array[: spec.limit]
        ids = id_array.tolist()
    else:
        entries = index.window_query(spec.rect)
        ids = sorted(item_id for _, item_id in entries)
        candidates = len(ids)
    stats.time_ms = (time.perf_counter() - started) * 1000.0
    stats.candidates = candidates
    stats.index_node_accesses = index.stats.node_accesses - nodes_before
    stats.result_size = len(ids)
    return QueryResult(ids=ids, stats=stats)


def _effective_k(spec: KnnQuery) -> Optional[int]:
    """The row budget of a kNN spec (``k`` capped by ``limit``).

    ``None`` means *unbounded*: the spec streams (``k=None``) and no
    ``limit`` caps it either.
    """
    if spec.k is None:
        return spec.limit
    if spec.limit is not None:
        return min(spec.k, spec.limit)
    return spec.k


def _execute_knn(
    database: "SpatialDatabase",
    spec: KnnQuery,
    method: str,
    seed_id: Optional[int],
) -> QueryResult:
    """Run a kNN query via the index or the Voronoi neighbour graph.

    An unbounded spec (``k=None``, no ``limit``) materialises the full
    distance ranking here — the streaming consumption path is
    :func:`stream_spec`, which never calls this.
    """
    k = _effective_k(spec)
    if k is None:
        k = len(database)
    if k == 0 or not len(database):
        return QueryResult(ids=[], stats=QueryStats(method=method))
    if method == "voronoi":
        if spec.predicate is None:
            return voronoi_knn_query(
                database.index,
                database.backend,
                database.store.rows(),
                spec.point,
                k,
                seed_id=seed_id,
                store=_columnar_store(database),
                deleted=_tombstones(database),
            )
        return _knn_voronoi_filtered(database, spec, k)
    return _knn_index(database, spec, k)


def _knn_index(
    database: "SpatialDatabase", spec: KnnQuery, k: int
) -> QueryResult:
    """Best-first index kNN; predicates retry with a doubled ``k``.

    The index search takes ``k`` up front, so a predicate that rejects
    candidates may leave the result short; doubling until the result is
    full (or the database is exhausted) keeps the contract "the ``k``
    nearest points satisfying the predicate".  The result prefix of a
    larger search equals the smaller search (deterministic tie-breaks),
    so each doubling round examines — and hands to the predicate — only
    the candidates beyond the previous round: one invocation per
    examined candidate, even across retries.
    """
    stats = QueryStats(method="index")
    index = database.index
    predicate = spec.predicate
    nodes_before = index.stats.node_accesses
    started = time.perf_counter()
    fetch = k
    n = len(database)
    ids: List[int] = []
    examined = 0
    while True:
        entries = index.k_nearest_neighbors(spec.point, fetch)
        for point, item_id in entries[examined:]:
            if len(ids) >= k:
                break
            if predicate is None or predicate(point):
                ids.append(item_id)
        examined = max(examined, len(entries))
        stats.candidates = examined
        if len(ids) >= k or fetch >= n:
            break
        fetch = min(n, fetch * 2)
    stats.time_ms = (time.perf_counter() - started) * 1000.0
    stats.index_node_accesses = index.stats.node_accesses - nodes_before
    stats.result_size = len(ids)
    return QueryResult(ids=ids, stats=stats)


def _knn_voronoi_filtered(
    database: "SpatialDatabase", spec: KnnQuery, k: int
) -> QueryResult:
    """Streaming Voronoi kNN with a predicate: expand until ``k`` pass.

    Uses the lazy distance-ordered generator
    (:func:`repro.core.knn_query.incremental_nearest`), so only as many
    candidates are examined as the filter forces.
    """
    stats = QueryStats(method="voronoi")
    index = database.index
    nodes_before = index.stats.node_accesses
    started = time.perf_counter()
    ids: List[int] = []
    predicate = spec.predicate
    point_of = database.point
    for row_id in incremental_nearest(
        index,
        database.backend,
        database.store.rows(),
        spec.point,
        store=_columnar_store(database),
        deleted=_tombstones(database),
    ):
        stats.candidates += 1
        if predicate is None or predicate(point_of(row_id)):
            ids.append(row_id)
            if len(ids) >= k:
                break
    stats.time_ms = (time.perf_counter() - started) * 1000.0
    stats.index_node_accesses = index.stats.node_accesses - nodes_before
    stats.result_size = len(ids)
    return QueryResult(ids=ids, stats=stats)


def _execute_nearest(
    database: "SpatialDatabase", spec: NearestQuery
) -> QueryResult:
    """Run a 1-NN query (index best-first; predicate via doubling kNN)."""
    stats = QueryStats(method="index")
    if not len(database) or spec.limit == 0:
        return QueryResult(ids=[], stats=stats)
    if spec.predicate is not None:
        knn = KnnQuery(
            spec.point, 1, method="index", predicate=spec.predicate
        )
        return _knn_index(database, knn, 1)
    index = database.index
    nodes_before = index.stats.node_accesses
    started = time.perf_counter()
    entry = index.nearest_neighbor(spec.point)
    stats.time_ms = (time.perf_counter() - started) * 1000.0
    stats.index_node_accesses = index.stats.node_accesses - nodes_before
    ids = [entry[1]] if entry is not None else []
    stats.candidates = len(ids)
    stats.result_size = len(ids)
    return QueryResult(ids=ids, stats=stats)


# -- composite execution ------------------------------------------------------


def merge_sorted_ids(
    spec: CompositeQuery, part_ids: List[Iterator[int]]
) -> Iterator[int]:
    """The lazy set-semantics merge of ``spec`` over sorted id streams.

    Dispatches on the composite kind to the generators of
    :mod:`repro.query.merge`; the eager batch path and the streaming
    path both run through here, so their semantics cannot drift.
    """
    if isinstance(spec, UnionQuery):
        return union_sorted(part_ids)
    if isinstance(spec, IntersectionQuery):
        return intersection_sorted(part_ids)
    if isinstance(spec, DifferenceQuery):
        return difference_sorted(part_ids[0], part_ids[1:])
    raise TypeError(f"not a composite spec: {spec!r}")


def _execute_composite(
    database: "SpatialDatabase", spec: CompositeQuery
) -> QueryResult:
    """Eagerly answer a composite by batch-decomposing its leaves.

    Delegates to the batch engine so the leaves of the composite are
    executed as one heterogeneous batch — siblings share window
    frontiers and Voronoi seed walks, and duplicate leaves execute once.
    The cross-batch LRU cache is not consulted (single-spec execution
    through :func:`execute_spec` never is, for any kind).
    """
    return database.engine.run_specs([spec], use_cache=False).results[0]


# -- streaming consumption ----------------------------------------------------


def stream_spec(
    database: "SpatialDatabase", spec: Query
) -> Iterator[int]:
    """Yield the result row ids of ``spec`` lazily, in result order.

    The streaming sibling of :func:`execute_spec`, used by
    :meth:`repro.query.result.QueryResult.first` and streaming
    iteration.  For an unbounded :class:`KnnQuery` the ranking is
    produced incrementally (:func:`repro.core.knn_query.incremental_nearest`)
    — stopping after ``n`` rows examines only ~``n`` candidates; for a
    composite, leaves execute on first demand and the set-merge itself
    never materialises.  Specs with nothing to gain from streaming
    (bounded leaf kinds) fall back to one eager execution and iterate
    its record; ids are identical to :func:`execute_spec` in every case.
    """
    if isinstance(spec, KnnQuery):
        return _stream_knn(database, spec)
    if isinstance(spec, CompositeQuery):
        return _stream_composite(database, spec)
    return iter(execute_spec(database, spec).ids)


def _stream_knn(
    database: "SpatialDatabase", spec: KnnQuery
) -> Iterator[int]:
    """Stream a kNN ranking lazily over the Voronoi neighbour graph.

    Always runs the incremental expansion regardless of ``spec.method``
    — the method field governs *eager* execution; a best-first index
    descent has no incremental form in this codebase.  The yielded order
    (distance, ties by row id) matches both eager methods.

    The generator body runs on the first ``next()`` — at the server this
    is synchronous with stream admission — and captures an MVCC
    :meth:`~repro.core.store.PointStore.snapshot` right there, so a
    stream that stays suspended across later writes keeps yielding
    exactly the admission-time version: rows inserted later never
    appear, rows deleted later still do (see
    :func:`repro.core.knn_query.incremental_nearest`).
    """
    if not len(database):
        return
    k = _effective_k(spec)
    if k == 0:
        return
    predicate = spec.predicate
    point_of = database.point
    produced = 0
    snapshot = database.store.snapshot()
    for row_id in incremental_nearest(
        database.index,
        database.backend,
        database.store.rows(),
        spec.point,
        store=_columnar_store(database),
        deleted=_tombstones(database),
        snapshot=snapshot,
    ):
        if predicate is not None and not predicate(point_of(row_id)):
            continue
        yield row_id
        produced += 1
        if k is not None and produced >= k:
            return


def _stream_composite(
    database: "SpatialDatabase", spec: CompositeQuery
) -> Iterator[int]:
    """Stream a composite's merged ids without materialising the merge.

    The *leaves* still execute through the batch engine — one shared
    heterogeneous batch on the first ``next()``, so streaming keeps the
    cross-sibling sharing (window frontiers, seed walks, leaf dedup)
    that eager execution gets — but the set-merge over their sorted id
    lists stays a lazy iterator: abandoning the stream (``first(n)``,
    ``takewhile``) abandons the remaining merge work, and the merged
    result is never materialised.  Nested composites merge recursively;
    every level's ``predicate``/``limit`` apply to its merged stream in
    the same order :func:`finalize_record` applies them eagerly.
    """

    def deferred() -> Iterator[int]:
        leaves = list(spec.iter_leaves())
        records = iter(
            database.engine.run_specs(leaves, use_cache=False).results
        )

        def build(node: Query) -> Iterator[int]:
            if isinstance(node, CompositeQuery):
                merged = merge_sorted_ids(
                    node, [build(part) for part in node.parts]
                )
                if node is spec:
                    return merged  # options applied once, below
                return _apply_stream_options(database, node, merged)
            return iter(next(records).ids)

        return _apply_stream_options(database, spec, build(spec))

    return _lazy_iter(deferred)


def _apply_stream_options(
    database: "SpatialDatabase", spec: Query, ids: Iterator[int]
) -> Iterator[int]:
    """Apply ``predicate``/``limit`` to a lazy id stream (in that order,
    matching :func:`finalize_record`)."""
    if spec.predicate is not None:
        predicate = spec.predicate
        point_of = database.point
        ids = (i for i in ids if predicate(point_of(i)))
    if spec.limit is not None:
        ids = islice(ids, spec.limit)
    return ids


def _lazy_iter(factory) -> Iterator[int]:
    """An iterator that calls ``factory`` only on the first ``next()``."""
    yield from factory()
