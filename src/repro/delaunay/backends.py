"""Voronoi-neighbour backends.

Algorithm 1 needs exactly one capability from the Voronoi substrate: given a
point index, enumerate its Voronoi neighbours' indices (``VN(P, p)`` in the
paper).  That capability is abstracted as :class:`DelaunayBackend` with two
implementations:

* :class:`PureDelaunayBackend` — our from-scratch Bowyer–Watson
  triangulation.  The default; no third-party geometry code involved.
* :class:`ScipyDelaunayBackend` — ``scipy.spatial.Delaunay`` (Qhull).  An
  optional accelerator for the paper-scale datasets (1E5–1E6 points) where
  pure-Python construction would dominate the experiment wall-clock.

The test suite asserts both produce identical neighbour sets, so the choice
is purely a build-speed knob; query traversals are byte-identical.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence, Tuple

from repro.geometry.point import Point


class DelaunayBackend(ABC):
    """Provides Voronoi-neighbour lookups over a fixed point set."""

    @abstractmethod
    def neighbors(self, index: int) -> Tuple[int, ...]:
        """Indices of the Voronoi neighbours of point ``index``."""

    @property
    @abstractmethod
    def size(self) -> int:
        """Number of points the backend was built over."""

    @property
    @abstractmethod
    def name(self) -> str:
        """Registry name of the backend."""

    def neighbor_table(self) -> list[Tuple[int, ...]]:
        """Dense ``index -> neighbours`` table (cached).

        Algorithm 1's BFS reads neighbours for every candidate; indexing a
        list is measurably cheaper than a method call per point, so the
        query path uses this table.
        """
        cached = getattr(self, "_neighbor_table", None)
        if cached is None:
            cached = [self.neighbors(i) for i in range(self.size)]
            self._neighbor_table = cached
        return cached

    def neighbor_csr(self):
        """The neighbour table in CSR form: ``(indptr, indices)`` int64.

        Point ``i``'s neighbours are ``indices[indptr[i]:indptr[i + 1]]``.
        The columnar BFS (:mod:`repro.core.voronoi_query`) expands whole
        frontier waves with array gathers over these, instead of one
        Python loop iteration per (candidate, neighbour) pair.  Cached;
        rebuilt automatically when the backend has grown since the cache
        was taken (:meth:`PureDelaunayBackend.add_point` patches the
        dense table in place, so size is the invalidation signal).
        """
        import numpy as np

        cached = getattr(self, "_neighbor_csr", None)
        if cached is not None and cached[2] == self.size:
            return cached[0], cached[1]
        table = self.neighbor_table()
        counts = np.fromiter(
            (len(row) for row in table), dtype=np.int64, count=len(table)
        )
        indptr = np.zeros(len(table) + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        indices = np.fromiter(
            (neighbor for row in table for neighbor in row),
            dtype=np.int64,
            count=int(indptr[-1]),
        )
        self._neighbor_csr = (indptr, indices, self.size)
        return indptr, indices


class PureDelaunayBackend(DelaunayBackend):
    """Neighbour lookups from :class:`repro.delaunay.DelaunayTriangulation`.

    The only backend supporting **incremental growth**: :meth:`add_point`
    inserts one point and patches the cached neighbour table locally, so a
    live database can absorb inserts without rebuilding its Voronoi
    structure (the scipy backend must rebuild).
    """

    def __init__(self, points: Sequence[Point], *, seed: int = 0) -> None:
        from repro.delaunay.triangulation import DelaunayTriangulation

        self._triangulation = DelaunayTriangulation(points, seed=seed)
        self._size = len(points)

    def neighbors(self, index: int) -> Tuple[int, ...]:
        return self._triangulation.neighbors(index)

    def add_point(self, point: Point) -> int:
        """Insert ``point`` incrementally; returns its new index.

        Raises :class:`ValueError` when the point falls too far outside the
        original extent for safe incremental insertion (rebuild instead).
        """
        result = self._triangulation.add_point(point)
        self._size += 1
        table = getattr(self, "_neighbor_table", None)
        if table is not None:
            table.append(())  # placeholder for the new index
            for index in result.affected:
                table[index] = self._triangulation.neighbors(index)
        return result.index

    @property
    def size(self) -> int:
        return self._size

    @property
    def name(self) -> str:
        return "pure"

    @property
    def triangulation(self):
        """The underlying :class:`DelaunayTriangulation` (for the dual)."""
        return self._triangulation


class ScipyDelaunayBackend(DelaunayBackend):
    """Neighbour lookups from ``scipy.spatial.Delaunay`` (optional).

    Duplicate points are collapsed before triangulating (Qhull rejects
    duplicates); aliases share the canonical point's neighbourhood and are
    linked to it at distance zero, mirroring the pure backend's semantics.
    """

    def __init__(self, points: Sequence[Point]) -> None:
        try:
            import numpy as np
            from scipy.spatial import Delaunay as _SciPyDelaunay
        except ImportError as error:  # pragma: no cover - env without scipy
            raise ImportError(
                "the 'scipy' backend needs scipy installed; use the 'pure' "
                "backend instead"
            ) from error

        self._size = len(points)
        if self._size == 0:
            raise ValueError("backend needs at least one point")

        # Collapse duplicates, remembering aliases.
        first_at: dict[tuple[float, float], int] = {}
        self._alias_of: dict[int, int] = {}
        canonical: list[int] = []
        for i, p in enumerate(points):
            key = (p.x, p.y)
            if key in first_at:
                self._alias_of[i] = first_at[key]
            else:
                first_at[key] = i
                self._alias_of[i] = i
                canonical.append(i)

        self._neighbors: dict[int, tuple[int, ...]] = {}
        if len(canonical) == 1:
            self._neighbors[canonical[0]] = ()
        elif len(canonical) == 2:
            a, b = canonical
            self._neighbors[a] = (b,)
            self._neighbors[b] = (a,)
        else:
            coords = np.array([(points[i].x, points[i].y) for i in canonical])
            try:
                tri = _SciPyDelaunay(coords)
            except Exception:
                # Degenerate (e.g. all collinear): chain along the line,
                # matching the pure backend's fallback.
                order = sorted(
                    range(len(canonical)),
                    key=lambda k: (coords[k][0], coords[k][1]),
                )
                for rank, k in enumerate(order):
                    nbrs = []
                    if rank > 0:
                        nbrs.append(canonical[order[rank - 1]])
                    if rank < len(order) - 1:
                        nbrs.append(canonical[order[rank + 1]])
                    self._neighbors[canonical[k]] = tuple(sorted(nbrs))
            else:
                indptr, indices = tri.vertex_neighbor_vertices
                for local, global_index in enumerate(canonical):
                    local_neighbors = indices[indptr[local] : indptr[local + 1]]
                    self._neighbors[global_index] = tuple(
                        sorted(canonical[j] for j in local_neighbors)
                    )

        # Duplicates: same clique semantics as the pure backend — all copies
        # of a location are mutually adjacent, inherit the full spatial
        # neighbourhood, and appear in their spatial neighbours' lists.
        groups: dict[int, list[int]] = {}
        for alias, canon in self._alias_of.items():
            groups.setdefault(canon, []).append(alias)
        if any(len(group) > 1 for group in groups.values()):
            expanded: dict[int, tuple[int, ...]] = {}
            for canon, group in groups.items():
                full = set(group)
                for neighbor_canon in self._neighbors[canon]:
                    full.update(groups[neighbor_canon])
                for member in group:
                    expanded[member] = tuple(sorted(full - {member}))
            self._neighbors = expanded

    def neighbors(self, index: int) -> Tuple[int, ...]:
        if index in self._neighbors:
            return self._neighbors[index]
        return self._neighbors[self._alias_of[index]]

    @property
    def size(self) -> int:
        return self._size

    @property
    def name(self) -> str:
        return "scipy"


BACKEND_REGISTRY = {
    "pure": PureDelaunayBackend,
    "scipy": ScipyDelaunayBackend,
}


def make_backend(
    kind: str, points: Sequence[Point], **kwargs
) -> DelaunayBackend:
    """Instantiate a neighbour backend by name (``pure`` or ``scipy``)."""
    try:
        cls = BACKEND_REGISTRY[kind]
    except KeyError:
        raise ValueError(
            f"unknown backend {kind!r}; choose from {sorted(BACKEND_REGISTRY)}"
        ) from None
    return cls(points, **kwargs)
