"""Incremental Bowyer–Watson Delaunay triangulation.

A from-scratch construction of the Delaunay triangulation of a 2-D point
set, the substrate from which the paper's method reads Voronoi-neighbour
relationships (Property 4: the Delaunay graph is the dual of the Voronoi
diagram).

Algorithm
---------
Classic cavity-based incremental insertion:

1. Start from a *super triangle* enclosing all input points by a wide
   margin.
2. For each point: locate the triangle containing it by a remembering
   stochastic walk, grow the *cavity* of all triangles whose circumcircle
   contains the point (breadth-first over triangle adjacency, using the
   robust in-circle predicate), delete the cavity and fan-retriangulate its
   boundary to the new point.
3. Finally, drop every triangle incident to a super-triangle vertex.

Expected time is O(n log n) with randomised insertion order; worst case is
quadratic.  The structure maintains full triangle adjacency, so the Voronoi
dual can be extracted without search, and it stays **dynamic**:
:meth:`DelaunayTriangulation.add_point` inserts one more point in expected
O(1) cavity work and reports exactly which points' neighbourhoods changed —
the database uses that to keep query structures warm across inserts.

Degeneracies
------------
* Duplicate points are detected at insertion and recorded as *aliases* of
  the first occurrence.  All copies of a location form a clique in the
  neighbour relation and share the location's spatial neighbourhood (the
  Voronoi diagram of a multiset is the diagram of its support).
* Cocircular quadruples are resolved arbitrarily but consistently by the
  exact predicate's tie (``incircle == 0`` keeps the current topology).
* Fully collinear inputs yield no finite triangles; the triangulation then
  reports the chain neighbours instead, so downstream graph traversal still
  sees a connected graph (Property 5 degenerates to a path).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.geometry.point import Point
from repro.geometry.predicates import (
    circumcenter,
    incircle,
    orientation_value,
)

Triangle = Tuple[int, int, int]
_SUPER = (0, 1, 2)  # vertex slots reserved for the super triangle


@dataclass(frozen=True)
class InsertionResult:
    """Outcome of :meth:`DelaunayTriangulation.add_point`.

    ``index`` is the new point's input index; ``affected`` lists every
    input index (including ``index``) whose :meth:`neighbors` result may
    have changed — callers maintaining caches re-read exactly those.
    """

    index: int
    affected: FrozenSet[int]


class DelaunayTriangulation:
    """Delaunay triangulation over a (dynamically growable) set of points.

    Parameters
    ----------
    points:
        The initial points.  Order is preserved: vertex ``i`` of the
        triangulation is ``points[i]``.
    shuffle:
        Insert in random order (seeded for reproducibility).  Strongly
        recommended — sorted input degrades the walk-based point location.

    Attributes
    ----------
    points:
        The input points (aliases included; grows with ``add_point``).
    alias_of:
        Maps the index of each duplicate point to the index of its first
        occurrence; canonical points map to themselves.
    """

    def __init__(
        self,
        points: Sequence[Point],
        *,
        shuffle: bool = True,
        seed: int = 0,
    ) -> None:
        self.points: List[Point] = list(points)
        if len(self.points) < 1:
            raise ValueError("triangulation needs at least one point")

        self.alias_of: Dict[int, int] = {}
        self._vertices: List[Point] = []  # super vertices + canonical points
        self._vertex_to_input: List[int] = []  # triangulation vertex -> input index
        self._input_to_vertex: Dict[int, int] = {}
        self._location_index: Dict[Tuple[float, float], int] = {}
        # triangle id -> vertex triple (CCW)
        self._triangles: Dict[int, Triangle] = {}
        # triangle id -> neighbour ids, entry i is across the edge opposite
        # vertex i (None on the hull)
        self._neighbors: Dict[int, List[Optional[int]]] = {}
        self._next_triangle_id = 0
        self._last_triangle: Optional[int] = None

        # Neighbour bookkeeping: spatial adjacency over canonical input
        # indices, duplicate groups, and a per-index view cache.
        self._spatial_adj: Dict[int, Set[int]] = {}
        self._groups: Dict[int, List[int]] = {}  # only canons with >1 copy
        self._has_duplicates = False
        self._chain_mode = False  # True while the input is fully collinear
        self._neighbor_cache: Dict[int, Tuple[int, ...]] = {}

        self._build(shuffle=shuffle, seed=seed)

    # -- public API ----------------------------------------------------------

    def neighbors(self, index: int) -> Tuple[int, ...]:
        """Voronoi neighbours of input point ``index`` (input indices).

        Copies of one location form a clique and share the location's
        spatial neighbourhood (they are at distance zero from each other);
        a point is never its own neighbour and the relation is symmetric.
        """
        cached = self._neighbor_cache.get(index)
        if cached is not None:
            return cached
        canonical = self.alias_of[index]
        spatial = self._spatial_adj[canonical]
        if not self._has_duplicates:
            result = tuple(sorted(spatial))
        else:
            full: Set[int] = set(self._groups.get(canonical, (canonical,)))
            for neighbor_canonical in spatial:
                full.update(
                    self._groups.get(
                        neighbor_canonical, (neighbor_canonical,)
                    )
                )
            full.discard(index)
            result = tuple(sorted(full))
        self._neighbor_cache[index] = result
        return result

    def add_point(self, point: Point) -> InsertionResult:
        """Insert one more point into the triangulation, incrementally.

        Expected O(1) amortised cavity work per insert (worst case O(n)).
        Returns the new input index and the set of input indices whose
        neighbour sets changed, so callers can update caches locally
        instead of rebuilding.
        """
        index = len(self.points)
        self.points.append(point)
        key = (point.x, point.y)

        existing = self._location_index.get(key)
        if existing is not None:
            # Duplicate: join the location's clique.
            self.alias_of[index] = existing
            group = self._groups.setdefault(existing, [existing])
            group.append(index)
            self._has_duplicates = True
            affected: Set[int] = set(group)
            for neighbor_canonical in self._spatial_adj[existing]:
                affected.update(
                    self._groups.get(
                        neighbor_canonical, (neighbor_canonical,)
                    )
                )
            self._invalidate(affected)
            return InsertionResult(index, frozenset(affected))

        self._guard_inside_super(point)
        self.alias_of[index] = index
        self._location_index[key] = index
        vertex = len(self._vertices)
        self._vertices.append(point)
        self._vertex_to_input.append(index)
        self._input_to_vertex[index] = vertex
        interior_edges, boundary_vertices = self._insert_vertex(vertex)

        if self._chain_mode:
            # The pre-insert structure was a degenerate collinear chain; the
            # incremental edge bookkeeping below assumes triangle-derived
            # adjacency, so rebuild from the (small) current topology.
            before = {
                i: set(nbrs) for i, nbrs in self._spatial_adj.items()
            }
            self._spatial_adj = self._extract_spatial_adjacency()
            self._chain_mode = not any(True for _ in self.triangles())
            affected = {index}
            for i, nbrs in self._spatial_adj.items():
                if before.get(i) != nbrs:
                    affected.add(i)
            affected = self._expand_to_groups(affected)
            self._invalidate(affected)
            return InsertionResult(index, frozenset(affected))

        changed: Set[int] = {index}
        self._spatial_adj[index] = set()
        for u, w in interior_edges:
            iu = self._vertex_to_input[u]
            iw = self._vertex_to_input[w]
            self._spatial_adj[iu].discard(iw)
            self._spatial_adj[iw].discard(iu)
            changed.add(iu)
            changed.add(iw)
        for u in boundary_vertices:
            iu = self._vertex_to_input[u]
            self._spatial_adj[index].add(iu)
            self._spatial_adj[iu].add(index)
            changed.add(iu)

        affected = self._expand_to_groups(changed)
        self._invalidate(affected)
        return InsertionResult(index, frozenset(affected))

    def triangles(self) -> Iterator[Tuple[int, int, int]]:
        """The finite triangles as triples of input indices (CCW)."""
        for tri in self._triangles.values():
            if any(v in _SUPER for v in tri):
                continue
            yield tuple(self._vertex_to_input[v] for v in tri)  # type: ignore[misc]

    def edges(self) -> Iterator[Tuple[int, int]]:
        """The finite Delaunay edges as ordered pairs ``(i, j)`` with i < j."""
        seen: Set[Tuple[int, int]] = set()
        for i, nbrs in self._spatial_adj.items():
            for j in nbrs:
                edge = (i, j) if i < j else (j, i)
                if edge not in seen:
                    seen.add(edge)
                    yield edge

    def triangle_circumcenters(self) -> Dict[Tuple[int, int, int], Point]:
        """Circumcentre of every finite triangle (keyed by input indices).

        These are exactly the Voronoi vertices of the dual diagram.
        """
        return {
            tri: circumcenter(
                self.points[tri[0]], self.points[tri[1]], self.points[tri[2]]
            )
            for tri in self.triangles()
        }

    @property
    def canonical_count(self) -> int:
        """Number of distinct point locations."""
        return len(self._vertices) - 3

    def check_delaunay_property(self) -> None:
        """Raise :class:`AssertionError` if any finite triangle's circumcircle
        strictly contains another input point (the empty-circumcircle
        invariant).  O(T * n); for tests only."""
        canonical_indices = [
            i for i in range(len(self.points)) if self.alias_of.get(i, i) == i
        ]
        for a, b, c in self.triangles():
            pa, pb, pc = self.points[a], self.points[b], self.points[c]
            for i in canonical_indices:
                if i in (a, b, c):
                    continue
                if incircle(pa, pb, pc, self.points[i]) > 0.0:
                    raise AssertionError(
                        f"point {i} lies inside the circumcircle of "
                        f"triangle ({a}, {b}, {c})"
                    )

    # -- construction ---------------------------------------------------------

    def _build(self, shuffle: bool, seed: int) -> None:
        # Deduplicate: canonical index for every distinct location.
        canonical: List[int] = []
        for i, p in enumerate(self.points):
            key = (p.x, p.y)
            if key in self._location_index:
                canon = self._location_index[key]
                self.alias_of[i] = canon
                self._groups.setdefault(canon, [canon]).append(i)
                self._has_duplicates = True
            else:
                self._location_index[key] = i
                self.alias_of[i] = i
                canonical.append(i)

        # Super triangle: a triangle comfortably containing all points.
        xs = [p.x for p in self.points]
        ys = [p.y for p in self.points]
        min_x, max_x = min(xs), max(xs)
        min_y, max_y = min(ys), max(ys)
        span = max(max_x - min_x, max_y - min_y, 1.0)
        mid_x = (min_x + max_x) / 2.0
        mid_y = (min_y + max_y) / 2.0
        # The super triangle must be far enough away that the circumcircle
        # of (hull edge, super vertex) approximates the outer half-plane:
        # its sagitta over a hull edge of length d is ~d^2/(8*margin), so a
        # 1e8 factor keeps the geometric shielding error below 1e-8 * span.
        # Numeric robustness at this scale is covered by the exact-predicate
        # fallback.
        margin = 1.0e8 * span
        self._span = span
        self._mid = Point(mid_x, mid_y)
        self._vertices = [
            Point(mid_x - 2.0 * margin, mid_y - margin),
            Point(mid_x + 2.0 * margin, mid_y - margin),
            Point(mid_x, mid_y + 2.0 * margin),
        ]
        self._vertex_to_input = [-1, -1, -1]

        root = self._new_triangle((0, 1, 2), [None, None, None])
        self._last_triangle = root

        order = list(canonical)
        if shuffle:
            random.Random(seed).shuffle(order)
        for input_index in order:
            vertex = len(self._vertices)
            self._vertices.append(self.points[input_index])
            self._vertex_to_input.append(input_index)
            self._input_to_vertex[input_index] = vertex
            self._insert_vertex(vertex)

        self._spatial_adj = self._extract_spatial_adjacency()
        self._chain_mode = not any(True for _ in self.triangles())

    def _guard_inside_super(self, point: Point) -> None:
        """Reject inserts so far outside the original extent that the super
        triangle's half-plane approximation would degrade (the database
        falls back to a full rebuild in that case)."""
        limit = 1.0e6 * self._span
        if (
            abs(point.x - self._mid.x) > limit
            or abs(point.y - self._mid.y) > limit
        ):
            raise ValueError(
                "point lies too far outside the triangulation's original "
                "extent for incremental insertion; rebuild instead"
            )

    def _new_triangle(
        self, tri: Triangle, neighbors: List[Optional[int]]
    ) -> int:
        tri_id = self._next_triangle_id
        self._next_triangle_id += 1
        self._triangles[tri_id] = tri
        self._neighbors[tri_id] = neighbors
        return tri_id

    # -- point location -------------------------------------------------------

    def _locate(self, p: Point) -> int:
        """Find a triangle whose closed interior contains ``p``.

        Remembering stochastic walk from the last created triangle.  The
        super triangle guarantees containment, so the walk terminates.
        """
        tri_id = self._last_triangle
        assert tri_id is not None
        if tri_id not in self._triangles:
            tri_id = next(iter(self._triangles))
        previous = -1
        for _ in range(4 * len(self._triangles) + 16):
            tri = self._triangles[tri_id]
            a, b, c = (self._vertices[v] for v in tri)
            exits: List[int] = []
            for edge_index, (u, w) in enumerate(((b, c), (c, a), (a, b))):
                # edge_index is the vertex opposite the edge (u, w)
                if orientation_value(u, w, p) < 0.0:
                    exits.append(edge_index)
            if not exits:
                return tri_id
            # Prefer an exit that doesn't walk straight back.
            step = None
            for edge_index in exits:
                neighbor = self._neighbors[tri_id][edge_index]
                if neighbor is not None and neighbor != previous:
                    step = neighbor
                    break
            if step is None:
                for edge_index in exits:
                    neighbor = self._neighbors[tri_id][edge_index]
                    if neighbor is not None:
                        step = neighbor
                        break
            if step is None:
                # Outside the hull of live triangles — cannot happen with a
                # super triangle, but guard anyway.
                raise RuntimeError("point-location walk left the triangulation")
            previous, tri_id = tri_id, step
        raise RuntimeError("point-location walk failed to terminate")

    # -- insertion --------------------------------------------------------------

    def _insert_vertex(
        self, vertex: int
    ) -> Tuple[List[Tuple[int, int]], List[int]]:
        """Bowyer–Watson insertion of ``vertex``.

        Returns ``(interior_edges, boundary_vertices)``: the finite edges
        destroyed by the cavity (each shared by two cavity triangles) and
        the finite vertices of the cavity's boundary cycle (the new
        vertex's Delaunay neighbours) — exactly the adjacency delta.
        """
        p = self._vertices[vertex]
        start = self._locate(p)

        # Grow the cavity: all triangles whose circumcircle contains p.
        cavity: Set[int] = {start}
        frontier = [start]
        while frontier:
            tri_id = frontier.pop()
            for neighbor in self._neighbors[tri_id]:
                if neighbor is None or neighbor in cavity:
                    continue
                ta, tb, tc = (
                    self._vertices[v] for v in self._triangles[neighbor]
                )
                if incircle(ta, tb, tc, p) > 0.0:
                    cavity.add(neighbor)
                    frontier.append(neighbor)

        # Boundary of the cavity (directed edges with the outside neighbour
        # across them) and the interior edges (shared by 2 cavity
        # triangles; reported once via id ordering).
        boundary: List[Tuple[int, int, Optional[int]]] = []
        interior_edges: List[Tuple[int, int]] = []
        for tri_id in cavity:
            tri = self._triangles[tri_id]
            for edge_index in range(3):
                neighbor = self._neighbors[tri_id][edge_index]
                u = tri[(edge_index + 1) % 3]
                w = tri[(edge_index + 2) % 3]
                if neighbor is None or neighbor not in cavity:
                    boundary.append((u, w, neighbor))
                elif tri_id < neighbor and u not in _SUPER and w not in _SUPER:
                    interior_edges.append((u, w))

        # Delete the cavity (no live triangle references a cavity id after
        # the redirection below, so the entries can be reclaimed outright).
        for tri_id in cavity:
            del self._triangles[tri_id]
            del self._neighbors[tri_id]

        # Fan-retriangulate: one new triangle per boundary edge.  The cavity
        # is star-shaped around p, so its boundary is a single CCW cycle and
        # each boundary vertex starts exactly one edge and ends exactly one.
        owner_by_start: Dict[int, int] = {}
        owner_by_end: Dict[int, int] = {}
        new_ids: List[int] = []
        for u, w, outside in boundary:
            new_id = self._new_triangle((vertex, u, w), [outside, None, None])
            new_ids.append(new_id)
            owner_by_start[u] = new_id
            owner_by_end[w] = new_id
            if outside is not None:
                # Point the outside triangle back at the new one.
                outside_tri = self._triangles[outside]
                outside_neighbors = self._neighbors[outside]
                for i in range(3):
                    ou = outside_tri[(i + 1) % 3]
                    ow = outside_tri[(i + 2) % 3]
                    if (ou, ow) == (w, u):
                        outside_neighbors[i] = new_id
                        break

        # Stitch the fan: triangle (vertex, u, w) meets the triangle whose
        # boundary edge starts at w along the spoke (w, vertex) (edge
        # opposite local vertex 1), and the triangle whose boundary edge
        # ends at u along the spoke (vertex, u) (edge opposite local
        # vertex 2).
        for new_id in new_ids:
            _, u, w = self._triangles[new_id]
            self._neighbors[new_id][1] = owner_by_start.get(w)
            self._neighbors[new_id][2] = owner_by_end.get(u)
        self._last_triangle = new_ids[-1] if new_ids else self._last_triangle

        boundary_vertices = [
            u for u, _, _ in boundary if u not in _SUPER
        ]
        return interior_edges, boundary_vertices

    # -- adjacency extraction ----------------------------------------------------

    def _extract_spatial_adjacency(self) -> Dict[int, Set[int]]:
        """Spatial adjacency over canonical input indices, from triangles."""
        adjacency: Dict[int, Set[int]] = {
            self._vertex_to_input[v]: set()
            for v in range(3, len(self._vertices))
        }
        for tri in self._triangles.values():
            finite = [v for v in tri if v not in _SUPER]
            if len(finite) < 2:
                continue
            inputs = [self._vertex_to_input[v] for v in finite]
            for i in range(len(inputs)):
                for j in range(i + 1, len(inputs)):
                    adjacency[inputs[i]].add(inputs[j])
                    adjacency[inputs[j]].add(inputs[i])

        # Collinear degenerate case: no finite triangle at all, but >= 2
        # distinct points.  Chain them along the line so the neighbour graph
        # stays connected (the true Voronoi adjacency for collinear points).
        canonical = [
            i for i in range(len(self.points)) if self.alias_of.get(i, i) == i
        ]
        if len(canonical) >= 2 and all(not nbrs for nbrs in adjacency.values()):
            ordered = sorted(
                canonical, key=lambda i: (self.points[i].x, self.points[i].y)
            )
            for a, b in zip(ordered, ordered[1:]):
                adjacency[a].add(b)
                adjacency[b].add(a)
        return adjacency

    def _expand_to_groups(self, canonicals: Set[int]) -> Set[int]:
        """All input indices living in the duplicate groups of ``canonicals``."""
        if not self._has_duplicates:
            return set(canonicals)
        expanded: Set[int] = set()
        for canonical in canonicals:
            expanded.update(self._groups.get(canonical, (canonical,)))
        return expanded

    def _invalidate(self, indices: Iterable[int]) -> None:
        for index in indices:
            self._neighbor_cache.pop(index, None)

    # -- convenience ------------------------------------------------------------

    @staticmethod
    def from_xy(
        xs: Iterable[float], ys: Iterable[float], **kwargs
    ) -> "DelaunayTriangulation":
        """Build from parallel coordinate iterables."""
        return DelaunayTriangulation(
            [Point(float(x), float(y)) for x, y in zip(xs, ys)], **kwargs
        )
