"""Voronoi diagram as the dual of the Delaunay triangulation.

The query algorithm itself only needs the neighbour graph (see
:mod:`repro.delaunay.backends`), but a credible Voronoi library must also
materialise the diagram: cells, vertices, and the properties the paper
builds on (Section II).  This module constructs finite, box-clipped Voronoi
cells from the triangulation:

* each Voronoi *vertex* is the circumcentre of a Delaunay triangle
  (Property 4);
* the cell of an interior generator is the CCW polygon of the circumcentres
  of its incident triangles;
* cells of hull generators are unbounded and are clipped to a caller-chosen
  bounding box by half-plane intersection — every bisector of the generator
  against a neighbour contributes a half-plane, which is also the defining
  intersection-of-half-planes characterisation of the cell (equation (1) of
  the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.rectangle import Rect
from repro.delaunay.triangulation import DelaunayTriangulation


@dataclass(frozen=True)
class VoronoiCell:
    """One Voronoi cell: its generator and its (clipped) boundary polygon.

    ``polygon`` is ``None`` for degenerate configurations where the cell has
    empty interior within the clip box (possible for duplicate generators or
    a clip box that excludes the cell entirely).
    """

    generator_index: int
    generator: Point
    polygon: Optional[Polygon]
    is_unbounded: bool

    @property
    def area(self) -> float:
        """Clipped cell area (0.0 for degenerate cells)."""
        return self.polygon.area if self.polygon is not None else 0.0

    def contains(self, p: Point) -> bool:
        """True if ``p`` lies in the (clipped) cell."""
        return self.polygon is not None and self.polygon.contains_point(p)


class VoronoiDiagram:
    """The Voronoi diagram of a point set, clipped to a bounding box.

    Parameters
    ----------
    points:
        The generators.
    clip:
        Bounding box to which unbounded cells are clipped.  Defaults to the
        generators' MBR expanded by 20 % of its larger side.
    triangulation:
        An existing :class:`DelaunayTriangulation` to reuse; one is built
        when omitted.
    """

    def __init__(
        self,
        points: Sequence[Point],
        clip: Optional[Rect] = None,
        triangulation: Optional[DelaunayTriangulation] = None,
    ) -> None:
        self.points: List[Point] = list(points)
        if not self.points:
            raise ValueError("Voronoi diagram needs at least one generator")
        self.triangulation = (
            triangulation
            if triangulation is not None
            else DelaunayTriangulation(self.points)
        )
        if clip is None:
            mbr = Rect.from_points(self.points)
            margin = 0.2 * max(mbr.width, mbr.height, 1.0)
            clip = mbr.expanded(margin)
        self.clip = clip
        self._cells: Dict[int, VoronoiCell] = {}

    # -- neighbour graph (the paper's VN) ------------------------------------

    def neighbors(self, index: int) -> Tuple[int, ...]:
        """Voronoi neighbours of generator ``index`` (Property 4 dual)."""
        return self.triangulation.neighbors(index)

    def nearest_generator(self, q: Point) -> int:
        """Index of the generator whose cell contains ``q`` (Property 3).

        Implemented by neighbour-descent: start anywhere and repeatedly move
        to any neighbour closer to ``q``; Property 2 guarantees a local
        minimum is the global nearest generator.
        """
        current = 0
        current = self.triangulation.alias_of.get(current, current)
        current_distance = self.points[current].squared_distance_to(q)
        improved = True
        while improved:
            improved = False
            for neighbor in self.neighbors(current):
                d = self.points[neighbor].squared_distance_to(q)
                if d < current_distance:
                    current, current_distance = neighbor, d
                    improved = True
                    break
        return current

    # -- cells ---------------------------------------------------------------

    def cell(self, index: int) -> VoronoiCell:
        """The (lazily computed, cached) cell of generator ``index``."""
        canonical = self.triangulation.alias_of.get(index, index)
        if canonical not in self._cells:
            self._cells[canonical] = self._build_cell(canonical)
        cached = self._cells[canonical]
        if index != canonical:
            # A duplicate generator shares the canonical cell geometry.
            return VoronoiCell(
                generator_index=index,
                generator=self.points[index],
                polygon=cached.polygon,
                is_unbounded=cached.is_unbounded,
            )
        return cached

    def cells(self) -> List[VoronoiCell]:
        """All cells, one per input generator (duplicates share geometry)."""
        return [self.cell(i) for i in range(len(self.points))]

    def _build_cell(self, index: int) -> VoronoiCell:
        """Half-plane intersection of bisectors against all neighbours.

        Clipping the *box* polygon successively against each neighbour's
        bisector realises equation (1) of the paper restricted to the
        neighbour set, which is sufficient: non-neighbour bisectors are
        redundant constraints.
        """
        generator = self.points[index]
        region: List[Point] = list(self.clip.corners())
        unbounded = False
        for neighbor_index in self.neighbors(index):
            neighbor = self.points[neighbor_index]
            if neighbor == generator:
                continue  # duplicate alias: bisector undefined
            region = _clip_by_bisector(region, generator, neighbor)
            if len(region) < 3:
                break
        if len(region) < 3:
            return VoronoiCell(index, generator, None, is_unbounded=False)
        polygon = Polygon(region)
        # The cell is unbounded iff the generator is on the hull, which
        # manifests as the clipped cell touching the clip box boundary.
        for vertex in polygon.vertices:
            if (
                abs(vertex.x - self.clip.min_x) < 1e-12
                or abs(vertex.x - self.clip.max_x) < 1e-12
                or abs(vertex.y - self.clip.min_y) < 1e-12
                or abs(vertex.y - self.clip.max_y) < 1e-12
            ):
                unbounded = True
                break
        return VoronoiCell(index, generator, polygon, unbounded)

    # -- diagnostics -----------------------------------------------------------

    def total_cell_area(self) -> float:
        """Sum of clipped cell areas.

        For generators all inside the clip box this equals the clip box area
        (the cells tile the box); the tests use that as a global invariant.
        """
        seen = set()
        total = 0.0
        for i in range(len(self.points)):
            canonical = self.triangulation.alias_of.get(i, i)
            if canonical in seen:
                continue
            seen.add(canonical)
            total += self.cell(canonical).area
        return total


def _clip_by_bisector(
    region: List[Point], keep: Point, other: Point
) -> List[Point]:
    """Sutherland–Hodgman clip of ``region`` by the half-plane of points at
    least as close to ``keep`` as to ``other``."""
    if not region:
        return region
    # Half-plane: dot(p - midpoint, keep - other) >= 0.
    mid = keep.midpoint(other)
    normal = keep - other

    def side(p: Point) -> float:
        return (p - mid).dot(normal)

    output: List[Point] = []
    n = len(region)
    for i in range(n):
        current = region[i]
        following = region[(i + 1) % n]
        side_current = side(current)
        side_following = side(following)
        if side_current >= 0.0:
            output.append(current)
            if side_following < 0.0:
                output.append(_edge_plane_intersection(current, following, mid, normal))
        elif side_following >= 0.0:
            output.append(_edge_plane_intersection(current, following, mid, normal))
    # Remove consecutive duplicates introduced by vertices exactly on the line.
    deduplicated: List[Point] = []
    for p in output:
        if not deduplicated or deduplicated[-1] != p:
            deduplicated.append(p)
    if len(deduplicated) > 1 and deduplicated[0] == deduplicated[-1]:
        deduplicated.pop()
    return deduplicated


def _edge_plane_intersection(
    a: Point, b: Point, plane_point: Point, plane_normal: Point
) -> Point:
    direction = b - a
    denominator = direction.dot(plane_normal)
    if denominator == 0.0:
        return a
    t = (plane_point - a).dot(plane_normal) / denominator
    return a + direction * t
