"""Graph utilities over the Delaunay/Voronoi neighbour structure.

The correctness argument of the paper (Section III) is graph-theoretic:

* Property 5 — the Delaunay graph is connected;
* Properties 7–9 — internal points only border internal/boundary points,
  so a BFS seeded inside the query area and blocked at external points
  still reaches every internal point.

This module provides the traversals and checks that make those claims
testable, plus generic helpers (components, shortest hop paths) usable by
applications built on the library.

The helpers operate on plain neighbour tables (``list[tuple[int, ...]]``)
rather than on a triangulation object, so they work identically over the
pure and scipy backends — and over any adjacency structure a test wants
to fabricate.  The batch engine's greedy seed walk
(:func:`repro.engine.batch.greedy_seed_walk`) relies on the same
connectivity property (Property 5) that these utilities verify.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.delaunay.backends import DelaunayBackend


def bfs_order(
    backend: DelaunayBackend,
    seed: int,
    *,
    expand: Optional[Callable[[int], bool]] = None,
) -> List[int]:
    """Breadth-first visit order from ``seed`` over Voronoi neighbours.

    ``expand(i)`` decides whether the frontier grows *through* point ``i``
    (the point itself is always reported once reached).  With the paper's
    internal-point predicate as ``expand``, this is the skeleton of
    Algorithm 1.
    """
    visited: Set[int] = {seed}
    order: List[int] = []
    queue: deque[int] = deque([seed])
    while queue:
        current = queue.popleft()
        order.append(current)
        if expand is not None and not expand(current):
            continue
        for neighbor in backend.neighbors(current):
            if neighbor not in visited:
                visited.add(neighbor)
                queue.append(neighbor)
    return order


def connected_components(backend: DelaunayBackend) -> List[List[int]]:
    """Connected components of the neighbour graph (Property 5: expect one)."""
    remaining: Set[int] = set(range(backend.size))
    components: List[List[int]] = []
    while remaining:
        seed = next(iter(remaining))
        component = bfs_order(backend, seed)
        components.append(sorted(component))
        remaining.difference_update(component)
    return components


def is_connected(backend: DelaunayBackend) -> bool:
    """True if every point is reachable from every other (Property 5)."""
    if backend.size == 0:
        return True
    return len(bfs_order(backend, 0)) == backend.size


def shortest_hop_path(
    backend: DelaunayBackend, source: int, target: int
) -> Optional[List[int]]:
    """A minimum-hop path through the neighbour graph, or ``None``.

    Useful for applications (e.g. nearest-facility routing along Voronoi
    adjacency) and for the test that internal points of an area are mutually
    reachable without leaving the area (the paper's key structural claim).
    """
    if source == target:
        return [source]
    parent: Dict[int, int] = {source: source}
    queue: deque[int] = deque([source])
    while queue:
        current = queue.popleft()
        for neighbor in backend.neighbors(current):
            if neighbor in parent:
                continue
            parent[neighbor] = current
            if neighbor == target:
                path = [target]
                while path[-1] != source:
                    path.append(parent[path[-1]])
                path.reverse()
                return path
            queue.append(neighbor)
    return None


def reachable_without(
    backend: DelaunayBackend,
    seed: int,
    blocked: Set[int],
) -> Set[int]:
    """All points reachable from ``seed`` without entering ``blocked``.

    Directly encodes the paper's claim behind Properties 7–9: with
    ``blocked`` = external points, the reachable set from any internal seed
    contains every internal point.
    """
    if seed in blocked:
        return set()
    visited: Set[int] = {seed}
    queue: deque[int] = deque([seed])
    while queue:
        current = queue.popleft()
        for neighbor in backend.neighbors(current):
            if neighbor not in visited and neighbor not in blocked:
                visited.add(neighbor)
                queue.append(neighbor)
    return visited


def degree_histogram(backend: DelaunayBackend) -> Dict[int, int]:
    """Histogram of neighbour counts.

    For uniform random points the average Voronoi neighbour count tends to
    six (a classical fact the tests assert loosely); the histogram is also a
    useful dataset diagnostic.
    """
    histogram: Dict[int, int] = {}
    for i in range(backend.size):
        degree = len(backend.neighbors(i))
        histogram[degree] = histogram.get(degree, 0) + 1
    return histogram


def average_degree(backend: DelaunayBackend) -> float:
    """Mean neighbour count over all points."""
    if backend.size == 0:
        return 0.0
    return (
        sum(len(backend.neighbors(i)) for i in range(backend.size))
        / backend.size
    )


def edge_list(backend: DelaunayBackend) -> List[Tuple[int, int]]:
    """All undirected neighbour pairs ``(i, j)`` with ``i < j``."""
    edges: Set[Tuple[int, int]] = set()
    for i in range(backend.size):
        for j in backend.neighbors(i):
            edges.add((i, j) if i < j else (j, i))
    return sorted(edges)


def check_symmetry(backend: DelaunayBackend) -> None:
    """Raise :class:`AssertionError` if the neighbour relation is asymmetric.

    Voronoi adjacency is symmetric by definition (cells share an edge); this
    validates a backend implementation.
    """
    for i in range(backend.size):
        for j in backend.neighbors(i):
            if i not in backend.neighbors(j):
                raise AssertionError(
                    f"asymmetric adjacency: {j} in N({i}) but {i} not in N({j})"
                )
