"""Delaunay triangulation and Voronoi diagram substrate.

The paper's method never materialises Voronoi *cells* during a query — it
only walks Voronoi *neighbour* relationships, which by Property 4 are the
edges of the Delaunay triangulation.  This package provides:

* :class:`~repro.delaunay.triangulation.DelaunayTriangulation` — an
  incremental Bowyer–Watson triangulation built from scratch on the robust
  predicates of :mod:`repro.geometry.predicates`.
* :class:`~repro.delaunay.voronoi.VoronoiDiagram` — the dual diagram:
  per-point cells (circumcentre polygons, clipped to a box) and the
  neighbour graph.
* :mod:`~repro.delaunay.backends` — a common ``NeighborProvider`` protocol
  with a pure-Python backend (ours) and an optional scipy-accelerated one
  for very large experimental datasets; the test suite checks they agree.
* :mod:`~repro.delaunay.graph` — graph utilities over the Delaunay edges
  (connectivity, BFS) backing the paper's Properties 5–9.
"""

from repro.delaunay.backends import (
    DelaunayBackend,
    PureDelaunayBackend,
    ScipyDelaunayBackend,
    make_backend,
)
from repro.delaunay.triangulation import DelaunayTriangulation
from repro.delaunay.voronoi import VoronoiCell, VoronoiDiagram

__all__ = [
    "DelaunayTriangulation",
    "VoronoiDiagram",
    "VoronoiCell",
    "DelaunayBackend",
    "PureDelaunayBackend",
    "ScipyDelaunayBackend",
    "make_backend",
]
