# Developer entry points. Every target sets PYTHONPATH=src, so no install
# step is needed; see README.md for what each target is for.

PYTEST := PYTHONPATH=src python -m pytest

.PHONY: test test-chaos docs-check lint bench-smoke bench-columnar bench demo

## tier-1 test suite (the gate every change must keep green)
test:
	$(PYTEST) -x -q

## fault-injection chaos suite under a fixed seed: deterministic
## FaultyBackend scenarios plus the real-process kill -9 tests
## (replicated failover, degraded results, supervision respawn).
## Override the seed to replay a specific run:
## REPRO_CHAOS_SEED=<n> make test-chaos
test-chaos:
	REPRO_CHAOS_SEED=$${REPRO_CHAOS_SEED:-1307} \
		$(PYTEST) tests/cluster/test_failover.py -q

## documentation gate: fails on any public item without a docstring,
## any dead relative link/anchor in README.md + docs/*.md, or any
## fenced CLI example naming a subcommand/experiment target that the
## CLI does not actually register (tools/docs_check.py)
docs-check:
	$(PYTEST) tests/test_api_documentation.py -q
	python tools/docs_check.py

## lint gate: ruff when installed, else the bundled fallback linter
## (tools/lint.py — syntax, unused imports, whitespace hygiene); either
## way the serving layers (src/repro/server, src/repro/live) also pass
## the static doc-coverage check (module + public def/class docstrings)
lint:
	python tools/lint.py src tests benchmarks examples tools

## fast benchmark smoke: columnar + batch-engine + composite + server +
## mutable-serving + live-subscription + tail-latency + overload suites
## with their speedup assertions (timing collection disabled; the
## 2x / 1.5x / 1.3x throughput asserts, the no-rebuild freshness
## assert, the dirty-tile pruning assert, and the bounded-admitted-p99
## overload assert still run).  Emits the machine-readable per-PR
## record BENCH_pr.json (override the path with REPRO_BENCH_JSON); CI
## uploads it as a workflow artifact on every run and compares it
## against the previous run's artifact, failing on >10% regressions of
## the stable benchmark set (see tools/bench_delta.py).
bench-smoke:
	$(PYTEST) benchmarks/bench_columnar.py benchmarks/bench_batch_engine.py \
		benchmarks/bench_composite.py \
		benchmarks/bench_server.py \
		benchmarks/bench_mutable.py \
		benchmarks/bench_subscriptions.py \
		benchmarks/bench_tail_latency.py \
		benchmarks/bench_overload.py \
		benchmarks/bench_cluster.py \
		benchmarks/bench_failover.py -q --benchmark-disable

## columnar acceptance bench alone: vectorized vs scalar hot paths on
## the refinement-heavy trace (>= 2x asserted), ids byte-identical
bench-columnar:
	$(PYTEST) benchmarks/bench_columnar.py -q --benchmark-disable

## full benchmark run: every paper artefact + the batch engine (slow;
## REPRO_BENCH_SCALE=paper selects the paper's 1E5-1E6 sweep)
bench:
	$(PYTEST) benchmarks/bench_table1.py benchmarks/bench_table2.py \
		benchmarks/bench_fig4.py benchmarks/bench_fig5.py \
		benchmarks/bench_fig6.py benchmarks/bench_fig7.py \
		benchmarks/bench_ablation_indexes.py \
		benchmarks/bench_ablation_backend.py \
		benchmarks/bench_ablation_polygon.py \
		benchmarks/bench_ablation_knn.py \
		benchmarks/bench_ablation_iocost.py \
		benchmarks/bench_columnar.py \
		benchmarks/bench_batch_engine.py \
		benchmarks/bench_composite.py \
		benchmarks/bench_server.py \
		benchmarks/bench_mutable.py \
		benchmarks/bench_subscriptions.py \
		benchmarks/bench_tail_latency.py \
		benchmarks/bench_overload.py \
		benchmarks/bench_cluster.py \
		benchmarks/bench_failover.py

## one-shot demo of both methods + the batch engine
demo:
	PYTHONPATH=src python -m repro demo
	PYTHONPATH=src python -m repro batch
