#!/usr/bin/env python3
"""Logistics scenario: assigning customers to concave delivery zones.

A delivery company partitions its service region into zones drawn around
road networks — irregular, frequently concave polygons.  Nightly it must
re-assign every customer to its zone: dozens of area queries over one
static customer table.  That access pattern is the sweet spot of the
paper's method: the Voronoi neighbour graph is built once and amortised
over all queries.

The example also demonstrates query-level statistics aggregation: total
candidates and redundant validations across the whole batch, method by
method.

Run with::

    python examples/logistics_zones.py
"""

import random
import time

from repro import AreaQuery, SpatialDatabase
from repro.core.stats import QueryStats
from repro.geometry.random_shapes import random_query_polygon
from repro.workloads.generators import uniform_points


N_CUSTOMERS = 40_000
N_ZONES = 24


def main() -> None:
    print(f"Customer table: {N_CUSTOMERS:,} delivery addresses...")
    customers = uniform_points(N_CUSTOMERS, seed=99)

    started = time.perf_counter()
    db = SpatialDatabase.from_points(customers, backend_kind="scipy").prepare()
    print(f"Access structures built in {time.perf_counter() - started:.2f} s.")

    # Zones: random concave polygons of varying size (0.5 % to 8 % of the
    # region each).  Real zones would come from a file; shape statistics
    # are what matters here.
    rng = random.Random(17)
    zones = [
        random_query_polygon(
            query_size=rng.choice([0.005, 0.01, 0.02, 0.04, 0.08]),
            n_vertices=rng.randint(8, 14),
            rng=rng,
        )
        for _ in range(N_ZONES)
    ]

    totals = {"voronoi": QueryStats(), "traditional": QueryStats()}
    assignments: dict[int, list[int]] = {}
    for zone_id, zone in enumerate(zones):
        voronoi = db.query(AreaQuery(zone, method="voronoi"))
        traditional = db.query(AreaQuery(zone, method="traditional"))
        assert voronoi.ids() == traditional.ids(), f"zone {zone_id} disagreement"
        assignments[zone_id] = voronoi.ids()
        totals["voronoi"] = totals["voronoi"].merge(voronoi.stats)
        totals["traditional"] = totals["traditional"].merge(traditional.stats)

    assigned = sum(len(ids) for ids in assignments.values())
    print(
        f"\nAssigned {assigned:,} customer-zone pairs across "
        f"{N_ZONES} zones (zones may overlap)."
    )

    print(f"\n{'batch totals':26} {'voronoi':>12} {'traditional':>12}")
    print("-" * 52)
    for label, attribute in [
        ("candidates", "candidates"),
        ("redundant validations", "redundant_validations"),
    ]:
        v = getattr(totals["voronoi"], attribute)
        t = getattr(totals["traditional"], attribute)
        print(f"{label:26} {v:>12,} {t:>12,}")
    print(
        f"{'time (ms)':26} {totals['voronoi'].time_ms:>12.1f} "
        f"{totals['traditional'].time_ms:>12.1f}"
    )

    saved = 1 - totals["voronoi"].candidates / totals["traditional"].candidates
    saved_time = (
        1 - totals["voronoi"].time_ms / totals["traditional"].time_ms
    )
    print(
        f"\nBatch summary: {saved:.0%} fewer candidates, "
        f"{saved_time:.0%} less query time with the Voronoi method."
    )


if __name__ == "__main__":
    main()
