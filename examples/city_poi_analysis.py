#!/usr/bin/env python3
"""Urban-planning scenario: points of interest inside an irregular district.

The paper's introduction motivates area queries with GIS workloads — e.g.
"find every facility inside this district", where the district boundary is
an irregular, concave polygon (administrative borders follow rivers and
roads, not rectangles).

This example builds a synthetic city:

* POIs are *clustered* (dense downtown cores, sparse suburbs), not uniform,
  demonstrating that the method is distribution-free;
* the district is a hand-drawn concave polygon that fills only ~40 % of its
  bounding box — the regime where MBR filtering wastes most of its work.

Run with::

    python examples/city_poi_analysis.py
"""

import time

from repro import AreaQuery, Polygon, SpatialDatabase
from repro.workloads.generators import clustered_points

# An irregular "district" hugging a river bend: concave, 12 vertices.
DISTRICT = Polygon(
    [
        (0.15, 0.20),
        (0.45, 0.12),
        (0.58, 0.25),
        (0.52, 0.42),
        (0.68, 0.55),
        (0.82, 0.48),
        (0.88, 0.70),
        (0.65, 0.85),
        (0.42, 0.78),
        (0.45, 0.55),
        (0.28, 0.60),
        (0.12, 0.45),
    ]
)


def main() -> None:
    print("City: 50,000 clustered POIs (8 density cores)...")
    pois = clustered_points(50_000, seed=7, clusters=8, spread=0.08)

    started = time.perf_counter()
    db = SpatialDatabase.from_points(pois, backend_kind="scipy").prepare()
    print(f"Database ready in {time.perf_counter() - started:.2f} s.")

    fill = DISTRICT.area / DISTRICT.mbr.area
    print(
        f"\nDistrict polygon: {len(DISTRICT)} vertices, "
        f"fills {fill:.0%} of its bounding box."
    )

    voronoi = db.query(AreaQuery(DISTRICT, method="voronoi"))
    traditional = db.query(AreaQuery(DISTRICT, method="traditional"))
    assert voronoi.ids() == traditional.ids()

    print(f"\nPOIs inside the district: {len(voronoi):,}")
    print(
        f"  Voronoi method:     {voronoi.stats.candidates:>7,} candidates, "
        f"{voronoi.stats.redundant_validations:>6,} redundant, "
        f"{voronoi.stats.time_ms:7.1f} ms"
    )
    print(
        f"  Traditional method: {traditional.stats.candidates:>7,} candidates, "
        f"{traditional.stats.redundant_validations:>6,} redundant, "
        f"{traditional.stats.time_ms:7.1f} ms"
    )

    saved_candidates = (
        1 - voronoi.stats.candidates / traditional.stats.candidates
    )
    saved_time = 1 - voronoi.stats.time_ms / traditional.stats.time_ms
    print(
        f"\nVoronoi expansion touched {saved_candidates:.0%} fewer candidates "
        f"and saved {saved_time:.0%} of the query time."
    )

    # The three point classes of the paper, for insight into *why*:
    classes = db.classify_against(DISTRICT)
    print(
        f"\nPoint classes (paper Section III): "
        f"{len(classes['internal']):,} internal, "
        f"{len(classes['boundary']):,} boundary (the shell the Voronoi "
        f"method also validates), {len(classes['external']):,} external "
        f"(never touched by the Voronoi method)."
    )


if __name__ == "__main__":
    main()
