#!/usr/bin/env python3
"""Quickstart: build a spatial database and run both area-query methods.

This is the one-minute tour of the library:

1. generate a synthetic point database (100k points would match the paper;
   20k keeps the quickstart snappy),
2. build the two access structures both methods share (R-tree + Voronoi
   neighbour graph),
3. issue one irregular polygon area query with each method,
4. confirm they return identical results and compare their work counters.

Run with::

    python examples/quickstart.py
"""

import random
import time

from repro import AreaQuery, SpatialDatabase, random_query_polygon


def main() -> None:
    rng = random.Random(2020)

    print("Generating 20,000 uniform points in the unit square...")
    points = [(rng.random(), rng.random()) for _ in range(20_000)]

    print("Building the database (R-tree + Voronoi neighbour graph)...")
    started = time.perf_counter()
    db = SpatialDatabase.from_points(points, backend_kind="scipy").prepare()
    print(f"  built in {time.perf_counter() - started:.2f} s")

    # The paper's workload: a random 10-vertex polygon whose MBR covers 1 %
    # of the space.  It is usually concave — exactly the case where the
    # traditional method wastes refinement work.
    area = random_query_polygon(query_size=0.01, rng=rng)
    print(
        f"\nQuery area: 10-gon, own area {area.area:.4f}, "
        f"MBR area {area.mbr.area:.4f} "
        f"(polygon fills {area.area / area.mbr.area:.0%} of its MBR)"
    )

    # One logical query, two execution methods: the spec object carries
    # the method, the database has a single query() entry point.
    voronoi = db.query(AreaQuery(area, method="voronoi"))
    traditional = db.query(AreaQuery(area, method="traditional"))

    assert voronoi.ids() == traditional.ids(), "methods must agree!"
    print(f"\nBoth methods found the same {len(voronoi)} points.\n")

    header = f"{'':24} {'voronoi':>10} {'traditional':>12}"
    print(header)
    print("-" * len(header))
    for label, attribute in [
        ("candidates", "candidates"),
        ("exact validations", "validations"),
        ("redundant validations", "redundant_validations"),
        ("index node accesses", "index_node_accesses"),
    ]:
        v = getattr(voronoi.stats, attribute)
        t = getattr(traditional.stats, attribute)
        print(f"{label:24} {v:>10} {t:>12}")
    print(
        f"{'time (ms)':24} {voronoi.stats.time_ms:>10.2f} "
        f"{traditional.stats.time_ms:>12.2f}"
    )

    saved = 1 - voronoi.stats.candidates / traditional.stats.candidates
    print(
        f"\nThe Voronoi method generated {saved:.0%} fewer candidates "
        "(the paper reports ~35-45 % at its scales)."
    )

    print("\nPlanner view — method='auto' routes via this cost table:")
    print(db.query(AreaQuery(area)).explain().render())


if __name__ == "__main__":
    main()
