#!/usr/bin/env python3
"""Regenerate the paper's illustrative figures as SVG files.

* **Fig. 2** — result set (black) and candidate set (green) of the same
  area query under the traditional method (left: candidates fill the MBR)
  and the Voronoi method (right: candidates hug the polygon boundary).
* **Fig. 3** — the Voronoi diagram and the Delaunay triangulation of a
  small point set, side by side.

Outputs ``fig2.svg`` and ``fig3.svg`` into the working directory (or a
directory given as the first argument).  Open them in any browser.

Run with::

    python examples/paper_figures.py [output_dir]
"""

import pathlib
import random
import sys

from repro import AreaQuery, SpatialDatabase, random_query_polygon
from repro.viz.figures import (
    render_candidate_comparison,
    render_voronoi_delaunay,
)
from repro.workloads.generators import uniform_points


def main() -> None:
    out_dir = pathlib.Path(sys.argv[1]) if len(sys.argv) > 1 else pathlib.Path(".")
    out_dir.mkdir(parents=True, exist_ok=True)

    # Fig. 2: a density and query size chosen so the candidate clouds are
    # clearly visible, like the paper's illustration.
    print("Rendering Fig. 2 (candidate sets of both methods)...")
    db = SpatialDatabase.from_points(
        uniform_points(4000, seed=2), backend_kind="scipy"
    ).prepare()
    area = random_query_polygon(0.12, rng=random.Random(5))
    fig2 = render_candidate_comparison(db, area)
    (out_dir / "fig2.svg").write_text(fig2, encoding="utf-8")

    voronoi = db.query(AreaQuery(area, method="voronoi"))
    traditional = db.query(AreaQuery(area, method="traditional"))
    print(
        f"  traditional: {traditional.stats.candidates} candidates | "
        f"voronoi: {voronoi.stats.candidates} candidates | "
        f"results: {len(voronoi)}"
    )

    # Fig. 3: a small point set so cells and triangles are readable.
    print("Rendering Fig. 3 (Voronoi diagram + Delaunay triangulation)...")
    fig3 = render_voronoi_delaunay(uniform_points(60, seed=9))
    (out_dir / "fig3.svg").write_text(fig3, encoding="utf-8")

    print(f"\nWrote {out_dir / 'fig2.svg'} and {out_dir / 'fig3.svg'}.")


if __name__ == "__main__":
    main()
