#!/usr/bin/env python3
"""Proximity services: circular range queries and k-nearest-neighbour search.

Beyond the paper's polygon experiments, the same Voronoi structure answers
the other classic proximity questions a location service needs:

* *"every station within 2 km"* — a **circular area query**: any
  :class:`~repro.geometry.region.QueryRegion` plugs into both area-query
  methods, and a disc covers only pi/4 of its bounding square, so the
  traditional MBR filter wastes ~21 % of its candidates in the corners;
* *"the 10 closest stations"* — **Voronoi kNN**: confirmed results expand
  through their Voronoi neighbours, evaluating O(k) candidates however
  large the database is (the VoR-tree idea the paper builds on).

Run with::

    python examples/proximity_services.py
"""

import random
import time

from repro import AreaQuery, KnnQuery, SpatialDatabase
from repro.geometry import Circle, Point
from repro.core.knn_query import voronoi_knn_query
from repro.workloads.generators import clustered_points


def main() -> None:
    print("Charging stations: 30,000 clustered locations...")
    stations = clustered_points(30_000, seed=31, clusters=12, spread=0.06)
    db = SpatialDatabase.from_points(stations, backend_kind="scipy").prepare()

    # --- circular range query -------------------------------------------
    here = Point(0.42, 0.58)
    radius = 0.08
    disc = Circle(here, radius)
    print(
        f"\n[1] Stations within r={radius} of {here.as_tuple()} "
        f"(disc fills {disc.area / disc.mbr.area:.0%} of its MBR):"
    )

    voronoi = db.query(AreaQuery(disc, method="voronoi"))
    traditional = db.query(AreaQuery(disc, method="traditional"))
    assert voronoi.ids() == traditional.ids()
    print(f"    {len(voronoi):,} stations found by both methods")
    print(
        f"    voronoi:     {voronoi.stats.candidates:>6,} candidates "
        f"({voronoi.stats.redundant_validations:,} redundant)"
    )
    print(
        f"    traditional: {traditional.stats.candidates:>6,} candidates "
        f"({traditional.stats.redundant_validations:,} redundant)"
    )

    # --- k nearest neighbours ---------------------------------------------
    print("\n[2] The 10 nearest stations (Voronoi expansion vs R-tree):")
    knn = voronoi_knn_query(db.index, db.backend, db.points, here, 10)
    rtree_ids = db.query(KnnQuery(here, 10, method="index")).ids()
    assert knn.ids == rtree_ids
    for rank, row in enumerate(knn.ids, start=1):
        distance = db.point(row).distance_to(here)
        print(f"    #{rank:<2} station {row:>6}  at distance {distance:.4f}")
    print(
        f"    Voronoi kNN evaluated just {knn.stats.candidates} candidate "
        f"distances out of {len(db):,} stations."
    )

    # --- throughput comparison --------------------------------------------
    print("\n[3] Throughput over 200 random positions (k=10):")
    rng = random.Random(33)
    queries = [Point(rng.random(), rng.random()) for _ in range(200)]

    started = time.perf_counter()
    for q in queries:
        voronoi_knn_query(db.index, db.backend, db.points, q, 10)
    voronoi_seconds = time.perf_counter() - started

    started = time.perf_counter()
    for q in queries:
        db.index.k_nearest_neighbors(q, 10)
    rtree_seconds = time.perf_counter() - started

    print(
        f"    voronoi kNN: {len(queries) / voronoi_seconds:7.0f} queries/s   "
        f"r-tree kNN: {len(queries) / rtree_seconds:7.0f} queries/s"
    )


if __name__ == "__main__":
    main()
