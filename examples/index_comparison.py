#!/usr/bin/env python3
"""Index ablation: does a better spatial index rescue the traditional method?

The paper's argument is that the traditional method's weakness is the
*candidate set* (everything in the MBR), not the index that produces it.
This example runs the same irregular area query through the traditional
pipeline on all five index structures in the library, plus the Voronoi
method (which by the paper's design uses the R-tree only for its seed
lookup), and prints the work counters side by side.

The punchline: index choice moves node-access counts around, but every
traditional variant validates the same (large) candidate set, while the
Voronoi method's candidate set is structurally smaller.

Run with::

    python examples/index_comparison.py
"""

import random

from repro import AreaQuery, SpatialDatabase, random_query_polygon
from repro.workloads.generators import uniform_points

INDEX_KINDS = ["rtree", "rstar", "kdtree", "quadtree", "grid"]
N_POINTS = 30_000
QUERY_SIZE = 0.04
N_QUERIES = 10


def main() -> None:
    points = uniform_points(N_POINTS, seed=55)
    rng = random.Random(56)
    areas = [
        random_query_polygon(QUERY_SIZE, rng=rng) for _ in range(N_QUERIES)
    ]

    print(
        f"{N_POINTS:,} uniform points, {N_QUERIES} irregular queries of "
        f"size {QUERY_SIZE:.0%}.\n"
    )
    header = (
        f"{'pipeline':24} {'candidates':>11} {'redundant':>10} "
        f"{'node accesses':>14} {'time/query (ms)':>16}"
    )
    print(header)
    print("-" * len(header))

    reference_ids = None
    for kind in INDEX_KINDS:
        db = SpatialDatabase.from_points(points, index_kind=kind)
        candidates = redundant = nodes = 0
        elapsed = 0.0
        for area in areas:
            result = db.query(AreaQuery(area, method="traditional"))
            if reference_ids is None:
                reference_ids = result.ids()
            candidates += result.stats.candidates
            redundant += result.stats.redundant_validations
            nodes += result.stats.index_node_accesses
            elapsed += result.stats.time_ms
        print(
            f"{'traditional/' + kind:24} {candidates / N_QUERIES:>11.0f} "
            f"{redundant / N_QUERIES:>10.0f} {nodes / N_QUERIES:>14.0f} "
            f"{elapsed / N_QUERIES:>16.2f}"
        )

    # The paper's method (R-tree seed + Voronoi expansion).
    db = SpatialDatabase.from_points(points, backend_kind="scipy").prepare()
    candidates = redundant = nodes = 0
    elapsed = 0.0
    for area in areas:
        result = db.query(AreaQuery(area, method="voronoi"))
        candidates += result.stats.candidates
        redundant += result.stats.redundant_validations
        nodes += result.stats.index_node_accesses
        elapsed += result.stats.time_ms
    print(
        f"{'voronoi (paper)':24} {candidates / N_QUERIES:>11.0f} "
        f"{redundant / N_QUERIES:>10.0f} {nodes / N_QUERIES:>14.0f} "
        f"{elapsed / N_QUERIES:>16.2f}"
    )

    print(
        "\nEvery traditional pipeline validates the same MBR candidate set "
        "regardless of index;\nonly the Voronoi expansion shrinks it."
    )


if __name__ == "__main__":
    main()
